package sig

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultQueueCapacity is the per-worker run-queue capacity used when
// Config.QueueCapacity is zero.
const DefaultQueueCapacity = 256

// ring is one worker's bounded run queue. Producers are any submitting
// goroutine (sharded by task sequence number); consumers are the owning
// worker plus stealing workers. head/tail are atomics so emptiness can be
// probed without the lock (parking heuristics, backpressure rechecks); all
// mutations happen under mu.
type ring struct {
	mu   sync.Mutex
	head atomic.Uint64
	tail atomic.Uint64
	mask uint64
	buf  []*Task
	// Pad to a cache line so neighboring rings do not false-share.
	_ [24]byte
}

func newRing(capacity int) *ring {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &ring{buf: make([]*Task, c), mask: uint64(c - 1)}
}

func (r *ring) empty() bool { return r.tail.Load() == r.head.Load() }

// push appends one task; it reports false when the ring is full.
//
//siglint:noalloc
func (r *ring) push(t *Task) bool {
	r.mu.Lock()
	tail := r.tail.Load()
	if tail-r.head.Load() > r.mask {
		r.mu.Unlock()
		return false
	}
	r.buf[tail&r.mask] = t
	r.tail.Store(tail + 1)
	r.mu.Unlock()
	return true
}

// pushN appends a prefix of ts bounded by the free space and returns how
// many were enqueued, preserving ts order. One lock covers the whole chunk.
//
//siglint:noalloc
func (r *ring) pushN(ts []*Task) int {
	r.mu.Lock()
	tail := r.tail.Load()
	space := int(r.mask + 1 - (tail - r.head.Load()))
	n := len(ts)
	if n > space {
		n = space
	}
	for i := 0; i < n; i++ {
		r.buf[(tail+uint64(i))&r.mask] = ts[i]
	}
	r.tail.Store(tail + uint64(n))
	r.mu.Unlock()
	return n
}

// popN moves up to len(dst) tasks into dst in FIFO order and returns the
// count.
func (r *ring) popN(dst []*Task) int {
	if r.empty() {
		return 0
	}
	r.mu.Lock()
	head := r.head.Load()
	n := int(r.tail.Load() - head)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		idx := (head + uint64(i)) & r.mask
		dst[i] = r.buf[idx]
		r.buf[idx] = nil
	}
	r.head.Store(head + uint64(n))
	r.mu.Unlock()
	return n
}

// sched is the dispatch layer: one ring per worker, a wake semaphore for
// parked workers, and a backpressure condition used only when every ring is
// full. No scheduler lock is ever held while a submitter blocks, so Stats,
// Energy and Group stay responsive under saturation.
type sched struct {
	rings  []*ring
	parked atomic.Int32
	wake   chan struct{}
	done   chan struct{}

	// Backpressure path: submitters that find every ring full wait on
	// spaceC; workers broadcast after freeing space, but only when
	// spaceWaiters says someone is actually waiting.
	spaceWaiters atomic.Int32
	spaceMu      sync.Mutex
	spaceC       *sync.Cond
}

func newSched(workers, queueCap int) *sched {
	s := &sched{
		rings: make([]*ring, workers),
		wake:  make(chan struct{}, workers),
		done:  make(chan struct{}),
	}
	for i := range s.rings {
		s.rings[i] = newRing(queueCap)
	}
	s.spaceC = sync.NewCond(&s.spaceMu)
	return s
}

// tryPush offers t to the shard selected by its sequence number, spilling to
// the other rings when the preferred one is full.
//
//siglint:noalloc
func (s *sched) tryPush(t *Task) bool {
	n := len(s.rings)
	start := int(t.Seq) % n
	for i := 0; i < n; i++ {
		if s.rings[(start+i)%n].push(t) {
			return true
		}
	}
	return false
}

// enqueue places t on some ring, blocking on the backpressure condition when
// every ring is full. It never holds a lock while blocked.
//
//siglint:noalloc
func (s *sched) enqueue(t *Task) {
	if s.tryPush(t) {
		s.wakeOne()
		return
	}
	s.spaceWaiters.Add(1)
	s.spaceMu.Lock()
	for !s.tryPush(t) {
		s.spaceC.Wait()
	}
	s.spaceMu.Unlock()
	s.spaceWaiters.Add(-1)
	s.wakeOne()
}

// enqueueBatch places every task of ts in order, striping contiguous chunks
// across rings so one lock acquisition covers many tasks. Order within the
// batch is preserved per chunk and chunks are enqueued in order, keeping the
// dispatch order of a policy flush FIFO (exactly FIFO with one worker).
//
//siglint:noalloc
func (s *sched) enqueueBatch(ts []*Task) {
	n := len(s.rings)
	shard := 0
	if len(ts) > 0 {
		shard = int(ts[0].Seq) % n
	}
	i := 0
	for i < len(ts) {
		pushed := false
		for j := 0; j < n; j++ {
			if k := s.rings[(shard+j)%n].pushN(ts[i:]); k > 0 {
				i += k
				shard = (shard + j + 1) % n
				pushed = true
				break
			}
		}
		if pushed {
			continue
		}
		// All rings full: wake the pool and fall back to the blocking
		// path for the next task, then resume chunked pushes.
		s.wakeAll(len(s.rings))
		s.enqueue(ts[i])
		i++
	}
	s.wakeAll(len(ts))
}

// wakeOne hands one wake token to the parked pool, if anyone is parked.
//
//siglint:noalloc
func (s *sched) wakeOne() {
	if s.parked.Load() > 0 {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// wakeAll hands up to n wake tokens out.
//
//siglint:noalloc
func (s *sched) wakeAll(n int) {
	p := int(s.parked.Load())
	if p < n {
		n = p
	}
	for i := 0; i < n; i++ {
		select {
		case s.wake <- struct{}{}:
		default:
			return
		}
	}
}

// signalSpace lets blocked submitters retry after space was freed. The lock
// is taken around Broadcast so a waiter between its failed push and its Wait
// (it holds spaceMu throughout) cannot miss the signal.
//
//siglint:noalloc
func (s *sched) signalSpace() {
	if s.spaceWaiters.Load() == 0 {
		return
	}
	s.spaceMu.Lock()
	s.spaceC.Broadcast()
	s.spaceMu.Unlock()
}

// anyQueued reports whether any ring holds work (lock-free probe).
func (s *sched) anyQueued() bool {
	for _, r := range s.rings {
		if !r.empty() {
			return true
		}
	}
	return false
}

// workerSpinRounds is how many empty scan rounds a worker tolerates (yielding
// between rounds) before parking on the wake semaphore.
const workerSpinRounds = 4

// popBatchSize bounds how many tasks a worker claims per lock acquisition.
const popBatchSize = 16

// worker is the scheduling loop of one worker goroutine: drain the own ring
// in batches, steal from siblings when empty, spin briefly, then park.
func (rt *Runtime) worker(id int) {
	defer rt.wg.Done()
	s := rt.sched
	own := s.rings[id]
	var batch [popBatchSize]*Task
	idle := 0
	for {
		n := own.popN(batch[:])
		if n == 0 {
			n = rt.steal(id, batch[:])
		}
		if n > 0 {
			idle = 0
			s.signalSpace()
			for i := 0; i < n; i++ {
				rt.execute(id, batch[i])
				batch[i] = nil
			}
			continue
		}
		if idle < workerSpinRounds {
			idle++
			runtime.Gosched()
			continue
		}
		s.parked.Add(1)
		if s.anyQueued() {
			s.parked.Add(-1)
			idle = 0
			continue
		}
		select {
		case <-s.wake:
			s.parked.Add(-1)
			idle = 0
		case <-s.done:
			s.parked.Add(-1)
			return
		}
	}
}

// steal claims up to half a batch from a sibling ring, scanning from the
// next worker onward so victims rotate.
func (rt *Runtime) steal(id int, dst []*Task) int {
	s := rt.sched
	n := len(s.rings)
	limit := len(dst) / 2
	if limit == 0 {
		limit = 1
	}
	for j := 1; j < n; j++ {
		if got := s.rings[(id+j)%n].popN(dst[:limit]); got > 0 {
			return got
		}
	}
	return 0
}

// Package sig implements a significance-aware task runtime in the spirit of
// Vassiliadis et al., "A Programming Model and Runtime System for
// Significance-Aware Energy-Efficient Computing" (PPoPP'15).
//
// Programmers submit tasks tagged with a significance value in [0,1] and,
// optionally, a cheap approximate version of the task body. A per-group
// accuracy ratio — the single quality knob of the model — asks the runtime to
// execute at least that fraction of the group's tasks accurately. A pluggable
// Policy (see policy.go) decides which tasks run accurately and which run
// approximately (or are dropped), trading result quality for energy.
//
// The runtime models energy instead of measuring hardware counters: workers
// account their busy time and a configurable EnergyModel converts busy/idle
// time into Joules (see energy.go). Energy reports remain valid and stable
// after Close.
//
// The scheduler is built for submit throughput: tasks are recycled through
// pools (see pool.go), the submit path takes no runtime-wide lock, and
// decided tasks are striped across per-worker bounded queues with work
// stealing (see queue.go). Policies that need no serialization declare it
// via LocklessSubmitter and bypass the per-group lock entirely.
//
// The package is replay-deterministic (same submissions, same decisions,
// same modeled energy at any worker count) and siglint enforces the
// inputs to that property:
//
//siglint:deterministic
package sig

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Runtime.
type Config struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// Policy selects the accuracy policy used by every task group.
	Policy PolicyKind
	// GTBWindow is the buffer size of PolicyGTB (0 means DefaultGTBWindow).
	GTBWindow int
	// LQHHistory is the per-worker history length of PolicyLQH
	// (0 means DefaultLQHHistory).
	LQHHistory int
	// QueueCapacity is the per-worker run-queue capacity, rounded up to a
	// power of two (0 means DefaultQueueCapacity). Submit applies
	// backpressure once every queue is full.
	QueueCapacity int
	// Energy overrides the modeled power figures; zero fields take defaults.
	Energy EnergyModel
	// RecordDecisions makes each group keep an ordered log of
	// (significance, accurate) pairs for post-hoc policy-accuracy analysis
	// (Table 2). Off by default: it costs memory per task.
	RecordDecisions bool
	// NewPolicy, when non-nil, overrides Policy with a custom policy
	// constructor, called once per task group. Custom policies must hand
	// each task back exactly once across Submit/Flush: completed tasks are
	// recycled, so a policy must not retain a *Task it has returned. A
	// policy whose Submit needs no serialization can implement
	// LocklessSubmitter to skip the per-group lock.
	NewPolicy func(g *Group) Policy
	// Observer, when non-nil, receives per-wave telemetry (WaveStats) for
	// every group at each taskwait boundary. It is the feedback hook the
	// adaptive controller (sig/adapt) attaches to; it adds nothing to the
	// per-task hot path (see observe.go).
	Observer Observer
	// RecoverPanics absorbs panics thrown by task bodies instead of letting
	// them kill the worker goroutine. A panicked task still charges its
	// declared cost (modeled energy stays deterministic under injected
	// faults — see sig/chaos) and bumps the Panics counter. Off by default:
	// the hot path then carries no defer.
	RecoverPanics bool
}

// Task is a unit of work submitted to the runtime. Policies read the exported
// fields and set Decision; the bodies themselves stay private to the runtime.
type Task struct {
	// Significance in [0,1]; larger values contribute more to output
	// quality. The special values are handled by the runtime itself:
	// 1.0 always runs accurately, 0.0 always approximately.
	Significance float64
	// Seq is the submission sequence number within the runtime (for
	// deterministic tie-breaking).
	Seq uint64
	// Decision is set by the policy (or the runtime, for the special
	// significance values) before the task is dispatched.
	Decision Decision

	group    *Group
	accurate func()
	approx   func()
	ins      []Range
	outs     []Range
	// Declared nominal costs in units of ~1ns; negative means
	// undeclared (fall back to measured execution time).
	costAcc    float64
	costApprox float64
	wave       int
	slab       *taskSlab
}

// HasApprox reports whether the task carries an approximate body. Tasks
// decided DecideApprox without one are simply skipped (the paper's
// task-dropping degradation).
func (t *Task) HasApprox() bool { return t.approx != nil }

// Group returns the task's group.
func (t *Task) Group() *Group { return t.group }

// Group is a labeled set of tasks sharing an accuracy ratio, the unit of
// synchronization (taskwait) of the programming model.
type Group struct {
	rt    *Runtime
	name  string
	ratio atomic.Uint64 // math.Float64bits of the requested accurate ratio

	// mu serializes the policy for buffering policies; groups whose policy
	// implements LocklessSubmitter never take it on the submit path.
	mu        sync.Mutex
	policy    Policy
	needsLock bool

	logMu sync.Mutex
	log   []DecisionRecord
	wave  atomic.Int64 // taskwait epoch counter

	// phaseMu guards the per-wave telemetry snapshot; it is taken only at
	// wave boundaries (endWave), never on the submit or completion path.
	phaseMu  sync.Mutex
	waveBase waveSnapshot

	// pending counts dispatched-but-unfinished tasks. The counter is
	// atomic so the submit and completion paths stay lock-free; Wait falls
	// back to a condition variable only when it actually has to block.
	pending atomic.Int64
	waiters atomic.Int32
	pendMu  sync.Mutex
	pendC   *sync.Cond

	submitted   atomic.Int64
	accurate    atomic.Int64
	approximate atomic.Int64
	dropped     atomic.Int64
	inBytes     atomic.Int64
	outBytes    atomic.Int64
}

// Name returns the group's label.
func (g *Group) Name() string { return g.name }

// Ratio returns the currently requested accurate-execution ratio.
func (g *Group) Ratio() float64 { return math.Float64frombits(g.ratio.Load()) }

func (g *Group) setRatio(r float64) { g.ratio.Store(math.Float64bits(clamp01(r))) }

// clock is one worker's busy-time account, padded to its own cache line so
// per-task accounting never false-shares between workers.
type clock struct {
	busyNS atomic.Int64
	_      [56]byte
}

// inflightShards stripes the in-flight Submit counter (sharded by sequence
// number) so concurrent submitters do not serialize on one cache line. It is
// only summed by Close, which must not tear down the scheduler while a
// Submit that passed the closed check is still enqueueing.
const inflightShards = 16

type inflightShard struct {
	n atomic.Int64
	_ [56]byte
}

// Runtime is a significance-aware task scheduler. Create one with New, submit
// tasks with Submit or SubmitBatch, synchronize with Wait, and release it
// with Close. Submit and Wait must be called from the submitting
// goroutine(s), not from task bodies.
type Runtime struct {
	cfg     Config
	workers int
	energy  EnergyModel

	sched *sched
	pools taskPools
	wg    sync.WaitGroup

	mu     sync.Mutex // guards groups/order/frozen; never on the submit path
	groups map[string]*Group
	order  []*Group
	frozen *Report

	closed   atomic.Bool
	def      atomic.Pointer[Group]
	inflight [inflightShards]inflightShard

	start  time.Time
	clocks []clock
	seq    atomic.Uint64
	panics atomic.Int64
}

// New creates and starts a Runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sig: negative worker count %d", cfg.Workers)
	}
	if cfg.GTBWindow < 0 || cfg.LQHHistory < 0 {
		return nil, fmt.Errorf("sig: negative policy parameter")
	}
	if cfg.QueueCapacity < 0 {
		return nil, fmt.Errorf("sig: negative queue capacity %d", cfg.QueueCapacity)
	}
	if cfg.NewPolicy == nil && !cfg.Policy.valid() {
		return nil, fmt.Errorf("sig: unknown policy kind %d", cfg.Policy)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queueCap := cfg.QueueCapacity
	if queueCap == 0 {
		queueCap = DefaultQueueCapacity
	}
	rt := &Runtime{
		cfg:     cfg,
		workers: workers,
		energy:  cfg.Energy.withDefaults(),
		sched:   newSched(workers, queueCap),
		groups:  make(map[string]*Group),
		start:   time.Now(), //siglint:wallclock wall anchor for the idle split of Energy reports; never feeds a decision
		clocks:  make([]clock, workers),
	}
	rt.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go rt.worker(i)
	}
	return rt, nil
}

// Workers returns the size of the worker pool.
func (rt *Runtime) Workers() int { return rt.workers }

// Group returns the task group with the given name, creating it on first
// use, and sets its requested accurate ratio (clamped to [0,1]). Calling it
// again with the same name returns the same group with the ratio updated —
// this is what lets the translator resolve a taskwait's ratio clause onto
// submissions that textually precede it.
func (rt *Runtime) Group(name string, ratio float64) *Group {
	g, existed := rt.getOrCreateGroup(name, ratio)
	if existed {
		g.setRatio(ratio)
	}
	return g
}

func (rt *Runtime) getOrCreateGroup(name string, ratio float64) (*Group, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if g, ok := rt.groups[name]; ok {
		return g, true
	}
	g := &Group{rt: rt, name: name}
	g.pendC = sync.NewCond(&g.pendMu)
	g.setRatio(ratio)
	g.policy = rt.newPolicy(g)
	_, lockless := g.policy.(LocklessSubmitter)
	g.needsLock = !lockless
	rt.groups[name] = g
	rt.order = append(rt.order, g)
	if name == "" {
		rt.def.Store(g)
	}
	return g, false
}

func (rt *Runtime) newPolicy(g *Group) Policy {
	if rt.cfg.NewPolicy != nil {
		return rt.cfg.NewPolicy(g)
	}
	return newPolicy(rt.cfg, g, rt.workers)
}

// defaultGroup is used by tasks submitted without WithLabel. It is created
// with ratio 1.0 on first use but never overrides a ratio the user set via
// rt.Group("", r). The created group is cached in an atomic pointer so
// unlabeled submission stays off rt.mu.
func (rt *Runtime) defaultGroup() *Group {
	if g := rt.def.Load(); g != nil {
		return g
	}
	g, _ := rt.getOrCreateGroup("", 1.0)
	return g
}

// beginSubmit publishes an in-flight submission on a striped counter and
// checks the closed flag. Close flips the flag first and then waits for the
// stripes to drain, so every submission that passed this check fully reaches
// its queue before the scheduler shuts down. It reports false on a closed
// runtime so callers can release any pool-drawn resources before panicking.
//
//siglint:noalloc
func (rt *Runtime) beginSubmit(seq uint64) (*inflightShard, bool) {
	s := &rt.inflight[seq%inflightShards]
	s.n.Add(1)
	if rt.closed.Load() {
		s.n.Add(-1)
		return nil, false
	}
	return s, true
}

// Submit schedules fn as a significance-annotated task. Options attach the
// group label, the significance, an approximate body and the data footprint.
// Without options the task is fully significant and runs accurately.
//
//siglint:noalloc
func (rt *Runtime) Submit(fn func(), opts ...TaskOption) {
	if fn == nil {
		panic("sig: Submit with nil task body")
	}
	t := rt.pools.get()
	t.Significance = 1.0
	t.accurate = fn
	t.costAcc, t.costApprox = -1, -1
	for _, o := range opts {
		o(t) //siglint:allocok TaskOption callbacks are caller code; the runtime's own path stays allocation-free
	}
	t.Seq = rt.seq.Add(1)
	if t.group == nil {
		t.group = rt.defaultGroup() //siglint:allocok one-time lazy creation of the default group, then a pointer load
	}
	g := t.group
	if g.rt != rt {
		// The task came from this runtime's pool: hand it back before
		// panicking so the failed call does not leak it.
		rt.pools.release(t)
		panic("sig: task label belongs to a different runtime")
	}
	shard, ok := rt.beginSubmit(t.Seq)
	if !ok {
		rt.pools.release(t)
		panic("sig: Submit on closed runtime")
	}
	defer shard.n.Add(-1)

	g.submitted.Add(1)
	t.wave = int(g.wave.Load())
	if len(t.ins) > 0 || len(t.outs) > 0 {
		g.addFootprint(t)
	}

	// The special significance values bypass the policy (§2 of the paper):
	// 1.0 is unconditionally accurate, 0.0 unconditionally approximate.
	if t.Significance >= 1.0 {
		t.Decision = DecideAccurate
		g.pending.Add(1)
		rt.dispatch(t)
		return
	}
	if t.Significance <= 0.0 {
		t.Decision = DecideApprox
		g.pending.Add(1)
		rt.dispatch(t)
		return
	}

	var ready *Task
	var batch []*Task
	if g.needsLock {
		// The pending count for everything the policy hands back is
		// published while still holding the policy lock: a concurrent
		// Wait that flushes after us must either see these tasks in the
		// buffer or see them pending — never neither.
		g.mu.Lock()
		ready, batch = g.policy.Submit(t) //siglint:allocok policy boundary: buffering policies amortize into their reused window
		if n := pendingDelta(ready, batch); n > 0 {
			g.pending.Add(n)
		}
		g.mu.Unlock()
	} else {
		ready, batch = g.policy.Submit(t) //siglint:allocok policy boundary: buffering policies amortize into their reused window
		if n := pendingDelta(ready, batch); n > 0 {
			g.pending.Add(n)
		}
	}
	if ready != nil {
		rt.dispatch(ready)
	}
	if len(batch) > 0 {
		rt.dispatchBatch(batch)
	}
}

// pendingDelta counts the tasks a policy handed back for dispatch.
//
//siglint:noalloc
func pendingDelta(ready *Task, batch []*Task) int64 {
	n := int64(len(batch))
	if ready != nil {
		n++
	}
	return n
}

// TaskSpec describes one task for SubmitBatch; see options.go.

// SubmitBatch schedules every spec as a task of group g (nil means the
// default group). It is semantically a loop of Submit calls but amortizes
// the per-task scheduling costs — sequence allocation, policy locking,
// queue striping and task allocation (slab-recycled, see pool.go) — across
// the batch, which makes it the preferred path for fine-grained task
// streams.
//
//siglint:noalloc
func (rt *Runtime) SubmitBatch(g *Group, specs []TaskSpec) {
	if len(specs) == 0 {
		return
	}
	if g == nil {
		g = rt.defaultGroup() //siglint:allocok one-time lazy creation of the default group, then a pointer load
	}
	if g.rt != rt {
		panic("sig: task label belongs to a different runtime")
	}
	// Validate every spec before drawing anything from the pools: a nil
	// body must not leak a half-initialized slab or dispatch a partial
	// batch before panicking.
	for i := range specs {
		if specs[i].Fn == nil {
			panic("sig: SubmitBatch with nil task body")
		}
	}
	base := rt.seq.Add(uint64(len(specs))) - uint64(len(specs))
	shard, ok := rt.beginSubmit(base)
	if !ok {
		panic("sig: Submit on closed runtime")
	}
	defer shard.n.Add(-1)

	g.submitted.Add(int64(len(specs)))
	wave := int(g.wave.Load())

	dispatchP := rt.pools.getDispatch() // decided tasks accumulated across the batch
	defer rt.pools.putDispatch(dispatchP)
	dispatch := *dispatchP
	for off := 0; off < len(specs); {
		n := len(specs) - off
		if n > slabSize {
			n = slabSize
		}
		slab := rt.pools.getSlab(n)
		chunk := specs[off : off+n]
		for i := range chunk {
			sp := &chunk[i]
			t := &slab.tasks[i]
			// Zero value = fully significant (Submit's default);
			// negative = the special always-approximate 0.0.
			switch {
			case sp.Significance == 0:
				t.Significance = 1.0
			case sp.Significance < 0:
				t.Significance = 0.0
			default:
				t.Significance = clamp01(sp.Significance)
			}
			t.Seq = base + uint64(off+i) + 1
			t.Decision = decideNone
			t.group = g
			t.accurate = sp.Fn
			t.approx = sp.Approx
			t.ins, t.outs = nil, nil
			t.costAcc, t.costApprox = -1, -1
			if sp.HasCost {
				t.costAcc, t.costApprox = sp.CostAccurate, sp.CostApprox
			}
			t.wave = wave
			t.slab = slab
		}
		var chunkPending int64
		if g.needsLock {
			g.mu.Lock()
		}
		for i := range chunk {
			t := &slab.tasks[i]
			if t.Significance >= 1.0 {
				t.Decision = DecideAccurate
				chunkPending++
				dispatch = append(dispatch, t) //siglint:allocok amortized growth of the pooled dispatch scratch; recycled grown
				continue
			}
			if t.Significance <= 0.0 {
				t.Decision = DecideApprox
				chunkPending++
				dispatch = append(dispatch, t) //siglint:allocok amortized growth of the pooled dispatch scratch; recycled grown
				continue
			}
			ready, batch := g.policy.Submit(t) //siglint:allocok policy boundary: buffering policies amortize into their reused window
			if ready != nil {
				chunkPending++
				dispatch = append(dispatch, ready) //siglint:allocok amortized growth of the pooled dispatch scratch; recycled grown
			}
			if len(batch) > 0 {
				chunkPending += int64(len(batch))
				dispatch = append(dispatch, batch...) //siglint:allocok amortized growth of the pooled dispatch scratch; recycled grown
			}
		}
		// As in Submit, publish the pending delta before the policy lock
		// is released so a concurrent Wait cannot miss flushed tasks.
		if chunkPending > 0 {
			g.pending.Add(chunkPending)
		}
		if g.needsLock {
			g.mu.Unlock()
		}
		off += n
	}
	if len(dispatch) > 0 {
		rt.dispatchBatch(dispatch)
	}
	*dispatchP = dispatch // recycle the grown scratch array
}

// dispatch routes a decided task: dropped tasks complete immediately, the
// rest go to a worker queue. No lock is held while enqueueing. Either way
// ownership transfers: the worker (or completeDrop) releases the task.
//
//siglint:poolput
//siglint:noalloc
func (rt *Runtime) dispatch(t *Task) {
	if t.Decision == DecideDrop {
		rt.completeDrop(t)
		return
	}
	rt.sched.enqueue(t)
}

// dispatchBatch routes a decided batch in order, striping the enqueued runs
// across worker queues with one lock acquisition per run. Ownership of
// every task in ts transfers to the workers.
//
//siglint:poolput
//siglint:noalloc
func (rt *Runtime) dispatchBatch(ts []*Task) {
	// Split around dropped tasks so the queued runs stay contiguous.
	runStart := -1
	for i, t := range ts {
		if t.Decision == DecideDrop {
			if runStart >= 0 {
				rt.sched.enqueueBatch(ts[runStart:i])
				runStart = -1
			}
			rt.completeDrop(t)
			continue
		}
		if runStart < 0 {
			runStart = i
		}
	}
	if runStart >= 0 {
		rt.sched.enqueueBatch(ts[runStart:])
	}
}

// completeDrop finishes a task dropped at decision time without touching a
// queue.
//
//siglint:poolput
//siglint:noalloc
func (rt *Runtime) completeDrop(t *Task) {
	g := t.group
	g.dropped.Add(1)
	g.record(t, false)
	g.leave()
	rt.pools.release(t)
}

func (rt *Runtime) execute(id int, t *Task) {
	g := t.group
	d := t.Decision
	if d == DecideAtWorker {
		d = g.policy.WorkerDecide(id, t)
		t.Decision = d
	}
	switch d {
	case DecideAccurate:
		rt.runBody(id, t.accurate, t.costAcc)
		g.accurate.Add(1)
		g.record(t, true)
	case DecideApprox:
		if t.approx != nil {
			rt.runBody(id, t.approx, t.costApprox)
			g.approximate.Add(1)
		} else {
			// Body-less approximate execution is the model's task
			// dropping: no code runs, so it contributes zero modeled
			// joules (whatever cost was declared) and counts as dropped,
			// not approximate.
			g.dropped.Add(1)
		}
		g.record(t, false)
	case DecideDrop:
		g.dropped.Add(1)
		g.record(t, false)
	default:
		panic(fmt.Sprintf("sig: task executed with undecided decision %d", d))
	}
	g.leave()
	rt.pools.release(t)
}

// runBody executes one task body and charges its work to the worker's busy
// account: the declared cost when the task carries one (deterministic), the
// measured execution time otherwise.
//
//siglint:wallclock measured-cost fallback; replayable runs declare costs and never take this path
func (rt *Runtime) runBody(id int, body func(), cost float64) {
	if rt.cfg.RecoverPanics {
		rt.runBodyRecover(id, body, cost)
		return
	}
	if cost >= 0 {
		body()
		rt.clocks[id].busyNS.Add(int64(cost))
		return
	}
	start := time.Now()
	body()
	rt.clocks[id].busyNS.Add(int64(time.Since(start)))
}

// runBodyRecover is runBody under Config.RecoverPanics: the busy charge
// moves into a deferred block so a panicking body still pays its declared
// cost (or its measured time up to the panic) before the panic is absorbed.
//
//siglint:wallclock measured-cost fallback; replayable runs declare costs and never take this path
func (rt *Runtime) runBodyRecover(id int, body func(), cost float64) {
	var start time.Time
	if cost < 0 {
		start = time.Now()
	}
	defer func() {
		if cost >= 0 {
			rt.clocks[id].busyNS.Add(int64(cost))
		} else {
			rt.clocks[id].busyNS.Add(int64(time.Since(start)))
		}
		if p := recover(); p != nil {
			rt.panics.Add(1)
		}
	}()
	body()
}

// Panics reports how many task-body panics the runtime has absorbed; always
// zero unless Config.RecoverPanics is set.
func (rt *Runtime) Panics() int64 { return rt.panics.Load() }

//siglint:noalloc
func (g *Group) addFootprint(t *Task) {
	for _, r := range t.ins {
		g.inBytes.Add(int64(r.Bytes))
	}
	for _, r := range t.outs {
		g.outBytes.Add(int64(r.Bytes))
	}
}

// leave retires one pending task. The fast path is a single atomic; the
// condition variable is only touched when a waiter announced itself.
//
//siglint:noalloc
func (g *Group) leave() {
	if g.pending.Add(-1) == 0 && g.waiters.Load() > 0 {
		g.pendMu.Lock()
		g.pendC.Broadcast()
		g.pendMu.Unlock()
	}
}

// waitIdle blocks until the group's pending count reaches zero.
func (g *Group) waitIdle() {
	if g.pending.Load() == 0 {
		return
	}
	g.pendMu.Lock()
	g.waiters.Add(1)
	for g.pending.Load() > 0 {
		g.pendC.Wait()
	}
	g.waiters.Add(-1)
	g.pendMu.Unlock()
}

//siglint:noalloc
func (g *Group) record(t *Task, accurate bool) {
	if !g.rt.cfg.RecordDecisions {
		return
	}
	g.logMu.Lock()
	g.log = append(g.log, DecisionRecord{Significance: t.Significance, Accurate: accurate, Wave: t.wave}) //siglint:allocok opt-in telemetry (RecordDecisions); documented as paying memory per task
	g.logMu.Unlock()
}

// providedRatio is the achieved accurate fraction over all decided tasks.
// A group nothing was ever submitted to reports its requested ratio: an
// empty run trivially satisfies its target, and callers averaging Wait
// results must never see a 0/0 artifact.
func (g *Group) providedRatio() float64 {
	acc := g.accurate.Load()
	total := acc + g.approximate.Load() + g.dropped.Load()
	if total == 0 {
		return g.Ratio()
	}
	return float64(acc) / float64(total)
}

// drain flushes the group's policy buffer and blocks until every task of
// the group has completed (or been dropped). Policies implementing
// BufferFlusher flush into a pooled scratch slice, so a steady-state
// Wait cycle performs no allocation at all.
func (rt *Runtime) drain(g *Group) {
	var (
		ready   []*Task
		scratch *[]*Task
	)
	fi, pooled := g.policy.(BufferFlusher)
	if pooled {
		scratch = rt.pools.getDispatch() //siglint:leakok recycled below under the same pooled guard; the two branches are correlated
	}
	g.mu.Lock()
	if pooled {
		ready = fi.FlushInto(*scratch)
	} else {
		ready = g.policy.Flush()
	}
	if len(ready) > 0 {
		g.pending.Add(int64(len(ready)))
	}
	g.mu.Unlock()
	if len(ready) > 0 {
		rt.dispatchBatch(ready)
	}
	if pooled {
		*scratch = ready
		rt.pools.putDispatch(scratch)
	}
	g.waitIdle()
}

// Wait is the taskwait of the model: it flushes the group's policy buffer,
// blocks until every task of the group has completed (or been dropped) and
// returns the accuracy ratio the run actually provided (cumulatively; see
// WaitPhase for the wave-local view).
func (rt *Runtime) Wait(g *Group) float64 {
	if g == nil {
		g = rt.defaultGroup()
	}
	rt.drain(g)
	ws := rt.endWave(g)
	rt.observe(g, ws)
	return g.providedRatio()
}

// WaitAll waits on every group ever created on this runtime.
func (rt *Runtime) WaitAll() {
	rt.mu.Lock()
	groups := append([]*Group(nil), rt.order...)
	rt.mu.Unlock()
	for _, g := range groups {
		rt.Wait(g)
	}
}

// Close drains all groups, stops the workers and freezes the energy report.
// It is idempotent. Energy and Stats remain valid after Close; Energy is
// additionally guaranteed to be stable (repeated calls return the identical
// report), which makes `rt.Close(); rep := rt.Energy()` a supported idiom.
func (rt *Runtime) Close() error {
	if rt.closed.Swap(true) {
		return nil
	}
	// Wait out submissions that passed the closed check before the flag
	// flipped; afterwards no new task can reach the scheduler. Yield at
	// first, then sleep: an in-flight Submit can stay backpressured for a
	// while and this cold path must not burn a core meanwhile.
	for spin := 0; ; spin++ {
		var n int64
		for i := range rt.inflight {
			n += rt.inflight[i].n.Load()
		}
		if n == 0 {
			break
		}
		if spin < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
	rt.WaitAll()
	close(rt.sched.done)
	rt.wg.Wait()

	rep := rt.report(time.Since(rt.start)) //siglint:wallclock wall/idle split of the frozen Energy report; not replay state
	rt.mu.Lock()
	rt.frozen = &rep
	rt.mu.Unlock()
	return nil
}

// Energy returns the modeled energy report. Before Close it is a live
// snapshot; after Close it is frozen at the moment the last task finished
// and stays stable across calls.
func (rt *Runtime) Energy() Report {
	rt.mu.Lock()
	frozen := rt.frozen
	rt.mu.Unlock()
	if frozen != nil {
		return *frozen
	}
	return rt.report(time.Since(rt.start)) //siglint:wallclock wall/idle split of a live Energy snapshot; not replay state
}

// busyNS sums the workers' busy clocks.
func (rt *Runtime) busyNS() int64 {
	var busy int64
	for i := range rt.clocks {
		busy += rt.clocks[i].busyNS.Load()
	}
	return busy
}

func (rt *Runtime) report(wall time.Duration) Report {
	return rt.energy.report(wall, time.Duration(rt.busyNS()), rt.workers)
}

// Stats returns a snapshot of per-group task accounting.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	groups := append([]*Group(nil), rt.order...)
	rt.mu.Unlock()
	st := Stats{}
	for _, g := range groups {
		gs := g.Stats()
		st.Groups = append(st.Groups, gs)
		st.Submitted += gs.Submitted
		st.Accurate += gs.Accurate
		st.Approximate += gs.Approximate
		st.Dropped += gs.Dropped
	}
	return st
}

//siglint:noalloc
func clamp01(x float64) float64 {
	switch {
	case x < 0 || math.IsNaN(x):
		return 0
	case x > 1:
		return 1
	}
	return x
}

// Package sig implements a significance-aware task runtime in the spirit of
// Vassiliadis et al., "A Programming Model and Runtime System for
// Significance-Aware Energy-Efficient Computing" (PPoPP'15).
//
// Programmers submit tasks tagged with a significance value in [0,1] and,
// optionally, a cheap approximate version of the task body. A per-group
// accuracy ratio — the single quality knob of the model — asks the runtime to
// execute at least that fraction of the group's tasks accurately. A pluggable
// Policy (see policy.go) decides which tasks run accurately and which run
// approximately (or are dropped), trading result quality for energy.
//
// The runtime models energy instead of measuring hardware counters: workers
// account their busy time and a configurable EnergyModel converts busy/idle
// time into Joules (see energy.go). Energy reports remain valid and stable
// after Close.
package sig

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Runtime.
type Config struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// Policy selects the accuracy policy used by every task group.
	Policy PolicyKind
	// GTBWindow is the buffer size of PolicyGTB (0 means DefaultGTBWindow).
	GTBWindow int
	// LQHHistory is the per-worker history length of PolicyLQH
	// (0 means DefaultLQHHistory).
	LQHHistory int
	// Energy overrides the modeled power figures; zero fields take defaults.
	Energy EnergyModel
	// RecordDecisions makes each group keep an ordered log of
	// (significance, accurate) pairs for post-hoc policy-accuracy analysis
	// (Table 2). Off by default: it costs memory per task.
	RecordDecisions bool
	// NewPolicy, when non-nil, overrides Policy with a custom policy
	// constructor, called once per task group.
	NewPolicy func(g *Group) Policy
}

// Task is a unit of work submitted to the runtime. Policies read the exported
// fields and set Decision; the bodies themselves stay private to the runtime.
type Task struct {
	// Significance in [0,1]; larger values contribute more to output
	// quality. The special values are handled by the runtime itself:
	// 1.0 always runs accurately, 0.0 always approximately.
	Significance float64
	// Seq is the submission sequence number within the runtime (for
	// deterministic tie-breaking).
	Seq uint64
	// Decision is set by the policy (or the runtime, for the special
	// significance values) before the task is dispatched.
	Decision Decision

	group    *Group
	accurate func()
	approx   func()
	ins      []Range
	outs     []Range
	// Declared nominal costs in units of ~1ns; negative means
	// undeclared (fall back to measured execution time).
	costAcc    float64
	costApprox float64
	wave       int
}

// HasApprox reports whether the task carries an approximate body. Tasks
// decided DecideApprox without one are simply skipped (the paper's
// task-dropping degradation).
func (t *Task) HasApprox() bool { return t.approx != nil }

// Group returns the task's group.
func (t *Task) Group() *Group { return t.group }

// Group is a labeled set of tasks sharing an accuracy ratio, the unit of
// synchronization (taskwait) of the programming model.
type Group struct {
	rt    *Runtime
	name  string
	ratio atomic.Uint64 // math.Float64bits of the requested accurate ratio

	mu     sync.Mutex // guards policy and decision log
	policy Policy
	log    []DecisionRecord
	wave   atomic.Int64 // taskwait epoch counter

	pendMu  sync.Mutex
	pending int
	pendC   *sync.Cond

	submitted   atomic.Int64
	accurate    atomic.Int64
	approximate atomic.Int64
	dropped     atomic.Int64
	inBytes     atomic.Int64
	outBytes    atomic.Int64
}

// Name returns the group's label.
func (g *Group) Name() string { return g.name }

// Ratio returns the currently requested accurate-execution ratio.
func (g *Group) Ratio() float64 { return math.Float64frombits(g.ratio.Load()) }

func (g *Group) setRatio(r float64) { g.ratio.Store(math.Float64bits(clamp01(r))) }

// Runtime is a significance-aware task scheduler. Create one with New, submit
// tasks with Submit, synchronize with Wait, and release it with Close.
// Submit and Wait must be called from the submitting goroutine(s), not from
// task bodies.
type Runtime struct {
	cfg     Config
	workers int
	energy  EnergyModel

	queue chan *Task
	wg    sync.WaitGroup

	mu     sync.Mutex
	groups map[string]*Group
	order  []*Group
	closed bool
	frozen *Report

	start  time.Time
	busyNS []int64 // per-worker busy nanoseconds, updated atomically
	seq    atomic.Uint64
}

// New creates and starts a Runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sig: negative worker count %d", cfg.Workers)
	}
	if cfg.GTBWindow < 0 || cfg.LQHHistory < 0 {
		return nil, fmt.Errorf("sig: negative policy parameter")
	}
	if cfg.NewPolicy == nil && !cfg.Policy.valid() {
		return nil, fmt.Errorf("sig: unknown policy kind %d", cfg.Policy)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := &Runtime{
		cfg:     cfg,
		workers: workers,
		energy:  cfg.Energy.withDefaults(),
		queue:   make(chan *Task, 64*workers),
		groups:  make(map[string]*Group),
		start:   time.Now(),
		busyNS:  make([]int64, workers),
	}
	rt.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go rt.worker(i)
	}
	return rt, nil
}

// Workers returns the size of the worker pool.
func (rt *Runtime) Workers() int { return rt.workers }

// Group returns the task group with the given name, creating it on first
// use, and sets its requested accurate ratio (clamped to [0,1]). Calling it
// again with the same name returns the same group with the ratio updated —
// this is what lets the translator resolve a taskwait's ratio clause onto
// submissions that textually precede it.
func (rt *Runtime) Group(name string, ratio float64) *Group {
	g, existed := rt.getOrCreateGroup(name, ratio)
	if existed {
		g.setRatio(ratio)
	}
	return g
}

func (rt *Runtime) getOrCreateGroup(name string, ratio float64) (*Group, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if g, ok := rt.groups[name]; ok {
		return g, true
	}
	g := &Group{rt: rt, name: name}
	g.pendC = sync.NewCond(&g.pendMu)
	g.setRatio(ratio)
	g.policy = rt.newPolicy(g)
	rt.groups[name] = g
	rt.order = append(rt.order, g)
	return g, false
}

func (rt *Runtime) newPolicy(g *Group) Policy {
	if rt.cfg.NewPolicy != nil {
		return rt.cfg.NewPolicy(g)
	}
	return newPolicy(rt.cfg, g, rt.workers)
}

// defaultGroup is used by tasks submitted without WithLabel. It is created
// with ratio 1.0 on first use but never overrides a ratio the user set via
// rt.Group("", r).
func (rt *Runtime) defaultGroup() *Group {
	g, _ := rt.getOrCreateGroup("", 1.0)
	return g
}

// Submit schedules fn as a significance-annotated task. Options attach the
// group label, the significance, an approximate body and the data footprint.
// Without options the task is fully significant and runs accurately.
func (rt *Runtime) Submit(fn func(), opts ...TaskOption) {
	if fn == nil {
		panic("sig: Submit with nil task body")
	}
	t := &Task{Significance: 1.0, Seq: rt.seq.Add(1), accurate: fn, costAcc: -1, costApprox: -1}
	for _, o := range opts {
		o(t)
	}
	if t.group == nil {
		t.group = rt.defaultGroup()
	}
	g := t.group
	if g.rt != rt {
		panic("sig: task label belongs to a different runtime")
	}
	// rt.mu is held through dispatch so Submit cannot race Close: once
	// Close marks the runtime closed, every in-flight Submit has fully
	// entered its group (and will be drained by Close's WaitAll), and
	// every later Submit panics before touching the queue.
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		panic("sig: Submit on closed runtime")
	}

	g.submitted.Add(1)
	t.wave = int(g.wave.Load())
	for _, r := range t.ins {
		g.inBytes.Add(int64(r.Bytes))
	}
	for _, r := range t.outs {
		g.outBytes.Add(int64(r.Bytes))
	}
	g.enter()

	// The special significance values bypass the policy (§2 of the paper):
	// 1.0 is unconditionally accurate, 0.0 unconditionally approximate.
	if t.Significance >= 1.0 {
		t.Decision = DecideAccurate
		rt.dispatch(t)
		return
	}
	if t.Significance <= 0.0 {
		t.Decision = DecideApprox
		rt.dispatch(t)
		return
	}

	g.mu.Lock()
	ready := g.policy.Submit(t)
	g.mu.Unlock()
	for _, r := range ready {
		rt.dispatch(r)
	}
}

// dispatch routes a decided task: dropped tasks complete immediately, the
// rest go to the worker pool.
func (rt *Runtime) dispatch(t *Task) {
	if t.Decision == DecideDrop {
		t.group.dropped.Add(1)
		t.group.record(t, false)
		t.group.leave()
		return
	}
	rt.queue <- t
}

func (rt *Runtime) worker(id int) {
	defer rt.wg.Done()
	for t := range rt.queue {
		rt.execute(id, t)
	}
}

func (rt *Runtime) execute(id int, t *Task) {
	g := t.group
	d := t.Decision
	if d == DecideAtWorker {
		g.mu.Lock()
		p := g.policy
		g.mu.Unlock()
		d = p.WorkerDecide(id, t)
		t.Decision = d
	}
	switch d {
	case DecideAccurate:
		rt.runBody(id, t.accurate, t.costAcc)
		g.accurate.Add(1)
		g.record(t, true)
	case DecideApprox:
		if t.approx != nil {
			rt.runBody(id, t.approx, t.costApprox)
		} else if t.costApprox > 0 {
			atomic.AddInt64(&rt.busyNS[id], int64(t.costApprox))
		}
		g.approximate.Add(1)
		g.record(t, false)
	case DecideDrop:
		g.dropped.Add(1)
		g.record(t, false)
	default:
		panic(fmt.Sprintf("sig: task executed with undecided decision %d", d))
	}
	g.leave()
}

// runBody executes one task body and charges its work to the worker's busy
// account: the declared cost when the task carries one (deterministic), the
// measured execution time otherwise.
func (rt *Runtime) runBody(id int, body func(), cost float64) {
	if cost >= 0 {
		body()
		atomic.AddInt64(&rt.busyNS[id], int64(cost))
		return
	}
	start := time.Now()
	body()
	atomic.AddInt64(&rt.busyNS[id], int64(time.Since(start)))
}

func (g *Group) enter() {
	g.pendMu.Lock()
	g.pending++
	g.pendMu.Unlock()
}

func (g *Group) leave() {
	g.pendMu.Lock()
	g.pending--
	if g.pending == 0 {
		g.pendC.Broadcast()
	}
	g.pendMu.Unlock()
}

func (g *Group) record(t *Task, accurate bool) {
	if !g.rt.cfg.RecordDecisions {
		return
	}
	g.mu.Lock()
	g.log = append(g.log, DecisionRecord{Significance: t.Significance, Accurate: accurate, Wave: t.wave})
	g.mu.Unlock()
}

// providedRatio is the achieved accurate fraction over all decided tasks.
func (g *Group) providedRatio() float64 {
	acc := g.accurate.Load()
	total := acc + g.approximate.Load() + g.dropped.Load()
	if total == 0 {
		return 0
	}
	return float64(acc) / float64(total)
}

// Wait is the taskwait of the model: it flushes the group's policy buffer,
// blocks until every task of the group has completed (or been dropped) and
// returns the accuracy ratio the run actually provided.
func (rt *Runtime) Wait(g *Group) float64 {
	if g == nil {
		g = rt.defaultGroup()
	}
	g.mu.Lock()
	ready := g.policy.Flush()
	g.mu.Unlock()
	for _, t := range ready {
		rt.dispatch(t)
	}
	g.pendMu.Lock()
	for g.pending > 0 {
		g.pendC.Wait()
	}
	g.pendMu.Unlock()
	g.wave.Add(1)
	return g.providedRatio()
}

// WaitAll waits on every group ever created on this runtime.
func (rt *Runtime) WaitAll() {
	rt.mu.Lock()
	groups := append([]*Group(nil), rt.order...)
	rt.mu.Unlock()
	for _, g := range groups {
		rt.Wait(g)
	}
}

// Close drains all groups, stops the workers and freezes the energy report.
// It is idempotent. Energy and Stats remain valid after Close; Energy is
// additionally guaranteed to be stable (repeated calls return the identical
// report), which makes `rt.Close(); rep := rt.Energy()` a supported idiom.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	rt.mu.Unlock()

	rt.WaitAll()
	close(rt.queue)
	rt.wg.Wait()

	rep := rt.report(time.Since(rt.start))
	rt.mu.Lock()
	rt.frozen = &rep
	rt.mu.Unlock()
	return nil
}

// Energy returns the modeled energy report. Before Close it is a live
// snapshot; after Close it is frozen at the moment the last task finished
// and stays stable across calls.
func (rt *Runtime) Energy() Report {
	rt.mu.Lock()
	frozen := rt.frozen
	rt.mu.Unlock()
	if frozen != nil {
		return *frozen
	}
	return rt.report(time.Since(rt.start))
}

func (rt *Runtime) report(wall time.Duration) Report {
	var busy int64
	for i := range rt.busyNS {
		busy += atomic.LoadInt64(&rt.busyNS[i])
	}
	return rt.energy.report(wall, time.Duration(busy), rt.workers)
}

// Stats returns a snapshot of per-group task accounting.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	groups := append([]*Group(nil), rt.order...)
	rt.mu.Unlock()
	st := Stats{}
	for _, g := range groups {
		gs := GroupStats{
			Name:           g.name,
			Submitted:      int(g.submitted.Load()),
			Accurate:       int(g.accurate.Load()),
			Approximate:    int(g.approximate.Load()),
			Dropped:        int(g.dropped.Load()),
			RequestedRatio: g.Ratio(),
			ProvidedRatio:  g.providedRatio(),
			InBytes:        g.inBytes.Load(),
			OutBytes:       g.outBytes.Load(),
		}
		if rt.cfg.RecordDecisions {
			g.mu.Lock()
			gs.Decisions = append([]DecisionRecord(nil), g.log...)
			g.mu.Unlock()
		}
		st.Groups = append(st.Groups, gs)
		st.Submitted += gs.Submitted
		st.Accurate += gs.Accurate
		st.Approximate += gs.Approximate
		st.Dropped += gs.Dropped
	}
	return st
}

func clamp01(x float64) float64 {
	switch {
	case x < 0 || math.IsNaN(x):
		return 0
	case x > 1:
		return 1
	}
	return x
}

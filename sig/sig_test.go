package sig

import (
	"math"
	"testing"
	"time"
)

// submitBatch submits n tasks with significances cycling over nine levels
// in (0,1) and returns the group plus a record of which ran accurately.
func submitBatch(t *testing.T, rt *Runtime, n int, ratio float64) (*Group, []bool) {
	t.Helper()
	grp := rt.Group("batch", ratio)
	accurate := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		rt.Submit(
			func() { accurate[i] = true },
			WithLabel(grp),
			WithSignificance(float64(i%9+1)/10),
			WithApprox(func() {}),
			WithCost(100, 10),
		)
	}
	return grp, accurate
}

func newRT(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1 // deterministic decision order for policy tests
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestEnergyStableAfterClose is the regression test for the documented
// contract that Energy() is valid and stable after Close — the idiom the
// sobel example relies on (rt.Close(); rep := rt.Energy()).
func TestEnergyStableAfterClose(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyGTBMaxBuffer})
	_, _ = submitBatch(t, rt, 50, 0.5)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	rep1 := rt.Energy()
	time.Sleep(5 * time.Millisecond)
	rep2 := rt.Energy()
	if rep1 != rep2 {
		t.Errorf("Energy() not stable after Close: first %+v, then %+v", rep1, rep2)
	}
	if rep1.Joules <= 0 {
		t.Errorf("expected positive modeled energy, got %v", rep1.Joules)
	}
	if rep1.Wall <= 0 {
		t.Errorf("expected positive wall time, got %v", rep1.Wall)
	}
	// With declared costs the energy account is exact: 25 accurate
	// (cost 100) + 25 approximate (cost 10) at ActiveWatts per ns.
	wantBusy := time.Duration(25*100 + 25*10)
	if rep1.Busy != wantBusy {
		t.Errorf("modeled busy = %v, want %v", rep1.Busy, wantBusy)
	}
}

// TestPolicyRatioCompliance checks requested-vs-provided accurate ratios
// for every built-in policy.
func TestPolicyRatioCompliance(t *testing.T) {
	const n = 450
	cases := []struct {
		name      string
		cfg       Config
		ratio     float64
		want      float64
		tolerance float64
	}{
		{"Accurate", Config{Policy: PolicyAccurate}, 0.3, 1.0, 0},
		{"GTBMax-0.3", Config{Policy: PolicyGTBMaxBuffer}, 0.3, 0.3, 1.0 / n},
		{"GTBMax-0.6", Config{Policy: PolicyGTBMaxBuffer}, 0.6, 0.6, 1.0 / n},
		{"GTB-0.3", Config{Policy: PolicyGTB, GTBWindow: 32}, 0.3, 0.3, 0.02},
		{"GTB-0.6", Config{Policy: PolicyGTB, GTBWindow: 8}, 0.6, 0.6, 0.02},
		{"Perforation-0.3", Config{Policy: PolicyPerforation}, 0.3, 0.3, 0.02},
		{"LQH-0.3", Config{Policy: PolicyLQH}, 0.3, 0.3, 0.15},
		{"LQH-0.6", Config{Policy: PolicyLQH}, 0.6, 0.6, 0.15},
		{"LQH-short-history", Config{Policy: PolicyLQH, LQHHistory: 4}, 0.4, 0.4, 0.15},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := newRT(t, tc.cfg)
			defer rt.Close()
			grp, _ := submitBatch(t, rt, n, tc.ratio)
			provided := rt.Wait(grp)
			if math.Abs(provided-tc.want) > tc.tolerance+1e-9 {
				t.Errorf("%s: requested ratio %.2f, provided %.3f (tolerance %.3f)",
					tc.name, tc.ratio, provided, tc.tolerance)
			}
		})
	}
}

// TestGTBMaxPicksTopSignificance checks the max-buffering policy is the
// significance oracle: exactly the most significant tasks run accurately.
func TestGTBMaxPicksTopSignificance(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyGTBMaxBuffer})
	defer rt.Close()
	const n = 90 // 10 tasks per significance level
	grp, accurate := submitBatch(t, rt, n, 0.3)
	rt.Wait(grp)
	// ratio 0.3 of 90 = 27 accurate slots; levels 0.9 and 0.8 fill 20,
	// level 0.7 takes the remaining 7 (lowest Seq first).
	for i := 0; i < n; i++ {
		level := float64(i%9+1) / 10
		switch {
		case level >= 0.8 && !accurate[i]:
			t.Errorf("task %d (sig %.1f) should be accurate", i, level)
		case level <= 0.6 && accurate[i]:
			t.Errorf("task %d (sig %.1f) should be approximate", i, level)
		}
	}
}

// TestSpecialSignificanceValues: 1.0 must always run accurately and 0.0
// always approximately, whatever the policy and ratio ask.
func TestSpecialSignificanceValues(t *testing.T) {
	for _, kind := range []PolicyKind{PolicyGTB, PolicyGTBMaxBuffer, PolicyLQH, PolicyPerforation} {
		rt := newRT(t, Config{Policy: kind})
		grp := rt.Group("special", 0.5)
		var ranAcc, ranApprox bool
		rt.Submit(func() { ranAcc = true }, WithLabel(grp),
			WithSignificance(1.0), WithApprox(func() {}))
		rt.Submit(func() {}, WithLabel(grp),
			WithSignificance(0.0), WithApprox(func() { ranApprox = true }))
		rt.Wait(grp)
		rt.Close()
		if !ranAcc {
			t.Errorf("%v: significance 1.0 did not run accurately", kind)
		}
		if !ranApprox {
			t.Errorf("%v: significance 0.0 did not run approximately", kind)
		}
	}
}

// TestWaitReturnsProvidedRatio checks Wait's return value matches Stats.
func TestWaitReturnsProvidedRatio(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyGTBMaxBuffer})
	defer rt.Close()
	grp, _ := submitBatch(t, rt, 100, 0.4)
	provided := rt.Wait(grp)
	st := rt.Stats()
	for _, g := range st.Groups {
		if g.Name != "batch" {
			continue
		}
		if math.Abs(g.ProvidedRatio-provided) > 1e-9 {
			t.Errorf("Wait returned %.3f but Stats says %.3f", provided, g.ProvidedRatio)
		}
		if g.Accurate != 40 {
			t.Errorf("expected 40 accurate of 100, got %d", g.Accurate)
		}
	}
}

// TestApproxWithoutBodyIsSkipped: a task selected for approximation without
// an approximate body must be skipped without running anything, and the
// skip is the model's task dropping — counted dropped, never approximate.
func TestApproxWithoutBodyIsSkipped(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyGTBMaxBuffer})
	defer rt.Close()
	grp := rt.Group("skip", 0.0)
	ran := false
	rt.Submit(func() { ran = true }, WithLabel(grp), WithSignificance(0.5))
	rt.Wait(grp)
	if ran {
		t.Error("task without approx body ran accurately despite ratio 0")
	}
	st := rt.Stats()
	if st.Dropped != 1 || st.Approximate != 0 {
		t.Errorf("skipped task must count as dropped: got %+v", st)
	}
}

// TestSkippedTaskCostsZeroJoules is the regression test for the energy
// accounting of body-less approximate decisions: no code runs, so nothing
// may be charged to the modeled energy account — whatever approximate cost
// the task declared. With declared costs the report is exact, so the busy
// account must show only the accurate task's cost.
func TestSkippedTaskCostsZeroJoules(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyGTBMaxBuffer})
	grp := rt.Group("skip", 0.0)
	// One unconditionally accurate task (cost 100) and three skipped ones
	// that declare a non-zero approximate cost but carry no body.
	rt.Submit(func() {}, WithLabel(grp), WithSignificance(1.0), WithCost(100, 40))
	for i := 0; i < 3; i++ {
		rt.Submit(func() {}, WithLabel(grp), WithSignificance(0.5), WithCost(100, 40))
	}
	rt.Wait(grp)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	rep := rt.Energy()
	if want := time.Duration(100); rep.Busy != want {
		t.Errorf("modeled busy = %v, want %v: skipped tasks were charged for work that never ran", rep.Busy, want)
	}
	st := rt.Stats()
	if st.Accurate != 1 || st.Dropped != 3 || st.Approximate != 0 {
		t.Errorf("accounting %d/%d/%d (acc/approx/drop), want 1/0/3",
			st.Accurate, st.Approximate, st.Dropped)
	}
}

// TestSubmitOnClosedRuntimeReleasesTask: Submit draws its *Task from the
// pool before the closed check panics; the failed call must hand the task
// back instead of leaking it.
func TestSubmitOnClosedRuntimeReleasesTask(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyAccurate})
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// Each attempt drains the pool (Submit's own pools.get empties it
	// first), panics, and must hand its task back; the follow-up Get sees
	// it. Under -race, sync.Pool deliberately drops ~25% of Puts, so one
	// round proves nothing — retry until a released task shows up; only an
	// astronomically unlikely run (0.25^attempts) exhausts the loop.
	const attempts = 50
	found := false
	for i := 0; i < attempts && !found; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Submit on closed runtime did not panic")
				}
			}()
			rt.Submit(func() {})
		}()
		found = rt.pools.single.Get() != nil
	}
	if !found {
		t.Errorf("no released task found in the pool after %d panicking Submits", attempts)
	}
}

// TestSubmitBatchNilBodyValidatedUpfront: a nil Fn anywhere in the batch
// must panic before any task of the batch is dispatched or any slab drawn.
func TestSubmitBatchNilBodyValidatedUpfront(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyAccurate})
	defer rt.Close()
	g := rt.Group("batch", 1.0)
	ran := false
	specs := make([]TaskSpec, 80)
	for i := range specs {
		specs[i] = TaskSpec{Fn: func() { ran = true }}
	}
	specs[77].Fn = nil // in the second slab chunk
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SubmitBatch with nil body did not panic")
			}
		}()
		rt.SubmitBatch(g, specs)
	}()
	rt.Wait(g)
	if ran {
		t.Error("tasks of a rejected batch were dispatched")
	}
	if st := rt.Stats(); st.Submitted != 0 {
		t.Errorf("rejected batch counted %d submitted tasks", st.Submitted)
	}
}

// TestGroupStatsCounterWidth pins the counter snapshots to 64 bits: the
// assignments below stop compiling if a field is narrowed back to int, and
// the runtime check exercises values past 2^32 as a long-running 32-bit
// serving process would reach them.
func TestGroupStatsCounterWidth(t *testing.T) {
	var gs GroupStats
	var st Stats
	var _ int64 = gs.Submitted
	var _ int64 = gs.Accurate
	var _ int64 = gs.Approximate
	var _ int64 = gs.Dropped
	var _ int64 = st.Submitted
	var _ int64 = st.Accurate
	var _ int64 = st.Approximate
	var _ int64 = st.Dropped

	rt := newRT(t, Config{Policy: PolicyAccurate})
	defer rt.Close()
	g := rt.Group("wide", 1.0)
	const big = int64(5) << 32
	g.submitted.Store(big + 3)
	g.accurate.Store(big)
	g.approximate.Store(2)
	g.dropped.Store(1)
	snap := rt.Stats()
	got := snap.Groups[0]
	if got.Submitted != big+3 || got.Accurate != big || got.Approximate != 2 || got.Dropped != 1 {
		t.Errorf("Stats truncated 64-bit counters: %+v", got)
	}
	if snap.Submitted != big+3 || snap.Accurate != big {
		t.Errorf("runtime-wide totals truncated: %+v", snap)
	}
}

// TestPerforationDropsAreCounted: perforation must drop, not approximate.
func TestPerforationDropsAreCounted(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyPerforation})
	defer rt.Close()
	grp, _ := submitBatch(t, rt, 100, 0.25)
	rt.Wait(grp)
	st := rt.Stats()
	g := st.Groups[0]
	if g.Accurate != 25 || g.Dropped != 75 || g.Approximate != 0 {
		t.Errorf("perforation at 0.25 over 100 tasks: got %d accurate / %d approx / %d dropped",
			g.Accurate, g.Approximate, g.Dropped)
	}
}

// TestDefaultGroupKeepsConfiguredRatio: unlabeled submissions and Wait(nil)
// must not reset a ratio the user set on the default group.
func TestDefaultGroupKeepsConfiguredRatio(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyGTBMaxBuffer})
	defer rt.Close()
	rt.Group("", 0.5)
	n := 0
	for i := 0; i < 10; i++ {
		rt.Submit(func() { n++ }, WithSignificance(float64(i%9+1)/10), WithApprox(func() {}))
	}
	provided := rt.Wait(nil)
	if math.Abs(provided-0.5) > 1e-9 {
		t.Errorf("default-group ratio 0.5 not honored: provided %.2f", provided)
	}
	if n != 5 {
		t.Errorf("expected 5 accurate executions, got %d", n)
	}
}

// TestCustomPolicyPlugsIn: Config.NewPolicy overrides the built-ins without
// touching the scheduler.
func TestCustomPolicyPlugsIn(t *testing.T) {
	rt := newRT(t, Config{NewPolicy: func(g *Group) Policy { return accuratePolicy{} }})
	defer rt.Close()
	grp, accurate := submitBatch(t, rt, 20, 0.0)
	rt.Wait(grp)
	for i, acc := range accurate {
		if !acc {
			t.Errorf("custom always-accurate policy: task %d ran approximately", i)
		}
	}
}

package adapt_test

import (
	"math"
	"testing"

	"repro/sig"
	"repro/sig/adapt"
)

// streamWorkload drives a synthetic streaming workload under a controller:
// waves of n tasks whose significances follow a fixed pattern, with
// declared costs so modeled energy is deterministic. It returns the
// controller's trace. The quality probe is the significance-weighted
// accurate fraction of the last wave — a deterministic, monotone function
// of the ratio under GTB max buffering.
func streamWorkload(t *testing.T, workers, waves, n int, startRatio float64, mk func(probe func() float64) *adapt.Controller) []adapt.Sample {
	t.Helper()
	ranAcc := make([]bool, n)
	sigs := make([]float64, n)
	var total float64
	for i := range sigs {
		sigs[i] = float64(i*37%96+1) / 97
		total += sigs[i]
	}
	probe := func() float64 {
		var acc float64
		for i, ok := range ranAcc {
			if ok {
				acc += sigs[i]
			}
		}
		return acc / total
	}
	ctl := mk(probe)
	rt, err := sig.New(sig.Config{Workers: workers, Policy: sig.PolicyGTBMaxBuffer, Observer: ctl})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	g := rt.Group("stream", startRatio)
	for w := 0; w < waves; w++ {
		for i := range ranAcc {
			ranAcc[i] = false
		}
		for i := 0; i < n; i++ {
			i := i
			rt.Submit(func() { ranAcc[i] = true },
				sig.WithLabel(g),
				sig.WithSignificance(sigs[i]),
				sig.WithApprox(func() {}),
				sig.WithCost(100, 10))
		}
		rt.WaitPhase(g)
	}
	return ctl.Trace()
}

func qualityController(t *testing.T, setpoint float64) func(func() float64) *adapt.Controller {
	return func(probe func() float64) *adapt.Controller {
		ctl, err := adapt.New(adapt.Config{
			Group:     "stream",
			Objective: adapt.TargetQuality,
			Setpoint:  setpoint,
			Probe:     probe,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctl
	}
}

// trajectory flattens a trace into the commanded-ratio sequence.
func trajectory(trace []adapt.Sample) []float64 {
	out := make([]float64, len(trace))
	for i, s := range trace {
		out[i] = s.NextRatio
	}
	return out
}

// TestDeterministicReplay: with a fixed workload and modeled costs, the
// controller must reproduce the bit-identical ratio trajectory run-to-run
// and across 1, 4 and 16 workers (and under -race — the CI race job runs
// this test). This is the replay contract that makes adaptive runs
// debuggable: the trajectory is a pure function of the stream.
func TestDeterministicReplay(t *testing.T) {
	const waves, n = 15, 128
	var want []float64
	for _, workers := range []int{1, 4, 16} {
		for run := 0; run < 2; run++ {
			trace := streamWorkload(t, workers, waves, n, 0.2, qualityController(t, 0.8))
			if len(trace) != waves {
				t.Fatalf("workers=%d run=%d: trace has %d waves, want %d", workers, run, len(trace), waves)
			}
			got := trajectory(trace)
			if want == nil {
				want = got
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d run=%d: trajectory diverged at wave %d: %.17g != %.17g\nwant %v\ngot  %v",
						workers, run, i, got[i], want[i], want, got)
				}
			}
		}
	}
}

// TestEnergyTargetReplayAndCap: the TargetEnergy trajectory is equally
// deterministic, converges under the budget, and lands near the analytic
// oracle ratio (wave energy is linear in the accurate count with declared
// costs 100/10).
func TestEnergyTargetReplayAndCap(t *testing.T) {
	const waves, n = 15, 128
	// Budget = energy of a wave with exactly half the tasks accurate.
	budget := sig.DefaultActiveWatts * float64(n/2*100+n/2*10) * 1e-9
	mk := func(func() float64) *adapt.Controller {
		ctl, err := adapt.New(adapt.Config{
			Group:     "stream",
			Objective: adapt.TargetEnergy,
			Budget:    budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctl
	}
	var want []float64
	for _, workers := range []int{1, 4, 16} {
		trace := streamWorkload(t, workers, waves, n, 1.0, mk)
		got := trajectory(trace)
		if want == nil {
			want = got
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: energy trajectory diverged at wave %d: %v vs %v", workers, i, got, want)
				}
			}
		}
		last := trace[len(trace)-1]
		if last.Joules > budget*(1+1e-9) {
			t.Errorf("workers=%d: steady-state wave energy %.6gJ exceeds budget %.6gJ", workers, last.Joules, budget)
		}
		if math.Abs(last.ProvidedRatio-0.5) > 0.05 {
			t.Errorf("workers=%d: steady-state ratio %.3f, want within 0.05 of the analytic oracle 0.5", workers, last.ProvidedRatio)
		}
	}
}

// TestLoadTargetCapsCustomMeasure: TargetLoad regulates a caller-computed
// signal with cap semantics — the steady state provides the highest ratio
// whose load fits the budget, and the trajectory replays identically across
// worker counts. The synthetic measure is linear in the ratio (load =
// 0.4 + 1.6*ratio, so load = 1.2 exactly at ratio 0.5), mirroring how
// sig/serve prices demand from declared request costs.
func TestLoadTargetCapsCustomMeasure(t *testing.T) {
	const waves, n = 15, 128
	mk := func(func() float64) *adapt.Controller {
		ctl, err := adapt.New(adapt.Config{
			Group:     "stream",
			Objective: adapt.TargetLoad,
			Budget:    1.2,
			Measure: func(ws sig.WaveStats) float64 {
				return 0.4 + 1.6*ws.RequestedRatio
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctl
	}
	var want []float64
	for _, workers := range []int{1, 4} {
		trace := streamWorkload(t, workers, waves, n, 1.0, mk)
		got := trajectory(trace)
		if want == nil {
			want = got
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: load trajectory diverged at wave %d: %v vs %v", workers, i, got, want)
				}
			}
		}
		last := trace[len(trace)-1]
		if last.Measure > 1.2*(1+1e-9) {
			t.Errorf("workers=%d: steady-state load %.4f exceeds the 1.2 cap", workers, last.Measure)
		}
		if math.Abs(last.NextRatio-0.5) > 0.05 {
			t.Errorf("workers=%d: steady-state ratio %.3f, want within 0.05 of the analytic 0.5", workers, last.NextRatio)
		}
	}
}

// TestQualityConvergesToSetpointFloor: the controller must settle at the
// cheapest ratio holding the probe at or above the setpoint — approaching
// from below (step response up) and from above (minimal energy seeking).
func TestQualityConvergesToSetpointFloor(t *testing.T) {
	const waves, n = 15, 128
	for _, start := range []float64{0.05, 1.0} {
		trace := streamWorkload(t, 1, waves, n, start, qualityController(t, 0.8))
		last := trace[len(trace)-1]
		if last.Measure < 0.8 {
			t.Errorf("start=%.2f: steady-state quality %.4f below setpoint 0.8", start, last.Measure)
		}
		if last.Measure > 0.85 {
			t.Errorf("start=%.2f: steady-state quality %.4f wastes energy (far above setpoint)", start, last.Measure)
		}
		if !last.Held {
			t.Errorf("start=%.2f: controller still moving at wave %d (measure %.4f -> next %.3f)",
				start, last.Wave, last.Measure, last.NextRatio)
		}
	}
}

// TestControllerIgnoresOtherGroupsAndEmptyWaves: waves of foreign groups
// and the empty drain at Close must leave the trace untouched.
func TestControllerIgnoresOtherGroupsAndEmptyWaves(t *testing.T) {
	ctl, err := adapt.New(adapt.Config{
		Group: "mine", Objective: adapt.TargetQuality, Setpoint: 1, Probe: func() float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sig.New(sig.Config{Workers: 1, Policy: sig.PolicyGTBMaxBuffer, Observer: ctl})
	if err != nil {
		t.Fatal(err)
	}
	other := rt.Group("other", 0.5)
	rt.Submit(func() {}, sig.WithLabel(other), sig.WithSignificance(0.5), sig.WithApprox(func() {}))
	rt.Wait(other)
	mine := rt.Group("mine", 0.5)
	rt.Wait(mine) // empty wave
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ctl.Trace(); len(got) != 0 {
		t.Errorf("controller observed %d waves, want 0 (foreign + empty waves ignored): %+v", len(got), got)
	}
	if !math.IsNaN(ctl.Ratio()) {
		t.Errorf("Ratio() before any controlled wave = %v, want NaN", ctl.Ratio())
	}
}

// TestConfigValidation covers the constructor's error paths.
func TestConfigValidation(t *testing.T) {
	cases := []adapt.Config{
		{Objective: adapt.TargetQuality, Setpoint: 1},                                               // no probe
		{Objective: adapt.TargetQuality, Setpoint: math.Inf(1), Probe: func() float64 { return 0 }}, // bad setpoint
		{Objective: adapt.TargetEnergy},                                                             // no budget
		{Objective: adapt.TargetEnergy, Budget: -2},                                                 // negative budget
		{Objective: adapt.TargetLoad, Budget: 1},                                                    // no measure
		{Objective: adapt.TargetLoad, Measure: func(sig.WaveStats) float64 { return 0 }},            // no budget
		{Objective: adapt.Objective(42)},                                                            // unknown objective
		{Objective: adapt.TargetEnergy, Budget: 1, Min: 0.9, Max: 0.1},                              // inverted bounds
		{Objective: adapt.TargetEnergy, Budget: 1, Min: -0.5},                                       // out-of-range bound
	}
	for i, cfg := range cases {
		if _, err := adapt.New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}

// TestControllerHotPathAllocs: attaching a live controller must keep the
// per-task submit path allocation-free — the adaptive loop's work happens
// at wave boundaries only.
func TestControllerHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is noisy under -short race runs")
	}
	ctl, err := adapt.New(adapt.Config{
		Group: "alloc", Objective: adapt.TargetQuality, Setpoint: 0.5,
		Probe: func() float64 { return 0.5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sig.New(sig.Config{Workers: 1, Policy: sig.PolicyGTBMaxBuffer, Observer: ctl})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	g := rt.Group("alloc", 0.5)
	body := func() {}
	opts := []sig.TaskOption{sig.WithLabel(g), sig.WithSignificance(0.5), sig.WithApprox(body), sig.WithCost(50, 5)}
	for i := 0; i < 4000; i++ {
		rt.Submit(body, opts...)
	}
	rt.Wait(g)
	avg := testing.AllocsPerRun(2000, func() {
		rt.Submit(body, opts...)
	})
	rt.Wait(g)
	if avg > 0 {
		t.Errorf("%.2f allocs per submitted task with a controller attached, want 0", avg)
	}
}

// TestTargetLoadZeroCostWaves pins the load objective's zero-demand edges,
// previously untested: waves whose tasks all declare zero cost (measure 0,
// no usable secant slope) and fully empty waves (which TargetLoad must
// process — zero demand is information) both walk a shed ratio back up to
// Max without a NaN or an out-of-bounds command ever reaching the group.
func TestTargetLoadZeroCostWaves(t *testing.T) {
	ctl, err := adapt.New(adapt.Config{
		Group:     "zero",
		Objective: adapt.TargetLoad,
		Budget:    1.0,
		Measure:   func(ws sig.WaveStats) float64 { return ws.Joules }, // 0 for zero-cost work
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sig.New(sig.Config{Workers: 1, Policy: sig.PolicyGTBMaxBuffer, Observer: ctl})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	g := rt.Group("zero", 0.05) // start shed, as after an overload

	for wave := 0; wave < 12; wave++ {
		if wave%2 == 0 { // alternate zero-cost and fully empty waves
			for i := 0; i < 16; i++ {
				rt.Submit(func() {}, sig.WithLabel(g),
					sig.WithSignificance(float64(i%9+1)/10),
					sig.WithApprox(func() {}), sig.WithCost(0, 0))
			}
		}
		rt.WaitPhase(g)
		r := g.Ratio()
		if math.IsNaN(r) || r < 0 || r > 1 {
			t.Fatalf("wave %d: commanded ratio %v out of [0,1]", wave, r)
		}
	}
	trace := ctl.Trace()
	if len(trace) != 12 {
		t.Fatalf("controller observed %d waves, want 12 (empty waves are informative for TargetLoad)", len(trace))
	}
	for i, s := range trace {
		if math.IsNaN(s.Measure) || math.IsNaN(s.NextRatio) {
			t.Fatalf("wave %d: NaN in the trace: %+v", i, s)
		}
		if s.Measure != 0 {
			t.Errorf("wave %d: zero-cost wave measured %v", i, s.Measure)
		}
	}
	if got := g.Ratio(); got != 1 {
		t.Errorf("ratio %v after 12 zero-demand waves, want recovered to the Max of 1", got)
	}
}

// Package adapt closes the quality/energy feedback loop the paper's §5
// leaves to the runtime: an online Controller owns a task group's accuracy
// ratio and retunes it wave by wave from the per-wave telemetry the sig
// runtime publishes through its Observer hook.
//
// Three objectives are supported. TargetQuality drives a caller-supplied
// quality probe to a setpoint using the lowest ratio that holds it — the
// operator's "hold PSNR above X with minimum energy". TargetEnergy caps the
// modeled joules per wave while providing the highest ratio the budget
// affords. TargetLoad is TargetEnergy with a pluggable measure: it caps a
// caller-computed load signal (sig/serve uses it to map queue depth and
// modeled demand onto the ratio). All laws are pure float arithmetic over
// the wave telemetry (no
// clocks, no randomness), so a run with declared task costs and a
// deterministic policy reproduces the identical ratio trajectory at any
// worker count — regression-tested under -race.
//
// Usage:
//
//	ctl, _ := adapt.New(adapt.Config{
//		Group:     "sobel",
//		Objective: adapt.TargetQuality,
//		Setpoint:  17, // dB
//		Probe:     func() float64 { return imaging.PSNR(ref, out) },
//	})
//	rt, _ := sig.New(sig.Config{Policy: sig.PolicyGTBMaxBuffer, Observer: ctl})
//	grp := rt.Group("sobel", 1.0)
//	for each frame {
//		app.SubmitFrame(rt, grp, out)
//		ws := rt.WaitPhase(grp) // controller retunes grp's ratio here
//	}
//
//siglint:deterministic
package adapt

import (
	"fmt"
	"math"
	"sync"

	"repro/sig"
)

// Objective selects what the controller regulates.
type Objective int

const (
	// TargetQuality drives the quality probe to Config.Setpoint with the
	// lowest ratio (hence minimal modeled energy) that holds it.
	TargetQuality Objective = iota
	// TargetEnergy caps the modeled joules per wave at Config.Budget while
	// providing the highest ratio that fits the cap.
	TargetEnergy
	// TargetLoad caps a caller-measured load signal (Config.Measure — e.g.
	// a serving layer's queue depth or modeled demand vs capacity) at
	// Config.Budget while providing the highest ratio that fits the cap.
	// It is TargetEnergy's control law with a pluggable measure: the
	// signal must be monotone increasing in the ratio.
	TargetLoad
)

// Default controller gains. They assume nothing about the probe's units:
// errors are normalized by the setpoint's magnitude and the secant estimate
// takes over as soon as two informative waves exist.
const (
	// DefaultGain is the proportional gain on the normalized error.
	DefaultGain = 2.0
	// DefaultMaxStep bounds the per-wave ratio change.
	DefaultMaxStep = 0.25
	// DefaultDeadband is the relative error inside which the ratio holds.
	DefaultDeadband = 0.02
)

// WindowFloor is a long-run quality SLO layered over any objective: the
// mean provided ratio over the last Window waves must stay at or above
// Floor. It is the windowed (long-run average) form of a quality floor —
// per-wave ratios may dip below Floor during transients, as long as the
// surrounding window makes up for the dip. PAPERS.md's "Long-Run Average
// Behavior of VASS" motivates the form: hold the SLO as an average over a
// sliding window rather than per step.
type WindowFloor struct {
	// Window is the averaging horizon in waves (≥ 1). Window 1 degenerates
	// to a per-wave floor.
	Window int
	// Floor is the windowed mean provided ratio to hold, in [0, Config.Max].
	Floor float64
}

// Config parameterizes a Controller.
type Config struct {
	// Group names the controlled task group ("" = the default group).
	Group string
	// Objective selects the control law.
	Objective Objective
	// Setpoint is the quality target, in the probe's units, for
	// TargetQuality. Higher probe values must mean better quality (PSNR
	// does; invert lower-is-better metrics in the probe).
	Setpoint float64
	// Probe measures the completed wave's output quality. Required for
	// TargetQuality; called once per wave on the goroutine that invoked
	// Wait/WaitPhase, after every task of the wave finished.
	Probe func() float64
	// Budget is the cap on the regulated variable: modeled joules per wave
	// for TargetEnergy, the Measure signal's units for TargetLoad.
	Budget float64
	// Measure maps the completed wave's telemetry to the regulated load
	// signal. Required for TargetLoad; called once per wave on the
	// goroutine that invoked Wait/WaitPhase, so it may also read state the
	// caller updates between waves (queue depths, arrival counts).
	Measure func(ws sig.WaveStats) float64
	// Gain, MaxStep and Deadband override the defaults when positive.
	Gain     float64
	MaxStep  float64
	Deadband float64
	// Min and Max bound the commanded ratio (defaults 0 and 1).
	Min, Max float64
	// WindowFloor, when non-nil, wraps the objective with a long-run
	// quality floor: whatever the law commands, the next ratio is raised
	// (never lowered) to the minimum that keeps the mean provided ratio
	// over the last WindowFloor.Window waves at or above WindowFloor.Floor.
	// The commanded ratio stands in for the wave it commands — exact under
	// the deterministic GTB policies up to batch quantization — and the
	// clamp is pure arithmetic over the retained window, so a floored
	// controller replays bit-identically like an unfloored one.
	WindowFloor *WindowFloor
	// TraceCap, when positive, bounds the retained control trace to the
	// most recent TraceCap samples. Long-running controllers (a serving
	// layer observing every wave for days) otherwise grow the trace without
	// bound. Zero keeps the full trace.
	TraceCap int
}

func (c Config) gain() float64 {
	if c.Gain > 0 {
		return c.Gain
	}
	return DefaultGain
}

func (c Config) maxStep() float64 {
	if c.MaxStep > 0 {
		return c.MaxStep
	}
	return DefaultMaxStep
}

func (c Config) deadband() float64 {
	if c.Deadband > 0 {
		return c.Deadband
	}
	return DefaultDeadband
}

// Sample is one wave of the controller's trace.
type Sample struct {
	// Wave is the runtime's wave index.
	Wave int
	// Ratio is the ratio that was in effect while the wave ran;
	// NextRatio is what the controller commanded for the next wave.
	Ratio     float64
	NextRatio float64
	// Measure is the regulated variable: the probe's value under
	// TargetQuality, the wave's modeled joules under TargetEnergy, the
	// Config.Measure signal under TargetLoad.
	Measure float64
	// ProvidedRatio, Joules and Dropped echo the wave telemetry.
	ProvidedRatio float64
	Joules        float64
	Dropped       int
	// Held reports that the measure sat inside the deadband and the
	// ratio was left alone.
	Held bool
	// WindowMean is the mean provided ratio over the retained WindowFloor
	// window after this wave (0 when no WindowFloor is configured).
	WindowMean float64
}

// Controller is a per-group feedback controller. It implements
// sig.Observer; attach it through sig.Config.Observer and it takes
// ownership of the group's ratio from the first completed wave on.
type Controller struct {
	cfg Config

	mu    sync.Mutex
	trace []Sample
	// prev is the last informative (ratio, measure) point, used for the
	// secant slope estimate.
	prevRatio   float64
	prevMeasure float64
	havePrev    bool
	// win is WindowFloor's ring of the last Window provided ratios: winN
	// valid entries, winIdx the next write position. Nil without a floor.
	win    []float64
	winN   int
	winIdx int
}

// New validates cfg and builds a Controller.
func New(cfg Config) (*Controller, error) {
	switch cfg.Objective {
	case TargetQuality:
		if cfg.Probe == nil {
			return nil, fmt.Errorf("adapt: TargetQuality requires a Probe")
		}
		if math.IsNaN(cfg.Setpoint) || math.IsInf(cfg.Setpoint, 0) {
			return nil, fmt.Errorf("adapt: non-finite Setpoint %v", cfg.Setpoint)
		}
	case TargetEnergy:
		if !(cfg.Budget > 0) {
			return nil, fmt.Errorf("adapt: TargetEnergy requires a positive Budget, got %v", cfg.Budget)
		}
	case TargetLoad:
		if cfg.Measure == nil {
			return nil, fmt.Errorf("adapt: TargetLoad requires a Measure")
		}
		if !(cfg.Budget > 0) {
			return nil, fmt.Errorf("adapt: TargetLoad requires a positive Budget, got %v", cfg.Budget)
		}
	default:
		return nil, fmt.Errorf("adapt: unknown objective %d", cfg.Objective)
	}
	if cfg.Max == 0 {
		cfg.Max = 1
	}
	if cfg.Min < 0 || cfg.Max > 1 || cfg.Min > cfg.Max {
		return nil, fmt.Errorf("adapt: ratio bounds [%v,%v] outside [0,1]", cfg.Min, cfg.Max)
	}
	if wf := cfg.WindowFloor; wf != nil {
		if wf.Window < 1 {
			return nil, fmt.Errorf("adapt: WindowFloor.Window %d < 1", wf.Window)
		}
		if wf.Floor < 0 || wf.Floor > cfg.Max {
			return nil, fmt.Errorf("adapt: WindowFloor.Floor %v outside [0,%v]", wf.Floor, cfg.Max)
		}
	}
	c := &Controller{cfg: cfg}
	if wf := cfg.WindowFloor; wf != nil {
		c.win = make([]float64, wf.Window)
	}
	if cfg.TraceCap > 0 {
		// The compaction bound is 2*TraceCap, so a capped trace never grows
		// its backing array: observing a wave is allocation-free, which the
		// serving layer's zero-alloc admission path depends on.
		c.trace = make([]Sample, 0, 2*cfg.TraceCap)
	}
	return c, nil
}

// Target is the retunable surface the controller drives: a named group
// whose accuracy ratio it owns. *sig.Group satisfies it, and so does a
// sharded front end's merged group (sig/shard) — the control law does not
// care how many runtimes sit behind the knob.
type Target interface {
	Name() string
	SetRatio(float64)
}

// ObserveWave implements sig.Observer; it forwards to Observe. Sharded
// routers, whose merged groups are not *sig.Group, call Observe directly.
func (c *Controller) ObserveWave(g *sig.Group, ws sig.WaveStats) { c.Observe(g, ws) }

// Observe regulates the configured group and ignores every other. For
// TargetQuality and TargetEnergy, empty waves (Close's final drain, foreign
// taskwaits) carry no information and leave the controller untouched. For
// TargetLoad an empty wave IS informative — zero demand — and is processed,
// so a load-shedding server recovers its ratio while idle instead of
// freezing at the last overload's value.
func (c *Controller) Observe(g Target, ws sig.WaveStats) {
	if g.Name() != c.cfg.Group {
		return
	}
	if ws.Submitted == 0 && c.cfg.Objective != TargetLoad {
		return
	}
	var measure float64
	switch c.cfg.Objective {
	case TargetQuality:
		measure = c.cfg.Probe()
	case TargetLoad:
		measure = c.cfg.Measure(ws)
	default:
		measure = ws.Joules
	}
	c.mu.Lock()
	next, held := c.step(ws.RequestedRatio, measure)
	var winMean float64
	if c.cfg.WindowFloor != nil {
		next, held, winMean = c.applyFloor(next, held, ws.ProvidedRatio)
	}
	// Compact lazily at 2x the cap so steady-state appends stay O(1)
	// amortized: one copy per TraceCap waves, not per wave.
	if tc := c.cfg.TraceCap; tc > 0 && len(c.trace) >= 2*tc {
		kept := copy(c.trace, c.trace[len(c.trace)-tc+1:])
		c.trace = c.trace[:kept]
	}
	c.trace = append(c.trace, Sample{
		Wave:          ws.Wave,
		Ratio:         ws.RequestedRatio,
		NextRatio:     next,
		Measure:       measure,
		ProvidedRatio: ws.ProvidedRatio,
		Joules:        ws.Joules,
		Dropped:       ws.Dropped,
		Held:          held,
		WindowMean:    winMean,
	})
	c.mu.Unlock()
	g.SetRatio(next)
}

// step runs one control update: from the ratio that produced the wave and
// the measured variable, pick the next ratio. Caller holds c.mu.
func (c *Controller) step(ratio, measure float64) (next float64, held bool) {
	setpoint := c.cfg.Setpoint
	isCap := c.cfg.Objective != TargetQuality // energy and load budgets are caps
	if isCap {
		setpoint = c.cfg.Budget
	}
	scale := math.Max(math.Abs(setpoint), 1e-12)
	maxStep := c.cfg.maxStep()

	// Non-finite measures (a probe returning +Inf on a bit-exact wave)
	// carry only a direction: quality is in gross excess, so step the
	// ratio down hard; the point is not usable for the secant estimate.
	if math.IsNaN(measure) || math.IsInf(measure, 0) {
		dir := -1.0
		if math.IsInf(measure, -1) {
			dir = 1.0
		}
		return c.clampRatio(ratio + dir*maxStep), false
	}

	// The setpoint is one-sided: a quality target is a floor (hold the
	// probe at or above it, as close as the deadband allows — that is the
	// minimal-energy point), an energy budget is a cap (stay at or below
	// it while providing as much ratio as fits). The controller holds
	// only inside the band on the safe side of the setpoint.
	err := setpoint - measure
	band := 2 * c.cfg.deadband() * scale
	var inBand bool
	if isCap {
		inBand = measure <= setpoint && setpoint-measure <= band
	} else {
		inBand = measure >= setpoint && measure-setpoint <= band
	}
	if inBand {
		c.prevRatio, c.prevMeasure, c.havePrev = ratio, measure, true
		return ratio, true
	}

	// Secant step: estimate the local measure-vs-ratio slope from the
	// last informative wave and jump to where the setpoint should sit.
	// Both objectives increase with ratio (more accurate tasks = better
	// quality, more joules), so only a positive slope is trusted;
	// otherwise fall back to a proportional step on the normalized error.
	step := c.cfg.gain() * clamp(err/scale, -1, 1) * maxStep
	if c.havePrev && ratio != c.prevRatio {
		slope := (measure - c.prevMeasure) / (ratio - c.prevRatio)
		if slope > 1e-12 {
			step = err / slope
		}
	}
	step = clamp(step, -maxStep, maxStep)
	c.prevRatio, c.prevMeasure, c.havePrev = ratio, measure, true
	return c.clampRatio(ratio + step), false
}

// applyFloor enforces Config.WindowFloor: push the completed wave's
// provided ratio into the window ring, then raise next (never lower it) so
// the windowed mean stays at or above the floor. With p_1..p_k the most
// recent min(seen, Window−1) provided ratios — the part of the next wave's
// window already fixed — the next wave must provide at least
// (k+1)·Floor − Σ p_i; the commanded ratio stands in for what it will
// provide. A floor beyond Max clamps to Max: the controller commands the
// best it can. Caller holds c.mu.
func (c *Controller) applyFloor(next float64, held bool, provided float64) (float64, bool, float64) {
	wf := c.cfg.WindowFloor
	w := len(c.win)
	c.win[c.winIdx] = provided
	c.winIdx = (c.winIdx + 1) % w
	if c.winN < w {
		c.winN++
	}
	// Sum oldest → newest so the float accumulation order is a function of
	// the trajectory alone — bit-identical under replay.
	start := (c.winIdx - c.winN + w) % w
	var sumAll float64
	for i := 0; i < c.winN; i++ {
		sumAll += c.win[(start+i)%w]
	}
	sumRecent := sumAll // the next wave's window keeps all retained waves…
	kept := c.winN
	if c.winN == w {
		sumRecent -= c.win[start] // …unless full: the oldest rolls off
		kept = w - 1
	}
	need := float64(kept+1)*wf.Floor - sumRecent
	if f := c.clampRatio(need); f > next {
		next, held = f, false
	}
	return next, held, sumAll / float64(c.winN)
}

func (c *Controller) clampRatio(r float64) float64 {
	return clamp(r, c.cfg.Min, c.cfg.Max)
}

func clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	}
	return x
}

// Trace returns a copy of the per-wave control trace.
func (c *Controller) Trace() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Sample(nil), c.trace...)
}

// Ratio returns the last commanded ratio (NaN before the first wave).
func (c *Controller) Ratio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.trace) == 0 {
		return math.NaN()
	}
	return c.trace[len(c.trace)-1].NextRatio
}

package adapt_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/sig"
	"repro/sig/adapt"
)

// fakeTarget is a bare ratio knob: the reaction-bound and window-floor
// tests drive the controller against a simulated load model, no runtime.
type fakeTarget struct {
	name  string
	ratio float64
}

func (f *fakeTarget) Name() string       { return f.name }
func (f *fakeTarget) SetRatio(r float64) { f.ratio = r }

// loadSim replays sig/serve's admission arithmetic at the cost-sum level:
// a FIFO backlog of identical declared-cost requests, greedy admission up
// to a wave budget priced at the commanded ratio, and the serve load
// signal (fresh arrivals + DrainGain·backlog, over the budget). It is the
// load model the bounds in bounds.go are derived for, stripped to the
// arithmetic.
type loadSim struct {
	ctl       *adapt.Controller
	tgt       *fakeTarget
	cAcc      float64
	cDeg      float64
	budget    float64
	drainGain float64
	backlog   int
	wave      int
	lastLoad  float64
}

func (s *loadSim) at(r float64) float64 { return r*s.cAcc + (1-r)*s.cDeg }

// runWave admits one wave of the given fresh arrivals and observes the
// controller; it returns the wave's measured load and the ratio the wave
// ran at.
func (s *loadSim) runWave(arrivals int) (load, ratio float64) {
	r := s.tgt.ratio
	s.backlog += arrivals
	var cost float64
	admitted := 0
	for admitted < s.backlog {
		c := s.at(r)
		if admitted > 0 && cost+c > s.budget {
			break
		}
		cost += c
		admitted++
	}
	s.backlog -= admitted
	load = (float64(arrivals)*s.at(r) + s.drainGain*float64(s.backlog)*s.at(r)) / s.budget
	s.lastLoad = load
	s.ctl.Observe(s.tgt, sig.WaveStats{
		Wave:           s.wave,
		RequestedRatio: r,
		ProvidedRatio:  r,
		Submitted:      admitted,
	})
	s.wave++
	return load, r
}

func newLoadSim(t *testing.T, cAcc, cDeg, budget float64, wf *adapt.WindowFloor) *loadSim {
	t.Helper()
	sim := &loadSim{
		tgt:       &fakeTarget{name: "sim", ratio: 1},
		cAcc:      cAcc,
		cDeg:      cDeg,
		budget:    budget,
		drainGain: 0.5,
	}
	ctl, err := adapt.New(adapt.Config{
		Group:       "sim",
		Objective:   adapt.TargetLoad,
		Budget:      1.0,
		Measure:     func(sig.WaveStats) float64 { return sim.lastLoad },
		WindowFloor: wf,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.ctl = ctl
	return sim
}

// TestReactionBoundsOnServingLoadModel is the invariant-suite side of the
// derived SLO bound: across randomized load steps (base rate, overload
// multiple, utilization, cost shapes) the secant law must bring the load
// back under the cap within ShedBound waves of the step, and recover the
// pre-step ratio within backlog-drain + RecoverBound waves of the step's
// end. The simulated load model satisfies the bounds' assumptions by
// construction: declared costs (affine measure), an absorbable step
// (degraded-only load under the cap), genuine overload while shedding.
func TestReactionBoundsOnServingLoadModel(t *testing.T) {
	const gain, maxStep = adapt.DefaultGain, adapt.DefaultMaxStep
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		base := 4 + rng.Intn(13)
		util := 0.5 + 0.25*rng.Float64()
		over := 2 + rng.Intn(5)
		if float64(over)*util < 1.5 {
			over = int(math.Ceil(1.6 / util)) // keep the step a genuine overload
		}
		cAcc := 10_000 + rng.Float64()*40_000
		cDeg := cAcc * (0.02 + 0.1*rng.Float64())
		sim := newLoadSim(t, cAcc, cDeg, float64(base)*cAcc/util, nil)

		for w := 0; w < 8; w++ {
			sim.runWave(base) // settle at the base rate (ratio holds at 1)
		}
		pre := sim.tgt.ratio

		// Step up: first wave with the stepped arrivals is the detect wave.
		shedBound := adapt.ShedBound(pre-0, maxStep)
		shed := -1
		stepWaves := shedBound + 4
		for w := 1; w <= stepWaves; w++ {
			load, _ := sim.runWave(base * over)
			if shed < 0 && load <= 1.0 {
				shed = w
			}
		}
		if shed < 0 || shed > shedBound {
			t.Errorf("trial %d (base=%d over=%d util=%.2f deg/acc=%.2f): shed in %d waves, bound %d",
				trial, base, over, util, cDeg/cAcc, shed, shedBound)
		}

		// Step back down: drain the leftover backlog, then climb home.
		// Per-wave net drain is at least budget/cAcc − 1 − base requests
		// (admission admits at worst full-cost requests, minus the fresh
		// base arrivals); the climb side comes from RecoverBound.
		netDrain := float64(base)/util - 1 - float64(base)
		drainWaves := 0
		if sim.backlog > 0 {
			drainWaves = int(math.Ceil(float64(sim.backlog) / netDrain))
		}
		recoverBound := drainWaves + adapt.RecoverBound(pre-0, gain, maxStep, 1-util)
		recovered := -1
		for w := 1; w <= recoverBound+5; w++ {
			sim.runWave(base)
			if sim.tgt.ratio >= pre-0.05 {
				recovered = w
				break
			}
		}
		if recovered < 0 || recovered > recoverBound {
			t.Errorf("trial %d (base=%d over=%d util=%.2f): recovered in %d waves, bound %d (drain %d)",
				trial, base, over, util, recovered, recoverBound, drainWaves)
		}
	}
}

// TestWindowFloorHoldsMean: under a sustained overload whose unfloored
// equilibrium sits below the floor, the windowed controller must (a) keep
// every full-window mean of the provided ratio at or above the floor,
// (b) still dip individual waves below it — the floor is a long-run
// average, not a per-wave clamp — and (c) replay bit-identically.
func TestWindowFloorHoldsMean(t *testing.T) {
	const window, floor = 6, 0.5
	run := func() ([]float64, []float64) {
		sim := newLoadSim(t, 30_000, 4_000, 8*30_000/0.6, &adapt.WindowFloor{Window: window, Floor: floor})
		var provided []float64
		for w := 0; w < 40; w++ {
			_, r := sim.runWave(8 * 4) // 4x overload from the start of time
			provided = append(provided, r)
		}
		var means []float64
		for _, s := range sim.ctl.Trace() {
			means = append(means, s.WindowMean)
		}
		return provided, means
	}
	provided, means := run()

	dipped := false
	for i := range provided {
		if i+1 >= window {
			var sum float64
			for _, p := range provided[i+1-window : i+1] {
				sum += p
			}
			if mean := sum / window; mean < floor-1e-9 {
				t.Errorf("window ending at wave %d: mean provided %.4f below floor %.2f", i, mean, floor)
			}
		}
		if provided[i] < floor-1e-9 {
			dipped = true
		}
	}
	if !dipped {
		t.Errorf("no wave dipped below the %.2f floor: the window clamp is acting per-wave, not long-run", floor)
	}
	// The trace's WindowMean must agree with the window recomputed from the
	// provided trajectory (they use the same summation order).
	if len(means) != len(provided) {
		t.Fatalf("trace has %d samples, want %d", len(means), len(provided))
	}
	for i, m := range means {
		lo := i + 1 - window
		if lo < 0 {
			lo = 0
		}
		var sum float64
		for _, p := range provided[lo : i+1] {
			sum += p
		}
		if want := sum / float64(i+1-lo); math.Abs(m-want) > 1e-12 {
			t.Fatalf("wave %d: Sample.WindowMean %.6f, recomputed %.6f", i, m, want)
		}
	}

	provided2, _ := run()
	for i := range provided {
		if provided[i] != provided2[i] {
			t.Fatalf("floored trajectory diverged at wave %d: %.17g != %.17g", i, provided[i], provided2[i])
		}
	}
}

// TestWindowFloorDegeneratesToPerWave: Window 1 is a per-wave floor — no
// commanded ratio may sit below it, ever.
func TestWindowFloorDegeneratesToPerWave(t *testing.T) {
	sim := newLoadSim(t, 30_000, 4_000, 8*30_000/0.6, &adapt.WindowFloor{Window: 1, Floor: 0.4})
	for w := 0; w < 20; w++ {
		sim.runWave(8 * 6)
		if r := sim.tgt.ratio; r < 0.4-1e-12 {
			t.Fatalf("wave %d: commanded ratio %.4f below the per-wave floor 0.4", w, r)
		}
	}
}

// TestWindowFloorValidation covers the new constructor error paths.
func TestWindowFloorValidation(t *testing.T) {
	meas := func(sig.WaveStats) float64 { return 0 }
	cases := []adapt.Config{
		{Objective: adapt.TargetLoad, Budget: 1, Measure: meas, WindowFloor: &adapt.WindowFloor{Window: 0, Floor: 0.5}},
		{Objective: adapt.TargetLoad, Budget: 1, Measure: meas, WindowFloor: &adapt.WindowFloor{Window: 4, Floor: -0.1}},
		{Objective: adapt.TargetLoad, Budget: 1, Measure: meas, WindowFloor: &adapt.WindowFloor{Window: 4, Floor: 1.1}},
		{Objective: adapt.TargetLoad, Budget: 1, Measure: meas, Max: 0.8, WindowFloor: &adapt.WindowFloor{Window: 4, Floor: 0.9}},
	}
	for i, cfg := range cases {
		if _, err := adapt.New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}

// TestBoundArithmetic pins the bound functions' shapes and edges.
func TestBoundArithmetic(t *testing.T) {
	if got := adapt.ShedBound(1.0, 0.25); got != 6 {
		t.Errorf("ShedBound(1, 0.25) = %d, want 6 (detect + re-anchor + 4 travel)", got)
	}
	if got := adapt.ShedBound(0, 0.25); got != 2 {
		t.Errorf("ShedBound(0, 0.25) = %d, want 2", got)
	}
	if got := adapt.ShedBound(0.5, 0.25); got != 4 {
		t.Errorf("ShedBound(0.5, 0.25) = %d, want 4", got)
	}
	// Headroom 0.4 at gain 2: climb fraction 0.8 → step 0.2 → 5 travel waves.
	if got := adapt.RecoverBound(1.0, 2.0, 0.25, 0.4); got != 7 {
		t.Errorf("RecoverBound(1, 2, 0.25, 0.4) = %d, want 7", got)
	}
	// Large headroom clamps the climb fraction at 1 — RecoverBound meets
	// ShedBound there.
	if got, want := adapt.RecoverBound(1.0, 2.0, 0.25, 0.9), adapt.ShedBound(1.0, 0.25); got != want {
		t.Errorf("RecoverBound with clamped climb = %d, want %d", got, want)
	}
	if got := adapt.RecoverBound(0.5, 2.0, 0.25, 0); got < 1<<30 {
		t.Errorf("RecoverBound with zero headroom = %d, want effectively unbounded", got)
	}
}

// TestBoundSeconds pins the wall-time forms: waves priced at the measured
// period, with the zero and never-arrives edges saturating instead of
// overflowing.
func TestBoundSeconds(t *testing.T) {
	period := 4 * time.Millisecond
	if got, want := adapt.ShedBoundSeconds(1.0, 0.25, period), 6*period; got != want {
		t.Errorf("ShedBoundSeconds(1, 0.25, %v) = %v, want %v", period, got, want)
	}
	if got, want := adapt.RecoverBoundSeconds(1.0, 2.0, 0.25, 0.4, period), 7*period; got != want {
		t.Errorf("RecoverBoundSeconds(1, 2, 0.25, 0.4, %v) = %v, want %v", period, got, want)
	}
	if got := adapt.ShedBoundSeconds(1.0, 0.25, 0); got != 0 {
		t.Errorf("ShedBoundSeconds at zero period = %v, want 0", got)
	}
	// Zero headroom: the recover bound never arrives; the seconds form must
	// saturate at the maximum duration, not wrap negative.
	if got := adapt.RecoverBoundSeconds(0.5, 2.0, 0.25, 0, time.Hour); got != 1<<63-1 {
		t.Errorf("RecoverBoundSeconds with zero headroom = %v, want saturated max", got)
	}
}

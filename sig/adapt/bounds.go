package adapt

import (
	"math"
	"time"
)

// Provable reaction bounds of the cap objectives (TargetLoad/TargetEnergy),
// derived from the secant law's update arithmetic in step():
//
//   - The measure is affine in the ratio for declared-cost loads:
//     sig/serve prices demand as Σ(r·acc + (1−r)·deg)/budget, so between
//     two waves in the same load regime the secant slope estimate is exact
//     and one step lands on the cap.
//   - Every step is clamped to ±MaxStep and the command to [Min, Max].
//   - The proportional fallback (used when the two retained points
//     straddle a regime change and the slope estimate is non-positive)
//     moves Gain·clamp(err/scale, −1, 1)·MaxStep.
//
// From those three facts alone:
//
// Shedding (a load step up of ΔR ratio-equivalents). Wave 1 detects: the
// step lands mid-wave, the wave that measures it ran at the old command,
// and the law reacts only at its boundary. Wave 2 re-anchors: the secant's
// previous point predates the step, so the slope estimate can be useless
// (even non-positive → proportional fallback); its progress is ≥ 0 and it
// leaves both retained points inside the new regime. From wave 3 on the
// slope estimate is exact-or-pessimistic — backlog growth between waves
// only shifts the load curve up, which biases the estimated slope LOW and
// the downhill step err/slope LARGE — so every wave travels
// min(MaxStep, remaining distance). Total: 2 + ⌈ΔR/MaxStep⌉ waves.
//
// Recovery (the overload ends). While a backlog remains the measure can
// sit at the cap and the command stays put — the caller owns that phase
// (waves to drain N backlogged requests at the post-shed admission rate)
// and adds it to this bound. Once drained, at utilization u < 1 the
// measure at any command is ≤ u·cap, so the normalized error is at least
// the headroom 1−u: the proportional fallback climbs at least
// Gain·(1−u)·MaxStep per wave (clamped at MaxStep), and an uphill secant
// step aims at the ratio where the measure meets the cap — beyond Max when
// u < 1, so it too clamps to MaxStep. Climb per wave is therefore at least
// min(Gain·(1−u), 1)·MaxStep, and the same detect + re-anchor waves
// bracket the travel: 2 + ⌈ΔR/(min(Gain·(1−u), 1)·MaxStep)⌉.
//
// Assumptions, asserted by the invariant suite and recorded alongside the
// measured values in harness.SLOStudy:
//
//  1. Declared request costs (the measure is affine in the ratio; measured
//     fallback costs void the slope-exactness argument).
//  2. The step is absorbable: the load at the ratio floor is under the
//     cap, otherwise no finite shed bound exists.
//  3. Genuine overload/underload outside the deadband each wave until the
//     cap is met — marginal steps that graze the deadband re-enter the
//     hold region and stop the clock early anyway.

// ShedBound returns the maximum waves the secant law needs to bring the
// measure back under the cap after a load step up that requires shedding
// deltaR of ratio: detect + re-anchor + travel at MaxStep per wave.
// deltaR is conservatively the full commanded range (pre-step ratio − Min)
// when the post-shed equilibrium ratio is unknown.
func ShedBound(deltaR, maxStep float64) int {
	return 2 + travelWaves(deltaR, maxStep)
}

// RecoverBound returns the maximum waves the secant law needs to climb
// deltaR of ratio back once the overload has ended AND the backlog has
// drained (the caller adds its drain-phase estimate): detect + re-anchor +
// travel at min(gain·headroom, 1)·MaxStep per wave, where headroom = 1−u
// is the post-recovery capacity slack.
func RecoverBound(deltaR, gain, maxStep, headroom float64) int {
	climb := gain * headroom
	if climb > 1 {
		climb = 1
	}
	return 2 + travelWaves(deltaR, climb*maxStep)
}

// ShedBoundSeconds converts ShedBound into wall time: the waves-to-react
// bound priced at the wave period actually in force. Feed it the measured
// period (serve.Server.MeasuredPeriod) — a bound priced at the configured
// nominal period understates the reaction time by exactly the factor the
// waves overrun, which is what made the PR 8 SLO numbers "seconds" in name
// only.
func ShedBoundSeconds(deltaR, maxStep float64, period time.Duration) time.Duration {
	return wavesToSeconds(ShedBound(deltaR, maxStep), period)
}

// RecoverBoundSeconds is RecoverBound priced in wall time at the given wave
// period (the measured period, like ShedBoundSeconds); the caller still
// adds its backlog drain-phase estimate, also in measured-period units.
func RecoverBoundSeconds(deltaR, gain, maxStep, headroom float64, period time.Duration) time.Duration {
	return wavesToSeconds(RecoverBound(deltaR, gain, maxStep, headroom), period)
}

// wavesToSeconds prices a wave count at a period, saturating instead of
// overflowing when the count is the travelWaves "never arrives" sentinel.
func wavesToSeconds(waves int, period time.Duration) time.Duration {
	if waves <= 0 || period <= 0 {
		return 0
	}
	if int64(waves) > math.MaxInt64/int64(period) {
		return math.MaxInt64
	}
	return time.Duration(waves) * period
}

// travelWaves is ⌈deltaR/step⌉ with the degenerate cases pinned: no
// distance is zero waves, and a non-positive per-wave step never arrives.
func travelWaves(deltaR, step float64) int {
	if deltaR <= 0 {
		return 0
	}
	if step <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(deltaR/step - 1e-9))
}

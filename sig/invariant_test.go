package sig

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Policy-invariant property suite: for every built-in policy under
// randomized (significance distribution, ratio, worker count, batch/scalar
// submission) scenarios, the core contracts of the model must hold:
//
//  1. conservation — Stats totals satisfy submitted = accurate +
//     approximate + dropped, per group and runtime-wide; a task decided
//     approximate without an approximate body runs nothing and counts as
//     dropped (scenarios with noApprox > 0 exercise this);
//  2. specials — significance-1.0 tasks always run their accurate body and
//     are never dropped; significance-0.0 tasks never run accurately;
//  3. ratio floor — over the policy-decided tasks (0 < sig < 1), the
//     provided accurate fraction is at least the requested ratio, minus the
//     policy's documented slack (rounding for the buffering policies,
//     error-diffusion residue for perforation, the drift-corrector band
//     for LQH);
//  4. Wait returns a non-NaN ratio consistent with Stats.
//
// Scenarios are generated from fixed seeds, so the suite is deterministic;
// the tolerances below are scheduling-independent bounds, so it also passes
// under -race at any worker count. FuzzPolicyDecisions feeds adversarial
// variants of the same scenario shape through the same checker.

// invScenario is one randomized property-test case.
type invScenario struct {
	kind       PolicyKind
	workers    int
	ratio      float64
	sigs       []float64
	batch      bool
	waves      int // number of taskwait boundaries the stream is cut into
	gtbWindow  int
	lqhHistory int
	// noApprox > 0 omits the approximate body from every noApprox-th task
	// (index i with i%noApprox == 0): an approximate decision on such a
	// task is the model's task dropping and must be counted dropped.
	noApprox int
}

// hasApprox reports whether task i of the scenario carries an approximate
// body.
func (sc invScenario) hasApprox(i int) bool {
	return sc.noApprox == 0 || i%sc.noApprox != 0
}

// invOutcome records what actually ran, via instrumented task bodies.
type invOutcome struct {
	ranAcc []bool
	ranApx []bool
}

// ratioSlack returns the scenario's provided-ratio tolerance over n
// policy-decided tasks spread across the given number of taskwait waves:
// how far below the requested ratio the accurate fraction may legitimately
// land.
func ratioSlack(kind PolicyKind, workers, waves, n int) float64 {
	if n == 0 {
		return 0
	}
	switch kind {
	case PolicyAccurate:
		return 0
	case PolicyGTB, PolicyGTBMaxBuffer:
		// Each wave is an independent quota epoch since the Flush reset:
		// round-to-nearest (0.5) plus at most one task of clamped window
		// carry per wave.
		return 2.0 * float64(max(waves, 1)) / float64(n)
	case PolicyPerforation:
		// Error diffusion holds the accurate count within one task of
		// ratio*n (plus the 2^-32 fixed-point quantization).
		return 1.5 / float64(n)
	case PolicyLQH:
		// Each worker's drift corrector keeps its local accurate count
		// above (ratio-tolerance)*n_w - 1; summed over workers:
		// provided >= ratio - tolerance - workers/n.
		return lqhDriftTolerance + float64(workers)/float64(n) + 1e-9
	}
	panic("unreachable")
}

// runScenario executes the scenario and returns the outcome plus the final
// Stats snapshot of the group.
func runScenario(t *testing.T, sc invScenario) (invOutcome, GroupStats, float64) {
	t.Helper()
	rt, err := New(Config{
		Workers:    sc.workers,
		Policy:     sc.kind,
		GTBWindow:  sc.gtbWindow,
		LQHHistory: sc.lqhHistory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	g := rt.Group("inv", sc.ratio)
	n := len(sc.sigs)
	out := invOutcome{ranAcc: make([]bool, n), ranApx: make([]bool, n)}

	waves := max(sc.waves, 1)
	per := (n + waves - 1) / waves
	provided := math.NaN()
	for lo := 0; lo < n; lo += per {
		hi := min(lo+per, n)
		if sc.batch {
			specs := make([]TaskSpec, hi-lo)
			for i := lo; i < hi; i++ {
				i := i
				s := sc.sigs[i]
				if s == 0 {
					s = -1 // batch spelling of the special 0.0
				}
				specs[i-lo] = TaskSpec{
					Fn:           func() { out.ranAcc[i] = true },
					Significance: s,
					HasCost:      true, CostAccurate: 10, CostApprox: 1,
				}
				if sc.hasApprox(i) {
					specs[i-lo].Approx = func() { out.ranApx[i] = true }
				}
			}
			rt.SubmitBatch(g, specs)
		} else {
			for i := lo; i < hi; i++ {
				i := i
				opts := []TaskOption{
					WithLabel(g),
					WithSignificance(sc.sigs[i]),
					WithCost(10, 1),
				}
				if sc.hasApprox(i) {
					opts = append(opts, WithApprox(func() { out.ranApx[i] = true }))
				}
				rt.Submit(func() { out.ranAcc[i] = true }, opts...)
			}
		}
		provided = rt.Wait(g)
	}
	st := rt.Stats()
	return out, st.Groups[0], provided
}

// checkInvariants asserts the policy-invariant contracts on a completed
// scenario. It is shared with FuzzPolicyDecisions.
func checkInvariants(t *testing.T, sc invScenario, out invOutcome, gs GroupStats, provided float64) {
	t.Helper()
	n := len(sc.sigs)

	// 1. Conservation.
	if gs.Submitted != int64(n) {
		t.Errorf("submitted %d, want %d", gs.Submitted, n)
	}
	if got := gs.Accurate + gs.Approximate + gs.Dropped; got != gs.Submitted {
		t.Errorf("decided %d (acc %d + approx %d + drop %d) != submitted %d",
			got, gs.Accurate, gs.Approximate, gs.Dropped, gs.Submitted)
	}

	// Cross-check Stats against the instrumented bodies. A task that ran
	// neither body counts as dropped: either the policy dropped it, or it
	// was decided approximate while carrying no approximate body — the
	// model's task-dropping degradation, which the runtime must classify
	// as a drop, not an approximate execution.
	acc, apx, drop := int64(0), int64(0), int64(0)
	for i := range sc.sigs {
		switch {
		case out.ranAcc[i] && out.ranApx[i]:
			t.Fatalf("task %d ran both bodies", i)
		case out.ranAcc[i]:
			acc++
		case out.ranApx[i]:
			apx++
		default:
			drop++
		}
	}
	if acc != gs.Accurate || apx != gs.Approximate || drop != gs.Dropped {
		t.Errorf("bodies ran %d/%d/%d but Stats says %d/%d/%d",
			acc, apx, drop, gs.Accurate, gs.Approximate, gs.Dropped)
	}

	// 2. Special significance values.
	for i, s := range sc.sigs {
		if s >= 1.0 && !out.ranAcc[i] {
			t.Errorf("significance-1.0 task %d did not run accurately (dropped or approximated)", i)
		}
		if s <= 0.0 && out.ranAcc[i] {
			t.Errorf("significance-0.0 task %d ran accurately", i)
		}
	}

	// 3. Ratio floor over the policy-decided tasks.
	decided, decidedAcc := 0, 0
	for i, s := range sc.sigs {
		if s > 0 && s < 1 {
			decided++
			if out.ranAcc[i] {
				decidedAcc++
			}
		}
	}
	if decided > 0 {
		prov := float64(decidedAcc) / float64(decided)
		if floor := sc.ratio - ratioSlack(sc.kind, sc.workers, sc.waves, decided); prov < floor-1e-9 {
			t.Errorf("%v: provided ratio %.4f over %d policy-decided tasks below requested %.4f (slack floor %.4f)",
				sc.kind, prov, decided, sc.ratio, floor)
		}
	}

	// 4. Wait's return value is sane and matches Stats.
	if math.IsNaN(provided) {
		t.Errorf("Wait returned NaN")
	}
	if math.Abs(provided-gs.ProvidedRatio) > 1e-9 {
		t.Errorf("Wait returned %.4f but Stats says %.4f", provided, gs.ProvidedRatio)
	}
}

// sigDistributions are the significance generators the property suite
// mixes: each returns a value in [0,1], including the special endpoints.
var sigDistributions = []struct {
	name string
	gen  func(r *rand.Rand) float64
}{
	{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
	{"nine-levels", func(r *rand.Rand) float64 { return float64(r.Intn(9)+1) / 10 }},
	{"constant", func(r *rand.Rand) float64 { return 0.5 }},
	{"bimodal", func(r *rand.Rand) float64 {
		if r.Intn(2) == 0 {
			return 0.05 + 0.1*r.Float64()
		}
		return 0.85 + 0.1*r.Float64()
	}},
	{"with-specials", func(r *rand.Rand) float64 {
		switch r.Intn(4) {
		case 0:
			return 0.0
		case 1:
			return 1.0
		default:
			return r.Float64()
		}
	}},
}

// TestPolicyInvariants is the property suite entry point.
func TestPolicyInvariants(t *testing.T) {
	kinds := []PolicyKind{PolicyAccurate, PolicyGTB, PolicyGTBMaxBuffer, PolicyLQH, PolicyPerforation}
	ratios := []float64{0, 0.1, 0.33, 0.5, 0.77, 1}
	workerCounts := []int{1, 2, 4, 16}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for trial := 0; trial < 12; trial++ {
				r := rand.New(rand.NewSource(int64(1000*int(kind) + trial)))
				dist := sigDistributions[trial%len(sigDistributions)]
				n := 120 + r.Intn(400)
				sigs := make([]float64, n)
				for i := range sigs {
					sigs[i] = dist.gen(r)
				}
				sc := invScenario{
					kind:       kind,
					workers:    workerCounts[r.Intn(len(workerCounts))],
					ratio:      ratios[r.Intn(len(ratios))],
					sigs:       sigs,
					batch:      trial%2 == 1,
					waves:      1 + r.Intn(4),
					gtbWindow:  []int{0, 8, 64}[r.Intn(3)],
					lqhHistory: []int{0, 4, 64}[r.Intn(3)],
					noApprox:   []int{0, 0, 2, 3}[r.Intn(4)],
				}
				name := fmt.Sprintf("trial%02d-%s-r%.2f-w%d-batch%v", trial, dist.name, sc.ratio, sc.workers, sc.batch)
				t.Run(name, func(t *testing.T) {
					out, gs, provided := runScenario(t, sc)
					checkInvariants(t, sc, out, gs, provided)
				})
			}
		})
	}
}

package sig

import "time"

// WaveStats is the telemetry of one completed wave (phase) of a group: the
// task accounting, requested/provided accuracy and modeled energy accrued
// between two consecutive taskwait boundaries. It is what the adaptive
// layer (sig/adapt) consumes to retune a group's ratio wave by wave.
//
// All fields are computed by snapshot-diffing the group's existing atomic
// counters and the workers' busy clocks at the wave boundary, so phased
// telemetry adds nothing to the per-task hot path.
type WaveStats struct {
	// Wave is the index of the wave that just completed (the value tasks
	// of that wave carried in their DecisionRecord).
	Wave int
	// Submitted counts tasks submitted during the wave; Accurate,
	// Approximate and Dropped count how they were decided. For a group
	// drained at a taskwait, Submitted = Accurate+Approximate+Dropped.
	Submitted   int
	Accurate    int
	Approximate int
	Dropped     int
	// RequestedRatio is the group's target accurate ratio at the wave
	// boundary; ProvidedRatio is the accurate fraction the wave actually
	// delivered (the requested ratio when the wave was empty).
	RequestedRatio float64
	ProvidedRatio  float64
	// Busy is the modeled busy time accrued across all workers during the
	// wave and Joules its energy at the runtime's ActiveWatts. With
	// declared task costs (WithCost) both are deterministic. Busy time is
	// runtime-wide: when several groups run tasks between this group's
	// phase boundaries, their work is attributed to this wave too —
	// streaming workloads drive one group at a time.
	Busy   time.Duration
	Joules float64
}

// Decided returns the number of tasks decided in the wave.
func (w WaveStats) Decided() int { return w.Accurate + w.Approximate + w.Dropped }

// Observer receives per-wave telemetry at every taskwait boundary (Wait,
// WaitPhase, and the implicit drain in Close). It is the feedback seam of
// the adaptive layer: an observer may retune the group's ratio via
// Group.SetRatio and the new value takes effect for the next wave's
// decisions. ObserveWave runs on the goroutine calling Wait/WaitPhase,
// after every task of the wave has completed — so it may safely read
// outputs the wave produced (e.g. run a quality probe) — and must return
// before the next wave is submitted.
type Observer interface {
	ObserveWave(g *Group, ws WaveStats)
}

// Phase returns the index of the wave currently accepting submissions.
// Waves advance at each taskwait boundary (Wait or WaitPhase).
func (g *Group) Phase() int { return int(g.wave.Load()) }

// SetRatio retargets the group's requested accurate ratio (clamped to
// [0,1]). It is the adaptive controller's knob: the new ratio applies to
// decisions made after the call — for buffering policies, to the next
// window or flush.
func (g *Group) SetRatio(r float64) { g.setRatio(r) }

// WaitPhase is Wait with telemetry: it drains the group like Wait and
// returns the completed wave's WaveStats instead of the cumulative provided
// ratio. Streaming workloads call it once per wave; the configured Observer
// (if any) sees the same WaveStats before WaitPhase returns.
func (rt *Runtime) WaitPhase(g *Group) WaveStats {
	if g == nil {
		g = rt.defaultGroup()
	}
	rt.drain(g)
	ws := rt.endWave(g)
	rt.observe(g, ws)
	return ws
}

// endWave closes the group's current wave: it diffs the task counters and
// the busy clocks against the previous boundary's snapshot, advances the
// wave epoch and returns the wave's telemetry. phaseMu only serializes
// concurrent taskwaits on the same group — never the submit path.
func (rt *Runtime) endWave(g *Group) WaveStats {
	g.phaseMu.Lock()
	defer g.phaseMu.Unlock()
	sub := g.submitted.Load()
	acc := g.accurate.Load()
	app := g.approximate.Load()
	drop := g.dropped.Load()
	busy := rt.busyNS()
	ws := WaveStats{
		Wave:           int(g.wave.Load()),
		Submitted:      int(sub - g.waveBase.submitted),
		Accurate:       int(acc - g.waveBase.accurate),
		Approximate:    int(app - g.waveBase.approximate),
		Dropped:        int(drop - g.waveBase.dropped),
		RequestedRatio: g.Ratio(),
		Busy:           time.Duration(busy - g.waveBase.busyNS),
	}
	ws.Joules = rt.energy.ActiveWatts * ws.Busy.Seconds()
	if d := ws.Decided(); d > 0 {
		ws.ProvidedRatio = float64(ws.Accurate) / float64(d)
	} else {
		ws.ProvidedRatio = ws.RequestedRatio
	}
	g.waveBase = waveSnapshot{submitted: sub, accurate: acc, approximate: app, dropped: drop, busyNS: busy}
	g.wave.Add(1)
	return ws
}

// observe delivers the wave to the configured observer, if any.
func (rt *Runtime) observe(g *Group, ws WaveStats) {
	if o := rt.cfg.Observer; o != nil {
		o.ObserveWave(g, ws)
	}
}

// waveSnapshot is the counter state at the last wave boundary.
type waveSnapshot struct {
	submitted, accurate, approximate, dropped int64
	busyNS                                    int64
}

package sig

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestStatsDuringSaturatedSubmit is the regression test for the PR 1
// lock-coupling bug: Submit used to hold the runtime-wide mutex while
// blocking on a full queue, so a saturated submitter made Stats(), Energy()
// and Group() block too. The scheduler must keep observability calls
// responsive while a Submit is backpressured.
func TestStatsDuringSaturatedSubmit(t *testing.T) {
	rt, err := New(Config{Workers: 1, Policy: PolicyAccurate, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	blocked := rt.Group("blocked", 1.0)
	rt.Submit(func() { <-release }, WithLabel(blocked))

	// Saturate the (tiny) worker queue until the submitter backpressures.
	submitsDone := make(chan struct{})
	go func() {
		defer close(submitsDone)
		for i := 0; i < 64; i++ {
			rt.Submit(func() {}, WithLabel(blocked), WithCost(1, 0))
		}
	}()
	// Give the submitter time to fill the queue and block.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-submitsDone:
		t.Fatal("expected the background submitter to be backpressured on the full queue")
	default:
	}

	probe := func(name string, f func()) {
		done := make(chan struct{})
		go func() { f(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s blocked behind a backpressured Submit", name)
		}
	}
	probe("Stats", func() { _ = rt.Stats() })
	probe("Energy", func() { _ = rt.Energy() })
	probe("Group", func() { _ = rt.Group("other", 0.5) })

	close(release)
	<-submitsDone
	rt.Wait(blocked)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Stats().Submitted; got != 65 {
		t.Errorf("expected 65 submitted tasks, got %d", got)
	}
}

// TestStressConcurrentSubmitWaitStats hammers every policy with concurrent
// scalar and batch submitters, taskwaits and stats readers, on a small
// queue so backpressure and stealing paths are exercised. Run with -race.
func TestStressConcurrentSubmitWaitStats(t *testing.T) {
	kinds := []PolicyKind{PolicyAccurate, PolicyGTB, PolicyGTBMaxBuffer, PolicyLQH, PolicyPerforation}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rt, err := New(Config{Workers: 4, Policy: kind, QueueCapacity: 8, RecordDecisions: true})
			if err != nil {
				t.Fatal(err)
			}
			g := rt.Group("stress", 0.5)
			const producers = 4
			const perProducer = 300
			var wg sync.WaitGroup
			stop := make(chan struct{})

			// Concurrent observers and waiters for the whole run.
			wg.Add(2)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = rt.Stats()
						_ = rt.Energy()
					}
				}
			}()
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						rt.Wait(g)
					}
				}
			}()

			var prod sync.WaitGroup
			for p := 0; p < producers; p++ {
				p := p
				prod.Add(1)
				go func() {
					defer prod.Done()
					if p%2 == 0 {
						for i := 0; i < perProducer; i++ {
							rt.Submit(func() {},
								WithLabel(g),
								WithSignificance(float64(i%11)/10), // includes 0.0 and 1.0
								WithApprox(func() {}),
								WithCost(10, 1))
						}
						return
					}
					specs := make([]TaskSpec, perProducer)
					for i := range specs {
						s := float64(i%11) / 10 // includes 1.0
						if i%11 == 0 {
							s = -1 // the always-approximate special value
						}
						specs[i] = TaskSpec{Fn: func() {}, Approx: func() {},
							Significance: s, HasCost: true,
							CostAccurate: 10, CostApprox: 1}
					}
					for off := 0; off < len(specs); off += 100 {
						rt.SubmitBatch(g, specs[off:off+100])
					}
				}()
			}
			prod.Wait()
			close(stop)
			wg.Wait()
			rt.Wait(g)

			st := rt.Stats()
			want := int64(producers * perProducer)
			if st.Submitted != want {
				t.Errorf("submitted %d, want %d", st.Submitted, want)
			}
			if got := st.Accurate + st.Approximate + st.Dropped; got != want {
				t.Errorf("decided %d (acc %d + approx %d + drop %d), want %d",
					got, st.Accurate, st.Approximate, st.Dropped, want)
			}

			// Concurrent idempotent Close.
			var closers sync.WaitGroup
			for i := 0; i < 3; i++ {
				closers.Add(1)
				go func() {
					defer closers.Done()
					if err := rt.Close(); err != nil {
						t.Error(err)
					}
				}()
			}
			closers.Wait()
			rep1, rep2 := rt.Energy(), rt.Energy()
			if rep1 != rep2 {
				t.Errorf("Energy unstable after concurrent Close: %+v vs %+v", rep1, rep2)
			}
		})
	}
}

// TestSubmitBatchMatchesSubmit checks the batch path lands the same
// decisions as scalar submission for the deterministic policies.
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	const n = 450
	runCounts := func(batch bool, kind PolicyKind) (int64, int64, int64) {
		rt, err := New(Config{Workers: 1, Policy: kind})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		g := rt.Group("batch", 0.4)
		if batch {
			specs := make([]TaskSpec, n)
			for i := range specs {
				specs[i] = TaskSpec{Fn: func() {}, Approx: func() {},
					Significance: float64(i%9+1) / 10, HasCost: true,
					CostAccurate: 100, CostApprox: 10}
			}
			rt.SubmitBatch(g, specs)
		} else {
			for i := 0; i < n; i++ {
				rt.Submit(func() {}, WithLabel(g),
					WithSignificance(float64(i%9+1)/10),
					WithApprox(func() {}), WithCost(100, 10))
			}
		}
		rt.Wait(g)
		st := rt.Stats().Groups[0]
		return st.Accurate, st.Approximate, st.Dropped
	}
	for _, kind := range []PolicyKind{PolicyAccurate, PolicyGTB, PolicyGTBMaxBuffer, PolicyPerforation} {
		a1, x1, d1 := runCounts(false, kind)
		a2, x2, d2 := runCounts(true, kind)
		if a1 != a2 || x1 != x2 || d1 != d2 {
			t.Errorf("%v: scalar (%d/%d/%d) vs batch (%d/%d/%d) decisions diverged",
				kind, a1, x1, d1, a2, x2, d2)
		}
	}
}

// TestSubmitBatchSpecialValues: the special significance values must bypass
// the policy on the batch path exactly as on the scalar path.
func TestSubmitBatchSpecialValues(t *testing.T) {
	rt, err := New(Config{Workers: 1, Policy: PolicyGTBMaxBuffer})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	g := rt.Group("special", 0.5)
	var ranAcc, ranApprox bool
	rt.SubmitBatch(g, []TaskSpec{
		{Fn: func() { ranAcc = true }, Approx: func() {}, Significance: 1.0},
		// Negative significance is the batch spelling of the special
		// always-approximate value 0.0 (the zero value means 1.0).
		{Fn: func() {}, Approx: func() { ranApprox = true }, Significance: -1},
	})
	rt.Wait(g)
	if !ranAcc {
		t.Error("significance 1.0 did not run accurately via SubmitBatch")
	}
	if !ranApprox {
		t.Error("significance 0.0 did not run approximately via SubmitBatch")
	}

	// The zero-value spec mirrors Submit's default: fully significant,
	// runs accurately — never silently skipped.
	ranDefault := false
	rt.SubmitBatch(g, []TaskSpec{{Fn: func() { ranDefault = true }}})
	rt.Wait(g)
	if !ranDefault {
		t.Error("zero-value TaskSpec did not run its body accurately")
	}
}

// TestQueueCapacityValidation: negative capacities are rejected, tiny ones
// still drain correctly.
func TestQueueCapacityValidation(t *testing.T) {
	if _, err := New(Config{QueueCapacity: -1}); err == nil {
		t.Error("negative QueueCapacity accepted")
	}
	rt, err := New(Config{Workers: 2, Policy: PolicyAccurate, QueueCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	g := rt.Group("tiny", 1.0)
	n := 0
	var mu sync.Mutex
	for i := 0; i < 500; i++ {
		rt.Submit(func() { mu.Lock(); n++; mu.Unlock() }, WithLabel(g))
	}
	if provided := rt.Wait(g); math.Abs(provided-1.0) > 1e-9 {
		t.Errorf("provided ratio %v, want 1.0", provided)
	}
	mu.Lock()
	defer mu.Unlock()
	if n != 500 {
		t.Errorf("executed %d tasks, want 500", n)
	}
}

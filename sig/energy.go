package sig

import "time"

// Default modeled per-core power figures, loosely calibrated to the paper's
// evaluation platform (a 4-module/8-core x86 server): a busy core draws
// DefaultActiveWatts, an idle core DefaultIdleWatts.
const (
	DefaultActiveWatts = 12.0
	DefaultIdleWatts   = 2.0
)

// EnergyModel converts accounted busy time into modeled Joules. The model
// is deliberately simple — E = P_active · t_busy, with t_busy either the
// declared task costs (deterministic; see WithCost) or the measured body
// execution time — because the experiments only rely on relative energy
// between policies on identical workloads. Idle power is excluded from
// Joules (it is policy-invariant at equal wall time) but carried in the
// report so the DVFS and NTC studies can reason about it analytically.
type EnergyModel struct {
	// ActiveWatts is the per-core power while executing a task body.
	ActiveWatts float64
	// IdleWatts is the per-core power while waiting for work; used only
	// by analytic downstream studies, not in Joules.
	IdleWatts float64
}

func (m EnergyModel) withDefaults() EnergyModel {
	if m.ActiveWatts == 0 {
		m.ActiveWatts = DefaultActiveWatts
	}
	if m.IdleWatts == 0 {
		m.IdleWatts = DefaultIdleWatts
	}
	return m
}

// Report is a modeled energy account of a runtime's lifetime. Reports
// returned after Close are frozen: the wall clock stops at Close and
// repeated Energy calls return identical values.
type Report struct {
	// Joules is the total modeled energy.
	Joules float64
	// Wall is the elapsed wall-clock time of the runtime.
	Wall time.Duration
	// Busy is the summed task-execution time across all workers.
	Busy time.Duration
	// Workers is the worker-pool size the report was computed for.
	Workers int
	// ActiveWatts and IdleWatts echo the model, so downstream studies
	// (e.g. the DVFS ablation) can rescale the report analytically.
	ActiveWatts float64
	IdleWatts   float64
}

func (m EnergyModel) report(wall, busy time.Duration, workers int) Report {
	return Report{
		Joules:      m.ActiveWatts * busy.Seconds(),
		Wall:        wall,
		Busy:        busy,
		Workers:     workers,
		ActiveWatts: m.ActiveWatts,
		IdleWatts:   m.IdleWatts,
	}
}

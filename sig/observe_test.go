package sig

import (
	"math"
	"testing"
	"time"
)

// TestWaitPhaseTelemetry checks the phased execution surface: per-wave task
// accounting, wave-local provided ratio and deterministic modeled energy
// from declared costs, across consecutive waves with a ratio change in
// between (the adaptive controller's usage pattern).
func TestWaitPhaseTelemetry(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyGTBMaxBuffer})
	defer rt.Close()
	g := rt.Group("phase", 0.5)

	if g.Phase() != 0 {
		t.Errorf("fresh group phase = %d, want 0", g.Phase())
	}
	submitWave := func(n int) {
		for i := 0; i < n; i++ {
			rt.Submit(func() {}, WithLabel(g),
				WithSignificance(float64(i%9+1)/10),
				WithApprox(func() {}), WithCost(100, 10))
		}
	}

	submitWave(40)
	ws := rt.WaitPhase(g)
	if ws.Wave != 0 || g.Phase() != 1 {
		t.Errorf("first wave index %d (phase now %d), want 0 (1)", ws.Wave, g.Phase())
	}
	if ws.Submitted != 40 || ws.Accurate != 20 || ws.Approximate != 20 || ws.Dropped != 0 {
		t.Errorf("wave 0 accounting %d/%d/%d/%d, want 40 submitted, 20/20/0", ws.Submitted, ws.Accurate, ws.Approximate, ws.Dropped)
	}
	if ws.ProvidedRatio != 0.5 || ws.RequestedRatio != 0.5 {
		t.Errorf("wave 0 ratios req %.2f prov %.2f, want 0.50/0.50", ws.RequestedRatio, ws.ProvidedRatio)
	}
	wantBusy := time.Duration(20*100 + 20*10)
	if ws.Busy != wantBusy {
		t.Errorf("wave 0 busy %v, want %v", ws.Busy, wantBusy)
	}
	wantJ := DefaultActiveWatts * wantBusy.Seconds()
	if math.Abs(ws.Joules-wantJ) > 1e-15 {
		t.Errorf("wave 0 joules %v, want %v", ws.Joules, wantJ)
	}

	// Retune the ratio between waves: the new wave's telemetry must be
	// wave-local (not dragged by wave 0's accounting).
	g.SetRatio(0.25)
	submitWave(40)
	ws = rt.WaitPhase(g)
	if ws.Wave != 1 {
		t.Errorf("second wave index %d, want 1", ws.Wave)
	}
	if ws.Submitted != 40 || ws.Accurate != 10 || ws.Approximate != 30 {
		t.Errorf("wave 1 accounting %d submitted %d/%d, want 40, 10/30", ws.Submitted, ws.Accurate, ws.Approximate)
	}
	if ws.ProvidedRatio != 0.25 {
		t.Errorf("wave 1 provided %.3f, want 0.25 (wave-local, not cumulative)", ws.ProvidedRatio)
	}
}

// waveRecorder is a test Observer collecting every delivered WaveStats.
type waveRecorder struct {
	waves []WaveStats
}

func (r *waveRecorder) ObserveWave(g *Group, ws WaveStats) { r.waves = append(r.waves, ws) }

// TestObserverFiresOnWaitAndWaitPhase: the Observer hook must see every
// taskwait boundary — plain Wait, WaitPhase, and Close's final drain — with
// the same WaveStats WaitPhase returns.
func TestObserverFiresOnWaitAndWaitPhase(t *testing.T) {
	rec := &waveRecorder{}
	rt := newRT(t, Config{Policy: PolicyGTBMaxBuffer, Observer: rec})
	g := rt.Group("obs", 0.5)

	rt.Submit(func() {}, WithLabel(g), WithSignificance(0.5), WithApprox(func() {}), WithCost(1, 1))
	rt.Wait(g)
	if len(rec.waves) != 1 || rec.waves[0].Submitted != 1 {
		t.Fatalf("after Wait: recorded %+v, want one 1-task wave", rec.waves)
	}

	rt.Submit(func() {}, WithLabel(g), WithSignificance(0.5), WithApprox(func() {}), WithCost(1, 1))
	ws := rt.WaitPhase(g)
	if len(rec.waves) != 2 || rec.waves[1] != ws {
		t.Fatalf("after WaitPhase: recorded %+v, want the returned stats %+v", rec.waves, ws)
	}

	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// Close drains every group once more: those waves are empty and must
	// say so (observers like the adaptive controller skip them).
	for _, w := range rec.waves[2:] {
		if w.Submitted != 0 || w.Decided() != 0 {
			t.Errorf("Close-drain wave not empty: %+v", w)
		}
	}
}

// TestWaitEmptyGroupReturnsRequestedRatio is the regression test for the
// empty-group taskwait: Wait on a group nothing was submitted to must
// report the requested ratio — never NaN (0/0) and never a misleading 0.
func TestWaitEmptyGroupReturnsRequestedRatio(t *testing.T) {
	for _, kind := range []PolicyKind{PolicyAccurate, PolicyGTB, PolicyGTBMaxBuffer, PolicyLQH, PolicyPerforation} {
		rt := newRT(t, Config{Policy: kind})
		g := rt.Group("never-used", 0.7)
		provided := rt.Wait(g)
		if math.IsNaN(provided) {
			t.Fatalf("%v: Wait on empty group returned NaN", kind)
		}
		if provided != 0.7 {
			t.Errorf("%v: Wait on empty group returned %v, want the requested ratio 0.7", kind, provided)
		}
		ws := rt.WaitPhase(g)
		if ws.ProvidedRatio != 0.7 || ws.Submitted != 0 {
			t.Errorf("%v: WaitPhase on empty group reported %+v, want provided 0.7", kind, ws)
		}
		st := rt.Stats()
		if got := st.Groups[0].ProvidedRatio; got != 0.7 {
			t.Errorf("%v: Stats provided ratio %v for empty group, want 0.7", kind, got)
		}
		rt.Close()
	}
}

// TestWaitPhaseWithoutObserver pins the phased surface with no Observer
// configured — the standalone-streaming usage, previously untested: the
// nil-group (default) spelling, empty waves on a never-submitted group,
// and the wave epoch all behave exactly as with an observer attached, and
// nothing is delivered anywhere.
func TestWaitPhaseWithoutObserver(t *testing.T) {
	rt := newRT(t, Config{Policy: PolicyGTBMaxBuffer})
	defer rt.Close()

	// Empty wave on a never-submitted group: the requested ratio comes
	// back as provided (no 0/0 artifact) and the epoch still advances.
	g := rt.Group("quiet", 0.3)
	ws := rt.WaitPhase(g)
	if ws.Submitted != 0 || ws.Decided() != 0 {
		t.Errorf("empty wave carries tasks: %+v", ws)
	}
	if ws.ProvidedRatio != 0.3 || ws.RequestedRatio != 0.3 {
		t.Errorf("empty wave ratios req %.2f prov %.2f, want 0.30/0.30", ws.RequestedRatio, ws.ProvidedRatio)
	}
	if ws.Joules != 0 || ws.Busy != 0 {
		t.Errorf("empty wave charged %v / %v", ws.Joules, ws.Busy)
	}
	if g.Phase() != 1 {
		t.Errorf("empty wave did not advance the epoch: phase %d", g.Phase())
	}

	// The nil-group spelling drains the default group.
	ran := 0
	rt.Submit(func() { ran++ }, WithCost(50, 0))
	ws = rt.WaitPhase(nil)
	if ran != 1 || ws.Submitted != 1 || ws.Accurate != 1 {
		t.Errorf("WaitPhase(nil) wave %+v after default-group submit (ran %d)", ws, ran)
	}
	if want := time.Duration(50); ws.Busy != want {
		t.Errorf("WaitPhase(nil) busy %v, want %v", ws.Busy, want)
	}
	// Consecutive empty waves keep reporting the current request.
	g.SetRatio(0.9)
	if ws := rt.WaitPhase(g); ws.ProvidedRatio != 0.9 {
		t.Errorf("retargeted empty wave provided %.2f, want 0.90", ws.ProvidedRatio)
	}
}

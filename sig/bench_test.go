package sig

import (
	"fmt"
	"runtime"
	"testing"
)

// Microbenchmarks for the scheduler hot path. They use only the public API
// so the same file measures any scheduler implementation; BENCH_sig.json
// records the before/after numbers across scheduler generations.

// benchBody is a no-capture task body: the scheduler cost dominates.
func benchBody() {}

// benchOpts builds the option slice once so the benchmark loop measures
// Submit, not closure construction.
func benchOpts(g *Group) []TaskOption {
	return []TaskOption{WithLabel(g), WithSignificance(0.5), WithApprox(benchBody), WithCost(50, 5)}
}

// benchFlushEvery bounds the buffer growth of buffering policies (and the
// pending count) during open-loop submit benchmarks.
const benchFlushEvery = 1 << 15

// BenchmarkSubmit measures single-threaded submit throughput per policy.
func BenchmarkSubmit(b *testing.B) {
	for _, kind := range []PolicyKind{PolicyAccurate, PolicyGTB, PolicyGTBMaxBuffer, PolicyLQH, PolicyPerforation} {
		b.Run(kind.String(), func(b *testing.B) {
			rt, err := New(Config{Workers: 2, Policy: kind})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			g := rt.Group("bench", 0.5)
			opts := benchOpts(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Submit(benchBody, opts...)
				if i%benchFlushEvery == benchFlushEvery-1 {
					// Drain outside the timed region: this benchmark
					// measures submit throughput, not execution.
					b.StopTimer()
					rt.Wait(g)
					b.StartTimer()
				}
			}
			b.StopTimer()
			rt.Wait(g)
			b.StartTimer()
		})
	}
}

// BenchmarkSubmitBatch measures batched submit throughput per policy: one
// benchmark op is one task, submitted through SubmitBatch in chunks. This is
// the scheduler's peak-ingest path (slab-allocated tasks, one policy lock
// and one sequence reservation per chunk).
func BenchmarkSubmitBatch(b *testing.B) {
	const chunk = 512
	for _, kind := range []PolicyKind{PolicyAccurate, PolicyGTB, PolicyGTBMaxBuffer, PolicyLQH, PolicyPerforation} {
		b.Run(kind.String(), func(b *testing.B) {
			rt, err := New(Config{Workers: 2, Policy: kind})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			g := rt.Group("bench", 0.5)
			specs := make([]TaskSpec, chunk)
			for i := range specs {
				specs[i] = TaskSpec{Fn: benchBody, Approx: benchBody, Significance: 0.5,
					HasCost: true, CostAccurate: 50, CostApprox: 5}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for submitted := 0; submitted < b.N; {
				n := len(specs)
				if rem := b.N - submitted; rem < n {
					n = rem
				}
				rt.SubmitBatch(g, specs[:n])
				submitted += n
				if submitted%benchFlushEvery < chunk {
					b.StopTimer()
					rt.Wait(g)
					b.StartTimer()
				}
			}
			b.StopTimer()
			rt.Wait(g)
			b.StartTimer()
		})
	}
}

// BenchmarkSubmitParallel measures multi-producer scaling: 1, 4 and
// GOMAXPROCS concurrent submitters against a shared runtime.
func BenchmarkSubmitParallel(b *testing.B) {
	producers := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, np := range producers {
		b.Run(fmt.Sprintf("producers=%d", np), func(b *testing.B) {
			rt, err := New(Config{Policy: PolicyLQH})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			g := rt.Group("bench", 0.5)
			opts := benchOpts(g)
			b.ReportAllocs()
			b.ResetTimer()
			done := make(chan struct{})
			work := make(chan int, np)
			for p := 0; p < np; p++ {
				go func() {
					for n := range work {
						for i := 0; i < n; i++ {
							rt.Submit(benchBody, opts...)
						}
						done <- struct{}{}
					}
				}()
			}
			per := b.N / np
			for p := 0; p < np; p++ {
				n := per
				if p == 0 {
					n += b.N % np
				}
				work <- n
			}
			for p := 0; p < np; p++ {
				<-done
			}
			close(work)
			b.StopTimer()
			rt.Wait(g)
		})
	}
}

// BenchmarkWait measures the taskwait path: submit a small wave, then Wait.
func BenchmarkWait(b *testing.B) {
	const wave = 64
	rt, err := New(Config{Policy: PolicyGTBMaxBuffer})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	g := rt.Group("bench", 0.5)
	opts := benchOpts(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < wave; j++ {
			rt.Submit(benchBody, opts...)
		}
		rt.Wait(g)
	}
}

// benchObserver is a minimal Observer standing in for the adaptive
// controller (which lives downstream in sig/adapt): it retunes the group's
// ratio at every wave, exactly like the controller's hot-path interaction.
type benchObserver struct{ waves int }

func (o *benchObserver) ObserveWave(g *Group, ws WaveStats) {
	o.waves++
	g.SetRatio(ws.RequestedRatio)
}

// TestSubmitAllocs asserts the steady-state heap cost of one submitted,
// executed task stays at or below one allocation per task — including with
// an Observer attached (the adaptive-control hook must cost nothing on the
// per-task path; its work happens at wave boundaries).
func TestSubmitAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is noisy under -short race runs")
	}
	kinds := []PolicyKind{PolicyAccurate, PolicyGTB, PolicyGTBMaxBuffer, PolicyLQH, PolicyPerforation}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			rt, err := New(Config{Workers: 1, Policy: kind, Observer: &benchObserver{}})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			g := rt.Group("alloc", 0.5)
			opts := benchOpts(g)
			// Warm the task pool and code paths with at least as many
			// live tasks as the measured run will buffer (GTB(max)
			// holds all of them until taskwait).
			for i := 0; i < 4000; i++ {
				rt.Submit(benchBody, opts...)
			}
			rt.Wait(g)
			avg := testing.AllocsPerRun(2000, func() {
				rt.Submit(benchBody, opts...)
			})
			rt.Wait(g)
			if avg > 1.0 {
				t.Errorf("%v: %.2f allocs per submitted task, want <= 1", kind, avg)
			}
		})
	}
}

package sig

import (
	"sync"
	"sync/atomic"
)

// Task recycling. Scalar Submit draws one *Task at a time from a sync.Pool;
// SubmitBatch carves tasks out of slabs — contiguous arrays recycled as a
// unit once every task of the slab has completed — so the steady-state heap
// cost of a task is zero on both paths.

// slabSize is how many tasks one batch slab holds.
const slabSize = 64

// taskSlab is a contiguous block of tasks handed out by SubmitBatch. n is
// the number of tasks in use this round; done counts completions, and the
// slab returns to the pool when the last task of the round finishes.
type taskSlab struct {
	tasks [slabSize]Task
	n     int32
	done  atomic.Int32
}

// taskPools owns both recycling paths of a Runtime.
type taskPools struct {
	single   sync.Pool // of *Task
	slabs    sync.Pool // of *taskSlab
	dispatch sync.Pool // of *[]*Task, SubmitBatch dispatch scratch
}

// getDispatch returns an empty dispatch scratch slice.
//
//siglint:poolget
//siglint:noalloc
func (p *taskPools) getDispatch() *[]*Task {
	if v := p.dispatch.Get(); v != nil {
		return v.(*[]*Task)
	}
	s := make([]*Task, 0, 4*slabSize) //siglint:allocok pool miss: first draw builds the scratch the pool then recycles
	return &s
}

// putDispatch recycles a dispatch scratch after clearing its task pointers.
//
//siglint:poolput
//siglint:noalloc
func (p *taskPools) putDispatch(s *[]*Task) {
	clear(*s)
	*s = (*s)[:0]
	p.dispatch.Put(s)
}

// get returns a reset single task ready for Submit to fill.
//
//siglint:poolget
//siglint:noalloc
func (p *taskPools) get() *Task {
	if v := p.single.Get(); v != nil {
		return v.(*Task)
	}
	return &Task{} //siglint:allocok pool miss: steady state always hits the pool
}

// getSlab returns a slab ready to hand out n tasks.
//
//siglint:poolget
//siglint:noalloc
func (p *taskPools) getSlab(n int) *taskSlab {
	var s *taskSlab
	if v := p.slabs.Get(); v != nil {
		s = v.(*taskSlab)
	} else {
		s = new(taskSlab) //siglint:allocok pool miss: steady state always hits the pool
	}
	s.n = int32(n)
	s.done.Store(0)
	return s
}

// release recycles a completed task onto whichever path produced it. The
// task must not be touched afterwards.
//
//siglint:poolput
//siglint:noalloc
func (p *taskPools) release(t *Task) {
	if s := t.slab; s != nil {
		// Read n BEFORE publishing our completion: until our Add lands
		// the slab cannot reach done==n, so it cannot be recycled and
		// n is stable. Reading it after the Add would race with the
		// slab's next user re-initializing it.
		n := s.n
		if s.done.Add(1) == n {
			p.slabs.Put(s)
		}
		return
	}
	t.reset()
	p.single.Put(t)
}

// reset clears a task for reuse, keeping the footprint slices' capacity.
//
//siglint:noalloc
func (t *Task) reset() {
	ins, outs := t.ins[:0], t.outs[:0]
	*t = Task{}
	t.ins, t.outs = ins, outs
}

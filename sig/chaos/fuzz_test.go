package chaos

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
	"time"

	"repro/sig"
	"repro/sig/shard"
)

// FuzzChaosSchedule drives a fleet through adversarial seeded surgery plans
// (drain / rejoin / quarantine / revive at wave boundaries) while the
// injector plants panics and delays into the task stream, and checks the
// self-healing contracts:
//
//   - conservation: every submitted task is decided exactly once, across
//     any interleaving of surgery and waves (retired incarnations counted);
//   - availability: the router's guardrails keep at least one routable
//     shard at all times;
//   - deterministic energy: every task declares its cost and panicked
//     bodies still charge it, so the merged busy time equals the exact
//     integer outcome arithmetic — rejoins must not lose or double-count a
//     nanosecond;
//   - fault accounting: the fleet absorbs exactly the panics the injector
//     planted, across drain+rejoin.
//
// Input encoding (every byte string is valid):
//
//	data[0]  shards (1..4)
//	data[1]  spare slots above shards (0..2)
//	data[2]  surgery ops per wave (1..3)
//	data[3]  waves (1..6)
//	data[4]  tasks per wave (0..23)
//	data[5]  global ratio, data[5]/255
//	data[6]  policy (accurate, GTB, GTBmax, perforation, LQH)
//	data[7]  PanicEvery (0..4; 0 = no panics)
//	data[8]  DelayEvery (0..5; 0 = no delays)
//	data[9:17] surgery-plan seed (little-endian, zero-padded)
func FuzzChaosSchedule(f *testing.F) {
	f.Add([]byte{2, 1, 1, 4, 12, 128, 2, 3, 0, 42, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{4, 2, 3, 6, 23, 255, 0, 0, 5, 7, 7, 7, 7, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 1, 2, 8, 0, 4, 2, 2, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 1, 2, 5, 16, 77, 3, 4, 3, 99, 1, 0, 255, 0, 0, 0, 0})

	policies := []sig.PolicyKind{
		sig.PolicyAccurate, sig.PolicyGTB, sig.PolicyGTBMaxBuffer,
		sig.PolicyPerforation, sig.PolicyLQH,
	}
	const costAcc, costDeg = 1000.0, 100.0

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 9 {
			t.Skip()
		}
		shards := 1 + int(data[0])%4
		spare := int(data[1]) % 3
		opsPerWave := 1 + int(data[2])%3
		waves := 1 + int(data[3])%6
		perWave := int(data[4]) % 24
		ratio := float64(data[5]) / 255
		policy := policies[int(data[6])%len(policies)]
		var seedb [8]byte
		copy(seedb[:], data[9:])
		seed := int64(binary.LittleEndian.Uint64(seedb[:]) >> 1)

		in := NewInjector(seed, Config{
			PanicEvery: int(data[7]) % 5,
			DelayEvery: int(data[8]) % 6,
			Delay:      200 * time.Microsecond,
		})
		r, err := shard.New(shard.Config{
			Shards:    shards,
			MaxShards: shards + spare,
			Placement: shard.PlacementKind(int(data[0]) % 3),
			Runtime:   sig.Config{Workers: 1, Policy: policy, RecoverPanics: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		plan := Schedule(seed, waves, shards+spare, opsPerWave)
		g := r.Group("fuzz", ratio)

		var ran atomic.Int64
		submitted := 0
		for w := 0; w < waves; w++ {
			specs := make([]sig.TaskSpec, perWave)
			for k := range specs {
				specs[k] = in.Wrap(sig.TaskSpec{
					Fn:           func() { ran.Add(1) },
					Approx:       func() { ran.Add(1) },
					Significance: float64((w*perWave+k)%11) / 10,
					HasCost:      true, CostAccurate: costAcc, CostApprox: costDeg,
				})
			}
			r.SubmitBatch(g, specs)
			submitted += perWave
			// Surgery mid-stream: the batch may still be queued when its
			// shard drains (drain waits it out) or its slot rejoins.
			Apply(r, plan, w)
			if r.Routable() < 1 {
				t.Fatalf("wave %d: no routable shard left", w)
			}
			r.WaitPhase(g)
		}
		r.Wait(g)

		gs := g.Stats()
		if gs.Submitted != int64(submitted) {
			t.Fatalf("submitted %d, stats count %d", submitted, gs.Submitted)
		}
		decided := gs.Accurate + gs.Approximate + gs.Dropped
		if decided != gs.Submitted {
			t.Fatalf("%d submitted, %d decided — surgery lost work", gs.Submitted, decided)
		}
		if got, want := ran.Load()+r.Panics(), gs.Accurate+gs.Approximate; got != want {
			t.Fatalf("bodies ran %d + panicked %d != executed %d",
				ran.Load(), r.Panics(), want)
		}
		if got := r.Panics(); got != in.Panicked() {
			t.Fatalf("fleet absorbed %d panics, injector planted %d", got, in.Panicked())
		}
		// Exact integer energy: declared costs only, panics charge too.
		rep := r.Energy()
		want := time.Duration(gs.Accurate)*time.Duration(costAcc) +
			time.Duration(gs.Approximate)*time.Duration(costDeg)
		if rep.Busy != want {
			t.Fatalf("merged busy %v, want exact %v (acc %d, apx %d)",
				rep.Busy, want, gs.Accurate, gs.Approximate)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// Package chaos provides seeded, replayable fault injection for the
// significance-aware fleet: every scenario it produces is a deterministic
// function of its seed, so a chaos test is a regression test, not a flake.
//
// It attacks the two seams the fleet promises to survive:
//
//   - The worker seam: Injector wraps task bodies so that a deterministic
//     subset of tasks wedges on a Gate (holding a shard's workers hostage),
//     panics (exercising sig.Config.RecoverPanics), or stalls briefly
//     (delaying the shard's wave cut past a Router's WaveTimeout).
//   - The fleet seam: Schedule derives a replayable surgery plan — drain,
//     rejoin, quarantine, revive — that Apply executes against a
//     shard.Router at wave boundaries. Refused operations (last routable
//     shard, fleet at capacity, slot still draining) are skipped: the
//     router's guardrails are part of the contract under test.
//
// The package's own test suite carries the fleet's headline proof: the
// rolling-replace chaos test drains and rejoins every shard in sequence
// under sustained overload and asserts zero lost tasks, merged energy
// bit-identical to a single-runtime golden, and bounded recovery.
//
//siglint:deterministic
package chaos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/sig"
	"repro/sig/shard"
)

// Gate is a reusable barrier task bodies can wedge on: Wait blocks until
// Open, which is idempotent and releases every past and future waiter.
type Gate struct {
	once sync.Once
	ch   chan struct{}
}

// NewGate returns a closed gate.
func NewGate() *Gate { return &Gate{ch: make(chan struct{})} }

// Wait blocks until the gate opens.
func (g *Gate) Wait() { <-g.ch }

// Open releases every waiter; safe to call more than once.
func (g *Gate) Open() { g.once.Do(func() { close(g.ch) }) }

// Config selects which faults an Injector plants and how often. Every
// fault is assigned by arithmetic on the wrapped-task index (offset by the
// seed), so a given seed and submission order always faults the same tasks.
// Wedge wins over panic wins over delay when periods collide.
type Config struct {
	// WedgeEvery wedges every n-th wrapped task on the injector's Gate
	// until Open is called (0 = never). A wedged task holds its worker —
	// the "sick shard" primitive.
	WedgeEvery int
	// PanicEvery panics every n-th wrapped task body (0 = never). The
	// executing runtime must run with sig.Config.RecoverPanics, or the
	// panic kills the worker instead of being absorbed.
	PanicEvery int
	// DelayEvery sleeps every n-th wrapped task for Delay (0 = never) —
	// the wave-cut delay primitive for WaveTimeout watchdog tests.
	DelayEvery int
	Delay      time.Duration
}

// Injector plants deterministic faults into task bodies. Create one with
// NewInjector, route specs through Wrap, and count the damage afterwards.
type Injector struct {
	cfg   Config
	phase int64
	gate  *Gate

	n        atomic.Int64
	wedged   atomic.Int64
	panicked atomic.Int64
	delayed  atomic.Int64
}

// NewInjector builds an injector whose fault pattern is a pure function of
// seed and wrap order.
func NewInjector(seed int64, cfg Config) *Injector {
	// The seed phases the index arithmetic, so different seeds fault
	// different task positions with the same densities.
	phase := seed % 1_000_003
	if phase < 0 {
		phase = -phase
	}
	return &Injector{cfg: cfg, phase: phase, gate: NewGate()}
}

// Gate returns the gate wedged tasks block on.
func (in *Injector) Gate() *Gate { return in.gate }

// Open releases every wedged task.
func (in *Injector) Open() { in.gate.Open() }

// Wedged, Panicked and Delayed count faults actually executed (not merely
// planted: a wrapped body that never runs — dropped by policy — fires no
// fault).
func (in *Injector) Wedged() int64   { return in.wedged.Load() }
func (in *Injector) Panicked() int64 { return in.panicked.Load() }
func (in *Injector) Delayed() int64  { return in.delayed.Load() }

type faultKind int

const (
	faultNone faultKind = iota
	faultWedge
	faultPanic
	faultDelay
)

// Wrap assigns the next task index its fault (if any) and returns the spec
// with both bodies wrapped. Whichever body the policy picks — accurate or
// approximate — executes the same planted fault, so placement and policy
// decisions cannot dodge the chaos.
func (in *Injector) Wrap(spec sig.TaskSpec) sig.TaskSpec {
	idx := in.phase + in.n.Add(1) - 1
	fault := faultNone
	switch {
	case in.cfg.WedgeEvery > 0 && idx%int64(in.cfg.WedgeEvery) == 0:
		fault = faultWedge
	case in.cfg.PanicEvery > 0 && idx%int64(in.cfg.PanicEvery) == 0:
		fault = faultPanic
	case in.cfg.DelayEvery > 0 && idx%int64(in.cfg.DelayEvery) == 0:
		fault = faultDelay
	}
	if fault == faultNone {
		return spec
	}
	spec.Fn = in.wrapBody(spec.Fn, fault)
	if spec.Approx != nil {
		spec.Approx = in.wrapBody(spec.Approx, fault)
	}
	return spec
}

func (in *Injector) wrapBody(body func(), fault faultKind) func() {
	return func() {
		switch fault {
		case faultWedge:
			in.wedged.Add(1)
			in.gate.Wait()
		case faultPanic:
			in.panicked.Add(1)
			panic("chaos: injected task panic")
		case faultDelay:
			in.delayed.Add(1)
			time.Sleep(in.cfg.Delay)
		}
		body()
	}
}

// OpKind is one fleet-surgery operation kind.
type OpKind int

const (
	// OpDrain drains a shard (shard.Router.DrainShard).
	OpDrain OpKind = iota
	// OpRejoin adds a shard into the lowest free slot (AddShard).
	OpRejoin
	// OpQuarantine pulls a shard out of placement (QuarantineShard).
	OpQuarantine
	// OpRevive readmits a quarantined shard (ReviveShard).
	OpRevive
)

func (k OpKind) String() string {
	switch k {
	case OpDrain:
		return "drain"
	case OpRejoin:
		return "rejoin"
	case OpQuarantine:
		return "quarantine"
	case OpRevive:
		return "revive"
	}
	return "op?"
}

// Op is one scheduled fleet-surgery operation.
type Op struct {
	// Wave is the wave boundary the op fires at.
	Wave int
	Kind OpKind
	// Shard is the slot operated on (reduced modulo the router's slot
	// capacity at Apply time; unused for OpRejoin).
	Shard int
}

// Schedule derives a replayable surgery plan: for each of waves wave
// boundaries, up to opsPerWave operations over a fleet of slots slots. The
// plan is a pure function of its arguments — replaying a seed replays the
// chaos exactly.
func Schedule(seed int64, waves, slots, opsPerWave int) []Op {
	rng := rand.New(rand.NewSource(seed))
	if opsPerWave <= 0 {
		opsPerWave = 1
	}
	var plan []Op
	for w := 0; w < waves; w++ {
		for k := 0; k < opsPerWave; k++ {
			// Weight toward doing nothing so most waves are calm and ops
			// arrive in bursts the fleet must absorb, not a steady trickle.
			switch rng.Intn(8) {
			case 0:
				plan = append(plan, Op{Wave: w, Kind: OpDrain, Shard: rng.Intn(slots)})
			case 1:
				plan = append(plan, Op{Wave: w, Kind: OpRejoin})
			case 2:
				plan = append(plan, Op{Wave: w, Kind: OpQuarantine, Shard: rng.Intn(slots)})
			case 3:
				plan = append(plan, Op{Wave: w, Kind: OpRevive, Shard: rng.Intn(slots)})
			}
		}
	}
	return plan
}

// Apply executes the plan's operations scheduled for wave against the
// router and reports how many were accepted. Refusals (ErrLastShard,
// ErrFleetFull, ErrShardDraining, ErrShardDown, …) are skipped by design:
// the router's guardrails are part of the contract chaos tests verify —
// the fleet must refuse surgery that would lose work, and survive
// everything it accepts.
func Apply(r *shard.Router, plan []Op, wave int) int {
	applied := 0
	for _, op := range plan {
		if op.Wave != wave {
			continue
		}
		slot := 0
		if n := r.Shards(); n > 0 {
			slot = op.Shard % n
		}
		var err error
		switch op.Kind {
		case OpDrain:
			err = r.DrainShard(slot)
		case OpRejoin:
			_, err = r.AddShard()
		case OpQuarantine:
			err = r.QuarantineShard(slot)
		case OpRevive:
			err = r.ReviveShard(slot)
		}
		if err == nil {
			applied++
		}
	}
	return applied
}

package chaos

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/sig"
	"repro/sig/shard"
)

// TestChaosRollingReplace is the fleet's headline robustness proof: under
// sustained overload, every original shard is replaced in sequence —
// AddShard a fresh runtime (surge), DrainShard the old one — at several
// fleet sizes. The fleet must lose nothing: every submitted task decided,
// availability never below the nominal size (recovery bound: zero waves
// under surge-then-drain), and the merged modeled energy bit-identical to
// a single-runtime golden executing the same outcome mix.
func TestChaosRollingReplace(t *testing.T) {
	const (
		costAcc = 10_000.0
		costDeg = 1_000.0
	)
	for _, shards := range []int{1, 2, 4, 8} {
		r, err := shard.New(shard.Config{
			Shards:    shards,
			MaxShards: shards + 1, // one spare slot: surge before draining
			Runtime:   sig.Config{Workers: 2, Policy: sig.PolicyGTBMaxBuffer},
		})
		if err != nil {
			t.Fatal(err)
		}
		g := r.Group("roll", 0.5)
		var ran atomic.Int64
		perWave := 64 * shards // far past the fleet's per-wave capacity
		submitted := 0
		submitWave := func() {
			specs := make([]sig.TaskSpec, perWave)
			for i := range specs {
				specs[i] = sig.TaskSpec{
					Fn:           func() { ran.Add(1) },
					Approx:       func() { ran.Add(1) },
					Significance: float64(i%9+1) / 10,
					HasCost:      true, CostAccurate: costAcc, CostApprox: costDeg,
				}
			}
			r.SubmitBatch(g, specs)
			submitted += perWave
		}

		submitWave()
		r.Wait(g)
		for j := 0; j < shards; j++ {
			submitWave() // keep the pressure on during surgery
			if _, err := r.AddShard(); err != nil {
				t.Fatalf("%d shards: rejoin %d: %v", shards, j, err)
			}
			if err := r.DrainShard(j); err != nil {
				t.Fatalf("%d shards: drain %d: %v", shards, j, err)
			}
			// Surge-then-drain: availability must never dip below nominal.
			if live, routable := r.Live(), r.Routable(); live != shards || routable != shards {
				t.Fatalf("%d shards: after replace %d: live %d routable %d, want %d",
					shards, j, live, routable, shards)
			}
			r.Wait(g)
		}
		submitWave()
		r.Wait(g)

		// Zero requests lost: every submission decided, every executed body
		// observed.
		gs := g.Stats()
		if gs.Submitted != int64(submitted) {
			t.Fatalf("%d shards: submitted %d, stats count %d", shards, submitted, gs.Submitted)
		}
		decided := gs.Accurate + gs.Approximate + gs.Dropped
		if decided != gs.Submitted {
			t.Fatalf("%d shards: %d submitted but %d decided (lost %d)",
				shards, gs.Submitted, decided, gs.Submitted-decided)
		}
		if got := ran.Load(); got != gs.Accurate+gs.Approximate {
			t.Fatalf("%d shards: %d bodies ran, counters say %d",
				shards, got, gs.Accurate+gs.Approximate)
		}

		// Merged energy: exact integer busy sum across incarnations, and
		// bit-identical joules to a single runtime running the same outcome
		// mix (reconstructed golden: the outcome counts are placement- and
		// policy-dependent, the energy of a given mix is not).
		rep := r.Energy()
		wantBusy := time.Duration(gs.Accurate)*time.Duration(costAcc) +
			time.Duration(gs.Approximate)*time.Duration(costDeg)
		if rep.Busy != wantBusy {
			t.Fatalf("%d shards: merged busy %v, want exact %v", shards, rep.Busy, wantBusy)
		}
		golden := goldenEnergy(t, gs.Accurate, gs.Approximate, costAcc, costDeg)
		if math.Float64bits(rep.Joules) != math.Float64bits(golden.Joules) {
			t.Fatalf("%d shards: merged %.12f J, golden %.12f J — not bit-identical",
				shards, rep.Joules, golden.Joules)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// goldenEnergy runs acc+deg declared-cost tasks on one plain runtime and
// returns its frozen energy report.
func goldenEnergy(t *testing.T, acc, deg int64, costAcc, costDeg float64) sig.Report {
	t.Helper()
	rt, err := sig.New(sig.Config{Workers: 2, Policy: sig.PolicyAccurate})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]sig.TaskSpec, 0, acc+deg)
	for i := int64(0); i < acc; i++ {
		specs = append(specs, sig.TaskSpec{Fn: func() {}, HasCost: true, CostAccurate: costAcc})
	}
	for i := int64(0); i < deg; i++ {
		specs = append(specs, sig.TaskSpec{Fn: func() {}, HasCost: true, CostAccurate: costDeg})
	}
	rt.SubmitBatch(nil, specs)
	rt.Wait(nil)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	return rt.Energy()
}

// TestChaosWedgeWatchdog walks one wedged shard through the whole health
// state machine: a task wedged on the injector's gate holds shard 0's
// worker, the wave-latency watchdog strikes it each merged wave — suspect,
// then quarantined, then auto-drained — while the sibling shard keeps
// serving. Opening the gate lets the drain finish, AddShard rejoins the
// slot, and nothing is lost.
func TestChaosWedgeWatchdog(t *testing.T) {
	in := NewInjector(1, Config{WedgeEvery: 1})
	r, err := shard.New(shard.Config{
		Shards:      2,
		Placement:   shard.PlaceCostAffinity,
		Runtime:     sig.Config{Workers: 1},
		WaveTimeout: 10 * time.Millisecond,
		// Defaults: suspect after 1 strike, quarantine after 2, drain
		// after 4.
	})
	if err != nil {
		t.Fatal(err)
	}
	g := r.Group("wedge", 1.0)
	// Cost 100 → class 6 → slot 0; cost 200 → class 7 → slot 1 (2 slots).
	r.Submit(g, in.Wrap(sig.TaskSpec{
		Fn: func() {}, Significance: 1.0, HasCost: true, CostAccurate: 100,
	}))
	healthyRan := 0
	healthyWave := func() {
		r.Submit(g, sig.TaskSpec{
			Fn: func() { healthyRan++ }, Significance: 1.0, HasCost: true, CostAccurate: 200,
		})
		r.WaitPhase(g)
	}

	healthyWave() // strike 1: suspect
	if got := r.Health(0); got != shard.HealthSuspect {
		t.Fatalf("after 1 missed wave: health %v, want suspect", got)
	}
	healthyWave() // strike 2: quarantined
	if got := r.Health(0); got != shard.HealthQuarantined {
		t.Fatalf("after 2 missed waves: health %v, want quarantined", got)
	}
	if routable := r.Routable(); routable != 1 {
		t.Fatalf("quarantined shard still routable: %d routable, want 1", routable)
	}
	healthyWave() // strike 3
	healthyWave() // strike 4: auto-drain fires (async: the shard is wedged)
	deadline := time.Now().Add(2 * time.Second)
	for r.Health(0) != shard.HealthDrained {
		if time.Now().After(deadline) {
			t.Fatal("auto-drain never marked shard 0 down")
		}
		time.Sleep(time.Millisecond)
	}
	// The drain cannot finish while the task is wedged, so the slot is not
	// reusable yet.
	if _, err := r.AddShard(); !errors.Is(err, shard.ErrShardDraining) {
		t.Fatalf("AddShard during wedged drain: %v, want ErrShardDraining", err)
	}

	in.Open()
	var slot int
	for {
		slot, err = r.AddShard()
		if err == nil {
			break
		}
		if !errors.Is(err, shard.ErrShardDraining) {
			t.Fatalf("AddShard after gate opened: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never completed after the gate opened")
		}
		time.Sleep(time.Millisecond)
	}
	if slot != 0 {
		t.Fatalf("rejoined slot %d, want the drained slot 0", slot)
	}
	if got := r.Health(0); got != shard.HealthLive {
		t.Fatalf("rejoined shard health %v, want live", got)
	}
	if live, routable := r.Live(), r.Routable(); live != 2 || routable != 2 {
		t.Fatalf("after rejoin: live %d routable %d, want 2/2", live, routable)
	}

	// The wedged wave's late stats fold into a later merge; in the end the
	// account balances.
	healthyWave()
	healthyWave()
	gs := g.Stats()
	if gs.Submitted != int64(healthyRan)+1 {
		t.Fatalf("submitted %d, want %d", gs.Submitted, healthyRan+1)
	}
	if decided := gs.Accurate + gs.Approximate + gs.Dropped; decided != gs.Submitted {
		t.Fatalf("%d submitted, %d decided — chaos lost work", gs.Submitted, decided)
	}
	if w := in.Wedged(); w != 1 {
		t.Fatalf("wedged %d tasks, want 1", w)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPanicInjection proves the panic injector against a fleet running
// with RecoverPanics: every planted panic is absorbed, still counted in the
// decision totals, and still charged its declared cost — modeled energy
// stays deterministic under faults.
func TestChaosPanicInjection(t *testing.T) {
	// Seed 0 → phase 0: indices 0,3,6,…,27 panic → 10 of 30.
	in := NewInjector(0, Config{PanicEvery: 3})
	r, err := shard.New(shard.Config{
		Shards:  2,
		Runtime: sig.Config{Workers: 1, RecoverPanics: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := r.Group("panic", 1.0)
	var ran atomic.Int64
	const n, cost = 30, 1000.0
	for i := 0; i < n; i++ {
		r.Submit(g, in.Wrap(sig.TaskSpec{
			Fn:           func() { ran.Add(1) },
			Significance: 1.0,
			HasCost:      true, CostAccurate: cost,
		}))
	}
	r.Wait(g)
	if got := in.Panicked(); got != 10 {
		t.Fatalf("injected %d panics, want 10", got)
	}
	if got := r.Panics(); got != in.Panicked() {
		t.Fatalf("fleet absorbed %d panics, injector planted %d", got, in.Panicked())
	}
	if got := ran.Load(); got != n-10 {
		t.Fatalf("%d bodies completed, want %d", got, n-10)
	}
	gs := g.Stats()
	if gs.Accurate != n {
		t.Fatalf("accurate count %d, want %d (panicked tasks still count)", gs.Accurate, n)
	}
	// Panic accounting survives a drain+rejoin (retired-incarnation sum).
	if err := r.DrainShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddShard(); err != nil {
		t.Fatal(err)
	}
	if got := r.Panics(); got != 10 {
		t.Fatalf("panics after rejoin %d, want 10", got)
	}
	rep := r.Energy()
	if want := time.Duration(n) * time.Duration(cost); rep.Busy != want {
		t.Fatalf("busy %v, want %v (panicked tasks charge their declared cost)", rep.Busy, want)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosDelayInjection: delayed bodies push a shard's wave cut past the
// watchdog without wedging it; the late stats arrive on their own and fold
// into a later merged wave — a strike, not a loss.
func TestChaosDelayInjection(t *testing.T) {
	in := NewInjector(0, Config{DelayEvery: 1, Delay: 30 * time.Millisecond})
	r, err := shard.New(shard.Config{
		Shards:      2,
		Placement:   shard.PlaceCostAffinity,
		Runtime:     sig.Config{Workers: 1},
		WaveTimeout: 5 * time.Millisecond,
		DrainAfter:  -1, // never auto-drain: this test watches recovery
	})
	if err != nil {
		t.Fatal(err)
	}
	g := r.Group("delay", 1.0)
	r.Submit(g, in.Wrap(sig.TaskSpec{
		Fn: func() {}, Significance: 1.0, HasCost: true, CostAccurate: 100, // slot 0
	}))
	r.WaitPhase(g)
	if got := r.Health(0); got != shard.HealthSuspect {
		t.Fatalf("delayed shard health %v, want suspect", got)
	}
	// Give the delayed cut time to land, then merge it: the shard is
	// healthy again.
	time.Sleep(50 * time.Millisecond)
	r.WaitPhase(g)
	if got := r.Health(0); got != shard.HealthLive {
		t.Fatalf("recovered shard health %v, want live", got)
	}
	if got := in.Delayed(); got != 1 {
		t.Fatalf("delayed %d tasks, want 1", got)
	}
	gs := g.Stats()
	if gs.Accurate != 1 {
		t.Fatalf("accurate %d, want 1 — the late task's stats must not be lost", gs.Accurate)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleReplayable: the surgery plan is a pure function of the seed.
func TestScheduleReplayable(t *testing.T) {
	a := Schedule(42, 16, 4, 2)
	b := Schedule(42, 16, 4, 2)
	if len(a) != len(b) {
		t.Fatalf("same seed, different plan lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, plans diverge at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("16-wave plan came out empty; widen the op weights")
	}
}

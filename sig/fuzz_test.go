package sig

import (
	"math"
	"testing"
)

// FuzzPolicyDecisions feeds adversarial significance/ratio sequences into
// the significance-aware policies (GTB, GTB(max), LQH, Perforation) and
// checks the same invariants as the property suite (invariant_test.go).
//
// Input encoding (every byte string is valid):
//
//	data[0]       policy selector
//	data[1]       requested ratio, quantized to data[1]/255
//	data[2]       worker count (1..8) and batch-vs-scalar (high bit)
//	data[3]       GTB window / LQH history parameter
//	data[4]       flags: bit0 = the ratio changes at wave boundaries;
//	              bit1 = every third task carries no approximate body
//	              (approximate decisions on it are task drops)
//	data[5:]      the task stream: 255 is a taskwait boundary (followed,
//	              when ratio changes are enabled, by one byte of new
//	              ratio); any other byte v is a task of significance v/254
//	              — so the stream can position the special values 0.0 and
//	              1.0 and the wave cuts adversarially.
//
// When the ratio changes mid-stream the provided-ratio floor is not a
// well-defined single number, so those runs check conservation, the
// special-value contracts and Wait sanity only; constant-ratio runs check
// the full invariant set.
func FuzzPolicyDecisions(f *testing.F) {
	// Seeds from the property-test corpus: the nine-level cycle, constant
	// significance, bimodal extremes, specials-heavy streams, adversarial
	// wave cuts and a mid-stream ratio flip.
	nineLevels := []byte{0, 128, 3, 16, 0}
	for i := 0; i < 90; i++ {
		nineLevels = append(nineLevels, byte(25*(i%9+1)))
	}
	f.Add(nineLevels)
	f.Add([]byte{1, 85, 2, 0, 0, 127, 127, 127, 255, 127, 127, 127, 127})
	f.Add([]byte{2, 200, 132, 32, 0, 10, 240, 10, 240, 10, 240, 10, 240, 10, 240})
	f.Add([]byte{3, 64, 4, 8, 0, 0, 254, 0, 254, 0, 254, 127})
	f.Add([]byte{0, 255, 1, 1, 0, 255, 1, 255, 2, 255, 3, 255})
	f.Add([]byte{1, 25, 7, 64, 1, 200, 200, 200, 255, 230, 50, 50, 50, 255, 10, 100, 100})
	f.Add([]byte{2, 85, 130, 16, 2, 127, 0, 254, 127, 60, 255, 60, 127, 0, 200})

	kinds := []PolicyKind{PolicyGTB, PolicyGTBMaxBuffer, PolicyLQH, PolicyPerforation}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		kind := kinds[int(data[0])%len(kinds)]
		ratio := float64(data[1]) / 255
		workers := 1 + int(data[2]&0x7f)%8
		batch := data[2]&0x80 != 0
		param := int(data[3]) % 64
		ratioChanges := data[4]&1 != 0
		noApprox := 0
		if data[4]&2 != 0 {
			noApprox = 3
		}
		stream := data[5:]
		if len(stream) > 2048 {
			stream = stream[:2048]
		}

		rt, err := New(Config{Workers: workers, Policy: kind, GTBWindow: param, LQHHistory: param})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		g := rt.Group("fuzz", ratio)

		var sigs []float64
		var ranAcc, ranApx []bool
		waves := 1
		provided := math.NaN()
		flush := func(pending []TaskSpec) {
			if len(pending) == 0 {
				return
			}
			if batch {
				rt.SubmitBatch(g, pending)
				return
			}
			for _, sp := range pending {
				s := sp.Significance
				if s < 0 {
					s = 0
				}
				rt.Submit(sp.Fn, WithLabel(g), WithSignificance(s),
					WithApprox(sp.Approx), WithCost(10, 1)) // Approx may be nil: a drop
			}
		}
		var pending []TaskSpec
		for pos := 0; pos < len(stream); pos++ {
			v := stream[pos]
			if v == 255 {
				flush(pending)
				pending = pending[:0]
				provided = rt.Wait(g)
				waves++
				if ratioChanges && pos+1 < len(stream) {
					pos++
					g.SetRatio(float64(stream[pos]) / 254)
				}
				continue
			}
			i := len(sigs)
			s := float64(v) / 254
			sigs = append(sigs, s)
			ranAcc = append(ranAcc, false)
			ranApx = append(ranApx, false)
			spec := TaskSpec{
				Fn:           func() { ranAcc[i] = true },
				Significance: s,
				HasCost:      true, CostAccurate: 10, CostApprox: 1,
			}
			if noApprox == 0 || i%noApprox != 0 {
				spec.Approx = func() { ranApx[i] = true }
			}
			if s == 0 {
				spec.Significance = -1 // batch spelling of the special 0.0
			}
			pending = append(pending, spec)
		}
		flush(pending)
		provided = rt.Wait(g)

		st := rt.Stats()
		gs := st.Groups[0]
		sc := invScenario{kind: kind, workers: workers, ratio: ratio, sigs: sigs, batch: batch, waves: waves, noApprox: noApprox}
		out := invOutcome{ranAcc: ranAcc, ranApx: ranApx}
		if ratioChanges {
			checkConservationAndSpecials(t, sc, out, gs, provided)
		} else {
			checkInvariants(t, sc, out, gs, provided)
		}
	})
}

// checkConservationAndSpecials is the invariant subset that survives
// mid-stream ratio retargeting: task conservation, the special-significance
// contracts and Wait sanity (everything except the ratio floor, which is
// only defined against a single requested ratio).
func checkConservationAndSpecials(t *testing.T, sc invScenario, out invOutcome, gs GroupStats, provided float64) {
	t.Helper()
	saved := sc
	saved.ratio = 0 // a zero requested ratio makes the floor check vacuous
	checkInvariants(t, saved, out, gs, provided)
}

package sig

// Stats is a snapshot of task accounting across all groups of a runtime.
// The counters are int64 — like the atomics backing them — so long-running
// serving workloads cannot overflow them on 32-bit platforms.
type Stats struct {
	Submitted   int64
	Accurate    int64
	Approximate int64
	Dropped     int64
	Groups      []GroupStats
}

// GroupStats is the per-group accounting snapshot.
type GroupStats struct {
	Name      string
	Submitted int64
	// Accurate, Approximate and Dropped count decided-and-completed
	// tasks; Dropped counts tasks skipped without running any body —
	// both policy drops and approximate decisions on tasks that carry
	// no approximate body (the model's task-dropping degradation).
	Accurate    int64
	Approximate int64
	Dropped     int64
	// RequestedRatio is the group's target accurate fraction;
	// ProvidedRatio is the fraction actually delivered.
	RequestedRatio float64
	ProvidedRatio  float64
	// InBytes/OutBytes total the declared task footprints.
	InBytes  int64
	OutBytes int64
	// Decisions is the ordered per-task decision log, populated only when
	// Config.RecordDecisions is set.
	Decisions []DecisionRecord
}

// Counts returns the group's task counters — submitted, accurate,
// approximate, dropped — without the decision-log copy Stats makes: the
// O(1) read a per-wave merge loop (sig/shard) wants.
func (g *Group) Counts() (submitted, accurate, approximate, dropped int64) {
	return g.submitted.Load(), g.accurate.Load(), g.approximate.Load(), g.dropped.Load()
}

// Stats returns the group's own accounting snapshot, without taking the
// runtime-wide lock Runtime.Stats needs. Sharded front ends (sig/shard) use
// it to merge one logical group's counters across runtimes.
func (g *Group) Stats() GroupStats {
	gs := GroupStats{
		Name:           g.name,
		Submitted:      g.submitted.Load(),
		Accurate:       g.accurate.Load(),
		Approximate:    g.approximate.Load(),
		Dropped:        g.dropped.Load(),
		RequestedRatio: g.Ratio(),
		ProvidedRatio:  g.providedRatio(),
		InBytes:        g.inBytes.Load(),
		OutBytes:       g.outBytes.Load(),
	}
	if g.rt.cfg.RecordDecisions {
		g.logMu.Lock()
		gs.Decisions = append([]DecisionRecord(nil), g.log...)
		g.logMu.Unlock()
	}
	return gs
}

// DecisionRecord is one entry of a group's decision log.
type DecisionRecord struct {
	Significance float64
	Accurate     bool
	// Wave counts the group's taskwait epochs: iterative benchmarks
	// submit one wave per Wait cycle, and significance values are only
	// comparable within a wave.
	Wave int
}

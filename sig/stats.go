package sig

// Stats is a snapshot of task accounting across all groups of a runtime.
// The counters are int64 — like the atomics backing them — so long-running
// serving workloads cannot overflow them on 32-bit platforms.
type Stats struct {
	Submitted   int64
	Accurate    int64
	Approximate int64
	Dropped     int64
	Groups      []GroupStats
}

// GroupStats is the per-group accounting snapshot.
type GroupStats struct {
	Name      string
	Submitted int64
	// Accurate, Approximate and Dropped count decided-and-completed
	// tasks; Dropped counts tasks skipped without running any body —
	// both policy drops and approximate decisions on tasks that carry
	// no approximate body (the model's task-dropping degradation).
	Accurate    int64
	Approximate int64
	Dropped     int64
	// RequestedRatio is the group's target accurate fraction;
	// ProvidedRatio is the fraction actually delivered.
	RequestedRatio float64
	ProvidedRatio  float64
	// InBytes/OutBytes total the declared task footprints.
	InBytes  int64
	OutBytes int64
	// Decisions is the ordered per-task decision log, populated only when
	// Config.RecordDecisions is set.
	Decisions []DecisionRecord
}

// DecisionRecord is one entry of a group's decision log.
type DecisionRecord struct {
	Significance float64
	Accurate     bool
	// Wave counts the group's taskwait epochs: iterative benchmarks
	// submit one wave per Wait cycle, and significance values are only
	// comparable within a wave.
	Wave int
}

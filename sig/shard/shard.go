// Package shard scales the significance-aware runtime past one scheduler
// domain: a Router owns N independent sig.Runtime shards (one per NUMA-ish
// resource slice) behind the familiar single-runtime surface — Submit /
// SubmitBatch, named groups, Wait / WaitPhase, Stats / Energy, Close — and
// places each task on a shard by a pluggable placement policy.
//
// A Group created on the Router is one *logical* group backed by one
// physical sig.Group per shard. The ratio knob is hierarchical, as a global
// admission controller wants it: SetRatio commands a single global ratio,
// and the Router layers a small per-shard trim controller on top — a shard
// whose provided ratio lagged the command in the last wave is boosted (never
// shed below the command), so the merged provided ratio tracks the global
// knob even when placement skews significance across shards. WaitPhase
// drains every shard and returns one merged WaveStats; the modeled joules of
// the merge are computed from the exact integer sum of the shards' busy
// nanoseconds — not by adding per-shard float joules — so the merged energy
// account is bit-identical to a single runtime executing the same bodies,
// and replays are bit-identical at any shard count.
//
// The fleet is elastic. A Router is born with Config.Shards shards inside
// Config.MaxShards fixed slots; DrainShard retires a shard at runtime
// (marks it unroutable, waits out in-flight submissions, closes its runtime)
// and AddShard rejoins a fresh runtime into a free slot. A rejoin preserves
// the merged-energy bit-identity contract: the outgoing incarnation's frozen
// busy nanoseconds move into an integer retirement account, the joining
// runtime starts with a zero busy clock, and merged joules stay one
// multiplication over an exact integer sum. Per-shard health is a small
// state machine (live → suspect → quarantined → auto-drained, see
// health.go) driven by a wave-latency watchdog and a pluggable HealthProbe;
// an Autoscaler (autoscale.go) grows and shrinks the fleet between bounds
// with hysteresis and cooldown. The chaos suite (chaos_test.go and
// sig/chaos) holds all of it to "nothing lost, nothing double-counted".
//
//siglint:deterministic
package shard

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/sig"
)

// Typed sentinel errors. Fleet-surgery methods wrap them with context via
// fmt.Errorf("...: %w", ...), so callers branch with errors.Is.
var (
	// ErrRouterClosed reports fleet surgery attempted after Close.
	ErrRouterClosed = errors.New("shard: router closed")
	// ErrLastShard reports a drain or quarantine that would leave the
	// fleet with no routable shard.
	ErrLastShard = errors.New("shard: last routable shard")
	// ErrShardDown reports a health operation on a drained (or never
	// joined) shard slot.
	ErrShardDown = errors.New("shard: shard is down")
	// ErrFleetFull reports AddShard with every slot occupied and routable.
	ErrFleetFull = errors.New("shard: fleet at capacity")
	// ErrShardDraining reports AddShard while the only free slots still
	// have a DrainShard in flight (their reports are not frozen yet).
	ErrShardDraining = errors.New("shard: shard still draining")
)

// PlacementKind selects how the Router maps tasks onto shards.
type PlacementKind int

const (
	// PlaceRoundRobin stripes tasks across live shards in submission
	// order: the bin-packing-free baseline, perfectly balanced for
	// homogeneous streams.
	PlaceRoundRobin PlacementKind = iota
	// PlaceLeastLoad places each task on the shard with the least
	// outstanding modeled cost (declared costs, or Config.DefaultCost for
	// undeclared tasks) — first-fit-decreasing-flavored balancing for
	// heterogeneous costs.
	PlaceLeastLoad
	// PlaceCostAffinity places tasks of the same cost class (binary
	// exponent of the declared accurate cost) on the same shard, so a
	// backend's equal-sized requests keep hitting the same slab pools and
	// policy windows.
	PlaceCostAffinity
)

func (k PlacementKind) valid() bool {
	return k >= PlaceRoundRobin && k <= PlaceCostAffinity
}

func (k PlacementKind) String() string {
	switch k {
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceLeastLoad:
		return "least-load"
	case PlaceCostAffinity:
		return "cost-affinity"
	}
	return fmt.Sprintf("PlacementKind(%d)", int(k))
}

// Defaults for Config's zero fields.
const (
	// DefaultTrimGain is the per-shard trim controller's integrator gain
	// on last wave's provided-ratio lag.
	DefaultTrimGain = 0.5
	// DefaultTrimMax bounds the per-shard boost above the global ratio.
	DefaultTrimMax = 0.2
	// DefaultPlacementCost is the load estimate for tasks that declare no
	// cost (same scale as serve.DefaultRequestCost: ~100µs nominal).
	DefaultPlacementCost = 100_000
)

// Config parameterizes a Router.
type Config struct {
	// Shards is the number of sig.Runtime shards started at New (0 means 1).
	Shards int
	// MaxShards is the fleet's slot capacity: AddShard can grow the fleet
	// up to it, and all per-shard state is sized to it once at New so the
	// submit hot path stays lock-free. 0 means Shards (no headroom).
	MaxShards int
	// Placement selects the placement policy (default PlaceRoundRobin).
	Placement PlacementKind
	// Runtime configures every shard identically: Workers is the
	// *per-shard* worker pool (0 = GOMAXPROCS per shard). Its Observer
	// must be nil — per-wave observation belongs to the Router, which
	// merges the shards' waves and delivers them through OnWave.
	Runtime sig.Config
	// OnWave, when non-nil, receives the merged WaveStats of every
	// logical group at each Wait/WaitPhase boundary, after all shards
	// drained — the seam a global admission controller (adapt.TargetLoad
	// via Controller.Observe) attaches to. It runs on the waiter's
	// goroutine and may retune the group via Group.SetRatio.
	OnWave func(g *Group, ws sig.WaveStats)
	// TrimGain and TrimMax tune the per-shard trim controllers; zero
	// fields take DefaultTrimGain/DefaultTrimMax. A negative TrimGain
	// disables trimming (every shard runs exactly the global ratio).
	TrimGain float64
	TrimMax  float64
	// DefaultCost is the placement-load estimate for tasks without
	// declared costs (default DefaultPlacementCost).
	DefaultCost float64

	// WaveTimeout, when positive, bounds how long a merged WaitPhase waits
	// on any one shard's wave cut: a shard that overruns it is skipped in
	// the merge (its late stats fold into a later wave when they arrive)
	// and earns a health strike. Zero keeps the wait fully synchronous —
	// the bit-identical replay mode.
	WaveTimeout time.Duration
	// HealthProbe, when non-nil, is consulted for every shard that
	// completed a wave in time; a non-nil error is a health strike, nil
	// clears the shard's strikes. The pluggable seam for external health
	// signals (process checks, remote heartbeats).
	HealthProbe func(shard int) error
	// SuspectAfter, QuarantineAfter and DrainAfter are the consecutive
	// strike counts at which a shard turns suspect, is quarantined
	// (unroutable but still open), and is auto-drained. Zero fields take
	// DefaultSuspectAfter/DefaultQuarantineAfter/DefaultDrainAfter; a
	// negative DrainAfter disables auto-drain.
	SuspectAfter    int
	QuarantineAfter int
	DrainAfter      int
}

// shardState is the Router's per-shard routing and health state, padded so
// the hot submit path never false-shares between shards.
type shardState struct {
	// inflight counts router submissions that picked this shard and may
	// not have reached its runtime yet; DrainShard flips down first and
	// then waits for inflight to drain, mirroring sig.Runtime.Close.
	inflight atomic.Int64
	// down marks the shard unroutable and its runtime closed (or never
	// started: empty headroom slots are born down). Cleared by AddShard.
	down atomic.Bool
	// quarantined marks the shard unroutable while its runtime stays open
	// (health state machine); ReviveShard clears it.
	quarantined atomic.Bool
	// draining is set for the duration of a DrainShard so AddShard never
	// reuses a slot whose energy report is not frozen yet.
	draining atomic.Bool
	// autoDrain latches the auto-drain trigger so the watchdog spawns at
	// most one drain per episode.
	autoDrain atomic.Bool
	// load is the outstanding modeled cost routed to the shard and not
	// yet retired by a wave boundary (least-load placement).
	load atomic.Int64
	// health is the announced HealthState; strikes counts consecutive
	// missed/failed waves (see health.go).
	health  atomic.Int32
	strikes atomic.Int32
	_       [27]byte
}

// partRef pairs one shard's runtime with this group's physical group on it.
// The pair is published atomically so a submitter or merger always sees a
// matching (runtime, group) — never a group from one fleet incarnation with
// the runtime of the next.
type partRef struct {
	rt *sig.Runtime
	p  *sig.Group
}

// retiredEnergy is the integer energy account of shards that left the fleet
// and whose slot was reused: exact busy nanoseconds, so merged joules stay
// one float multiplication over an integer sum.
type retiredEnergy struct {
	busy    time.Duration
	wall    time.Duration
	workers int
	panics  int64
}

// Router multiplexes the single-runtime surface over N shards. Create one
// with New, create logical groups with Group, submit with Submit or
// SubmitBatch, synchronize with Wait or WaitPhase, and release every shard
// with Close.
type Router struct {
	cfg      Config
	shards   []atomic.Pointer[sig.Runtime] // slot-indexed; nil = empty slot
	state    []shardState
	watts    float64
	idle     float64
	healthOn bool

	// mu guards groups/order/closed and serializes fleet surgery
	// (AddShard/DrainShard/quarantine) with the cold read paths
	// (Energy/Stats); never on the submit path.
	mu      sync.Mutex
	groups  map[string]*Group
	order   []*Group
	closed  bool
	retired retiredEnergy

	def atomic.Pointer[Group] // cached default group, off r.mu on submit
	rr  atomic.Uint64         // round-robin cursor
}

// New builds a Router and starts its shards.
func New(cfg Config) (*Router, error) {
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shard: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.MaxShards == 0 {
		cfg.MaxShards = cfg.Shards
	}
	if cfg.MaxShards < cfg.Shards {
		return nil, fmt.Errorf("shard: MaxShards %d below Shards %d", cfg.MaxShards, cfg.Shards)
	}
	if !cfg.Placement.valid() {
		return nil, fmt.Errorf("shard: unknown placement kind %d", cfg.Placement)
	}
	if cfg.Runtime.Observer != nil {
		return nil, fmt.Errorf("shard: per-shard Observer must be nil; merged waves are delivered through Config.OnWave")
	}
	if cfg.TrimGain == 0 {
		cfg.TrimGain = DefaultTrimGain
	}
	if cfg.TrimMax == 0 {
		cfg.TrimMax = DefaultTrimMax
	}
	if cfg.DefaultCost <= 0 {
		cfg.DefaultCost = DefaultPlacementCost
	}
	if cfg.WaveTimeout < 0 {
		return nil, fmt.Errorf("shard: negative WaveTimeout %v", cfg.WaveTimeout)
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.QuarantineAfter == 0 {
		cfg.QuarantineAfter = DefaultQuarantineAfter
	}
	if cfg.DrainAfter == 0 {
		cfg.DrainAfter = DefaultDrainAfter
	}
	if cfg.SuspectAfter < 0 || cfg.QuarantineAfter < 0 {
		return nil, fmt.Errorf("shard: negative health threshold")
	}
	r := &Router{
		cfg:      cfg,
		shards:   make([]atomic.Pointer[sig.Runtime], cfg.MaxShards),
		state:    make([]shardState, cfg.MaxShards),
		groups:   make(map[string]*Group),
		healthOn: cfg.WaveTimeout > 0 || cfg.HealthProbe != nil,
	}
	for i := 0; i < cfg.Shards; i++ {
		rt, err := sig.New(cfg.Runtime)
		if err != nil {
			for j := 0; j < i; j++ {
				r.shards[j].Load().Close()
			}
			return nil, err
		}
		r.shards[i].Store(rt)
	}
	// Headroom slots are born down (empty) until an AddShard fills them.
	for i := cfg.Shards; i < cfg.MaxShards; i++ {
		r.state[i].down.Store(true)
	}
	rep := r.shards[0].Load().Energy()
	r.watts, r.idle = rep.ActiveWatts, rep.IdleWatts
	return r, nil
}

// Shards returns the fleet's slot capacity (Config.MaxShards): the valid
// shard-index range for Part/Runtime/Health, whatever subset is live.
func (r *Router) Shards() int { return len(r.shards) }

// Workers returns the total worker count across the current shards.
func (r *Router) Workers() int {
	n := 0
	for i := range r.shards {
		if rt := r.shards[i].Load(); rt != nil {
			n += rt.Workers()
		}
	}
	return n
}

// Runtime returns shard i's runtime (nil for an empty slot), for tests and
// per-shard introspection.
func (r *Router) Runtime(i int) *sig.Runtime { return r.shards[i].Load() }

// Group is one logical task group spanning every shard. It satisfies
// adapt.Target, so a single controller can own the merged ratio.
type Group struct {
	r     *Router
	name  string
	ratio atomic.Uint64             // math.Float64bits of the global commanded ratio
	parts []atomic.Pointer[partRef] // slot-indexed; nil = empty slot
	// trim is each shard's boost above the global ratio (float bits),
	// updated by the trim controllers at wave boundaries and read by
	// applyRatio — atomics so SetRatio (from an OnWave observer) never
	// races the boundary update.
	trim []atomic.Uint64
	// added tracks the modeled cost this group routed to each shard since
	// its last wave boundary, so the boundary can retire it from the
	// shard's placement load.
	added []atomic.Int64

	// retiredMu guards retired and serializes part retirement (AddShard)
	// with the cumulative readers, so counters move from a part into
	// retired atomically — no snapshot ever misses or double-counts a
	// retired incarnation.
	retiredMu sync.Mutex
	retired   sig.GroupStats

	// waveMu serializes Wait/WaitPhase merging on this group, like the
	// per-group phase lock of a single runtime.
	waveMu sync.Mutex
	wave   int
	// lateWave holds, per slot, the pending result channel of a wave cut
	// that overran WaveTimeout; a later merged wave folds it in when it
	// arrives. Guarded by waveMu.
	lateWave []chan sig.WaveStats
}

// Name returns the group's label.
func (g *Group) Name() string { return g.name }

// Ratio returns the global commanded accurate ratio.
func (g *Group) Ratio() float64 { return math.Float64frombits(g.ratio.Load()) }

// SetRatio retargets the global ratio and fans it out to every shard,
// boosted by the shard's current trim. It is the knob a global admission
// controller drives (adapt.Target).
func (g *Group) SetRatio(ratio float64) {
	g.ratio.Store(math.Float64bits(clamp01(ratio)))
	g.applyRatio()
}

// applyRatio pushes ratio+trim to every physical group.
func (g *Group) applyRatio() {
	ratio := g.Ratio()
	for i := range g.parts {
		if ref := g.parts[i].Load(); ref != nil {
			ref.p.SetRatio(math.Min(1, ratio+math.Float64frombits(g.trim[i].Load())))
		}
	}
}

// Trim returns shard i's current boost above the global ratio.
func (g *Group) Trim(i int) float64 { return math.Float64frombits(g.trim[i].Load()) }

// Part returns the physical group on shard i (nil for an empty slot), for
// tests and per-shard introspection.
func (g *Group) Part(i int) *sig.Group {
	if ref := g.parts[i].Load(); ref != nil {
		return ref.p
	}
	return nil
}

// retire folds the outgoing incarnation's counters into the group's
// retirement account and empties the slot. Called under r.mu (AddShard)
// with the old runtime closed, so the snapshot is frozen and final.
func (g *Group) retire(i int) {
	g.retiredMu.Lock()
	defer g.retiredMu.Unlock()
	ref := g.parts[i].Load()
	if ref == nil {
		return
	}
	gs := ref.p.Stats()
	g.retired.Submitted += gs.Submitted
	g.retired.Accurate += gs.Accurate
	g.retired.Approximate += gs.Approximate
	g.retired.Dropped += gs.Dropped
	g.retired.InBytes += gs.InBytes
	g.retired.OutBytes += gs.OutBytes
	g.retired.Decisions = append(g.retired.Decisions, gs.Decisions...)
	g.parts[i].Store(nil)
}

// Group returns the logical group with the given name, creating it (on
// every shard) on first use, and sets its global ratio. Like
// sig.Runtime.Group it is an idempotent get-or-create.
func (r *Router) Group(name string, ratio float64) *Group {
	g, existed := r.getOrCreateGroup(name, ratio)
	if existed {
		g.SetRatio(ratio)
	}
	return g
}

func (r *Router) getOrCreateGroup(name string, ratio float64) (*Group, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.groups[name]; ok {
		return g, true
	}
	n := len(r.shards)
	g := &Group{
		r:        r,
		name:     name,
		parts:    make([]atomic.Pointer[partRef], n),
		trim:     make([]atomic.Uint64, n),
		added:    make([]atomic.Int64, n),
		lateWave: make([]chan sig.WaveStats, n),
	}
	g.ratio.Store(math.Float64bits(clamp01(ratio)))
	g.retired.Name = name
	for i := range r.shards {
		if rt := r.shards[i].Load(); rt != nil {
			g.parts[i].Store(&partRef{rt: rt, p: rt.Group(name, ratio)})
		}
	}
	r.groups[name] = g
	r.order = append(r.order, g)
	if name == "" {
		r.def.Store(g)
	}
	return g, false
}

// defaultGroup resolves nil-group submissions and taskwaits. Like
// sig.Runtime's, it is created with ratio 1.0 on first use but never
// overrides a ratio the caller set via r.Group("", r), and repeat lookups
// stay off r.mu.
func (r *Router) defaultGroup() *Group {
	if g := r.def.Load(); g != nil {
		return g
	}
	g, _ := r.getOrCreateGroup("", 1.0)
	return g
}

func clamp01(x float64) float64 {
	switch {
	case x < 0 || math.IsNaN(x):
		return 0
	case x > 1:
		return 1
	}
	return x
}

// placementCost is the modeled cost a spec contributes to placement load.
func (r *Router) placementCost(spec *sig.TaskSpec) float64 {
	if spec.HasCost && spec.CostAccurate > 0 {
		return spec.CostAccurate
	}
	return r.cfg.DefaultCost
}

// account charges a placed spec's modeled cost to the shard's placement
// load, and to the group's per-shard tally so the next wave boundary can
// retire it. It runs at placement time — before the shard's sub-batch is
// even formed — so least-load placement sees the load of earlier specs in
// the same batch.
func (r *Router) account(g *Group, i int, cost int64) {
	r.state[i].load.Add(cost)
	g.added[i].Add(cost)
}

// routable reports whether slot j accepts new work: not drained and not
// quarantined.
func (r *Router) routable(j int) bool {
	st := &r.state[j]
	return !st.down.Load() && !st.quarantined.Load()
}

// place picks a shard for one spec. It only *proposes*: route() re-checks
// routability under the in-flight counter.
func (r *Router) place(spec *sig.TaskSpec) int {
	n := len(r.shards)
	if n == 1 {
		return 0
	}
	switch r.cfg.Placement {
	case PlaceLeastLoad:
		best, bestLoad := -1, int64(math.MaxInt64)
		for i := range r.state {
			if !r.routable(i) {
				continue
			}
			if l := r.state[i].load.Load(); l < bestLoad {
				best, bestLoad = i, l
			}
		}
		if best >= 0 {
			return best
		}
		return 0
	case PlaceCostAffinity:
		// The binary exponent buckets costs into classes: tasks within 2x
		// of each other share a shard (and therefore its slab pools). The
		// class→slot map is over fixed slot capacity, so a drained slot's
		// classes come home when the slot rejoins.
		class := math.Ilogb(r.placementCost(spec))
		if class < 0 {
			class = 0
		}
		return r.liveFrom(class % n)
	}
	return r.liveFrom(int(r.rr.Add(1)-1) % n)
}

// liveFrom returns the first routable shard at or after i (wrapping); i
// itself when every shard is unroutable (route will reject it).
func (r *Router) liveFrom(i int) int {
	n := len(r.shards)
	for probe := 0; probe < n; probe++ {
		j := (i + probe) % n
		if r.routable(j) {
			return j
		}
	}
	return i % n
}

// route acquires a submit slot on a routable shard at or after the proposed
// index: it publishes the in-flight count first and re-checks, so a
// concurrent DrainShard either sees the count and waits for the submission
// to land, or already turned the shard away before it was picked.
func (r *Router) route(i int) (int, bool) {
	n := len(r.shards)
	for probe := 0; probe < n; probe++ {
		j := (i + probe) % n
		s := &r.state[j]
		s.inflight.Add(1)
		if r.routable(j) {
			return j, true
		}
		s.inflight.Add(-1)
	}
	return 0, false
}

// Submit schedules one task on a shard picked by the placement policy.
// Like sig.Runtime.Submit it panics on a nil body or a closed router.
func (r *Router) Submit(g *Group, spec sig.TaskSpec) {
	if spec.Fn == nil {
		panic("sig: Submit with nil task body")
	}
	if g == nil {
		g = r.defaultGroup()
	}
	i, ok := r.route(r.place(&spec))
	if !ok {
		panic("shard: Submit with every shard drained")
	}
	defer r.state[i].inflight.Add(-1)
	r.account(g, i, int64(r.placementCost(&spec)))
	ref := g.parts[i].Load()
	one := [1]sig.TaskSpec{spec}
	ref.rt.SubmitBatch(ref.p, one[:])
}

// SubmitBatch scatters the batch across shards by the placement policy and
// submits one sub-batch per shard, preserving relative order within each
// shard. Semantically a loop of Submit calls.
func (r *Router) SubmitBatch(g *Group, specs []sig.TaskSpec) {
	if len(specs) == 0 {
		return
	}
	if g == nil {
		g = r.defaultGroup()
	}
	// Validate every body before routing anything, like the runtime's own
	// SubmitBatch: a nil-body panic must not fire with an in-flight slot
	// held or a partial batch dispatched.
	for k := range specs {
		if specs[k].Fn == nil {
			panic("sig: SubmitBatch with nil task body")
		}
	}
	n := len(r.shards)
	if n == 1 {
		i, ok := r.route(0)
		if !ok {
			panic("shard: Submit with every shard drained")
		}
		defer r.state[i].inflight.Add(-1)
		for k := range specs {
			r.account(g, i, int64(r.placementCost(&specs[k])))
		}
		ref := g.parts[i].Load()
		ref.rt.SubmitBatch(ref.p, specs)
		return
	}
	buckets := make([][]sig.TaskSpec, n)
	cost := make([]int64, n)
	for k := range specs {
		b := r.place(&specs[k])
		// Charge placement load as each spec is placed, so least-load
		// balancing works within one batch, not only across batches.
		c := int64(r.placementCost(&specs[k]))
		r.account(g, b, c)
		cost[b] += c
		buckets[b] = append(buckets[b], specs[k])
	}
	for b, sub := range buckets {
		if len(sub) == 0 {
			continue
		}
		r.submitBucket(g, b, sub, cost[b])
	}
}

// submitBucket routes one placed sub-batch and submits it, releasing the
// in-flight slot even if the shard's SubmitBatch panics (a leaked slot
// would wedge a later DrainShard forever).
func (r *Router) submitBucket(g *Group, b int, sub []sig.TaskSpec, cost int64) {
	i, ok := r.route(b)
	if !ok {
		panic("shard: Submit with every shard drained")
	}
	defer r.state[i].inflight.Add(-1)
	if i != b {
		// The proposed shard was drained between placement and routing:
		// move the sub-batch's load charge to the shard that actually
		// runs it, so least-load keeps seeing the truth.
		r.state[b].load.Add(-cost)
		g.added[b].Add(-cost)
		r.state[i].load.Add(cost)
		g.added[i].Add(cost)
	}
	ref := g.parts[i].Load()
	ref.rt.SubmitBatch(ref.p, sub)
}

// mergeWave folds one shard's wave cut into the merge.
func mergeWave(merged *sig.WaveStats, busy *time.Duration, ws sig.WaveStats) {
	merged.Submitted += ws.Submitted
	merged.Accurate += ws.Accurate
	merged.Approximate += ws.Approximate
	merged.Dropped += ws.Dropped
	*busy += ws.Busy
}

// WaitPhase drains the logical group on every shard (in slot order) and
// returns the merged wave telemetry. Counts are summed; the merged busy
// time is the exact integer sum of the shards' busy nanoseconds, and the
// merged joules are computed from that sum in one multiplication — so the
// energy account is bit-identical to a single runtime running the same
// bodies, and additivity survives any shard count (invariant-tested).
// After the merge the per-shard trim controllers absorb each shard's
// provided-ratio lag, then the Router's OnWave observer (if any) sees the
// merged wave and may retune the global ratio for the next one.
//
// With Config.WaveTimeout set, a shard that overruns its wave cut is
// skipped this wave (watchdog): its pending result folds into a later
// merged wave when it finally arrives, and the miss is a health strike.
func (r *Router) WaitPhase(g *Group) sig.WaveStats {
	if g == nil {
		g = r.defaultGroup()
	}
	g.waveMu.Lock()
	merged := sig.WaveStats{Wave: g.wave}
	var busy time.Duration
	lags := make([]float64, len(g.parts))
	for i := range g.parts {
		if ch := g.lateWave[i]; ch != nil {
			// A previous wave's cut is still outstanding on this slot; a
			// fresh cut would queue behind the wedge. Merge the late
			// result if it arrived, strike again if not.
			select {
			case ws := <-ch:
				g.lateWave[i] = nil
				mergeWave(&merged, &busy, ws)
				r.state[i].load.Add(-g.added[i].Swap(0))
				r.waveOK(i)
			default:
				r.strike(i)
			}
			continue
		}
		ref := g.parts[i].Load()
		if ref == nil {
			continue
		}
		want := ref.p.Ratio() // ratio+trim this shard was asked for
		ws, late := r.waitSlot(ref)
		if late != nil {
			g.lateWave[i] = late
			r.strike(i)
			continue
		}
		mergeWave(&merged, &busy, ws)
		if ws.Decided() > 0 {
			lags[i] = want - ws.ProvidedRatio
		}
		r.state[i].load.Add(-g.added[i].Swap(0))
		r.probe(i)
	}
	merged.Busy = busy
	merged.Joules = r.watts * busy.Seconds()
	merged.RequestedRatio = g.Ratio()
	if d := merged.Decided(); d > 0 {
		merged.ProvidedRatio = float64(merged.Accurate) / float64(d)
	} else {
		merged.ProvidedRatio = merged.RequestedRatio
	}
	g.wave++
	// Per-shard trim update: integrate each shard's lag, clamped to
	// [0, TrimMax] — a lagging shard is boosted above the global command,
	// never shed below it, so the hierarchical knob cannot undercut the
	// ratio floor the caller asked for. Pure arithmetic on wave telemetry:
	// deterministic, replayable.
	if r.cfg.TrimGain > 0 {
		for i := range g.trim {
			t := math.Float64frombits(g.trim[i].Load()) + r.cfg.TrimGain*lags[i]
			t = math.Max(0, math.Min(r.cfg.TrimMax, t))
			g.trim[i].Store(math.Float64bits(t))
		}
	}
	g.applyRatio()
	g.waveMu.Unlock()
	if r.cfg.OnWave != nil {
		r.cfg.OnWave(g, merged)
	}
	return merged
}

// waitSlot cuts one shard's wave. Without a WaveTimeout it is a direct
// synchronous call (today's bit-identical path, no goroutine). With one, it
// bounds the wait: on timeout it returns the pending result channel so the
// caller can fold the cut into a later wave.
func (r *Router) waitSlot(ref *partRef) (sig.WaveStats, chan sig.WaveStats) {
	if r.cfg.WaveTimeout <= 0 {
		return ref.rt.WaitPhase(ref.p), nil
	}
	ch := make(chan sig.WaveStats, 1)
	go func() { ch <- ref.rt.WaitPhase(ref.p) }()
	timer := time.NewTimer(r.cfg.WaveTimeout)
	select {
	case ws := <-ch:
		timer.Stop()
		return ws, nil
	case <-timer.C:
		return sig.WaveStats{}, ch
	}
}

// Wait drains the logical group on every shard and returns the cumulative
// provided ratio of the merge, like sig.Runtime.Wait.
func (r *Router) Wait(g *Group) float64 {
	if g == nil {
		g = r.defaultGroup()
	}
	r.WaitPhase(g)
	return g.providedRatio()
}

// providedRatio is the merged cumulative accurate fraction — retired
// incarnations included — from the shards' counters alone; no decision-log
// copying on the wave path.
func (g *Group) providedRatio() float64 {
	g.retiredMu.Lock()
	acc := g.retired.Accurate
	decided := g.retired.Accurate + g.retired.Approximate + g.retired.Dropped
	for i := range g.parts {
		if ref := g.parts[i].Load(); ref != nil {
			_, a, ap, d := ref.p.Counts()
			acc += a
			decided += a + ap + d
		}
	}
	g.retiredMu.Unlock()
	if decided == 0 {
		return g.Ratio()
	}
	return float64(acc) / float64(decided)
}

// WaitAll waits on every logical group ever created on the router.
func (r *Router) WaitAll() {
	r.mu.Lock()
	groups := append([]*Group(nil), r.order...)
	r.mu.Unlock()
	for _, g := range groups {
		r.WaitPhase(g)
	}
}

// Stats returns the logical group's merged accounting: counters summed
// across shards — retired incarnations included — the requested ratio being
// the global command.
func (g *Group) Stats() sig.GroupStats {
	g.retiredMu.Lock()
	defer g.retiredMu.Unlock()
	merged := sig.GroupStats{Name: g.name, RequestedRatio: g.Ratio()}
	merged.Submitted = g.retired.Submitted
	merged.Accurate = g.retired.Accurate
	merged.Approximate = g.retired.Approximate
	merged.Dropped = g.retired.Dropped
	merged.InBytes = g.retired.InBytes
	merged.OutBytes = g.retired.OutBytes
	merged.Decisions = append(merged.Decisions, g.retired.Decisions...)
	for i := range g.parts {
		ref := g.parts[i].Load()
		if ref == nil {
			continue
		}
		gs := ref.p.Stats()
		merged.Submitted += gs.Submitted
		merged.Accurate += gs.Accurate
		merged.Approximate += gs.Approximate
		merged.Dropped += gs.Dropped
		merged.InBytes += gs.InBytes
		merged.OutBytes += gs.OutBytes
		merged.Decisions = append(merged.Decisions, gs.Decisions...)
	}
	if total := merged.Accurate + merged.Approximate + merged.Dropped; total > 0 {
		merged.ProvidedRatio = float64(merged.Accurate) / float64(total)
	} else {
		merged.ProvidedRatio = merged.RequestedRatio
	}
	return merged
}

// Stats merges the per-shard accounting into one runtime-shaped snapshot:
// one GroupStats per logical group, counters summed across shards.
func (r *Router) Stats() sig.Stats {
	r.mu.Lock()
	groups := append([]*Group(nil), r.order...)
	r.mu.Unlock()
	st := sig.Stats{}
	for _, g := range groups {
		gs := g.Stats()
		st.Groups = append(st.Groups, gs)
		st.Submitted += gs.Submitted
		st.Accurate += gs.Accurate
		st.Approximate += gs.Approximate
		st.Dropped += gs.Dropped
	}
	return st
}

// ShardStats returns each slot's own Stats snapshot, indexed by slot (zero
// value for empty slots). Retired incarnations are not included — they live
// in the merged Group/Router views.
func (r *Router) ShardStats() []sig.Stats {
	out := make([]sig.Stats, len(r.shards))
	for i := range r.shards {
		if rt := r.shards[i].Load(); rt != nil {
			out[i] = rt.Stats()
		}
	}
	return out
}

// Energy returns the merged modeled energy report: busy time is the exact
// integer sum of the shards' busy nanoseconds — current incarnations plus
// the retirement account of shards whose slot was reused — and the joules
// are computed from that sum, bit-identical to a single runtime that
// executed the same bodies. Wall is the slowest shard's wall clock; Workers
// the total started, past incarnations included.
func (r *Router) Energy() sig.Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	busy, wall, workers := r.retired.busy, r.retired.wall, r.retired.workers
	for i := range r.shards {
		rt := r.shards[i].Load()
		if rt == nil {
			continue
		}
		rep := rt.Energy()
		busy += rep.Busy
		if rep.Wall > wall {
			wall = rep.Wall
		}
		workers += rep.Workers
	}
	return sig.Report{
		Joules:      r.watts * busy.Seconds(),
		Wall:        wall,
		Busy:        busy,
		Workers:     workers,
		ActiveWatts: r.watts,
		IdleWatts:   r.idle,
	}
}

// ShardEnergy returns each slot's own energy report, indexed by slot (zero
// value for empty slots; retired incarnations excluded, as in ShardStats).
func (r *Router) ShardEnergy() []sig.Report {
	out := make([]sig.Report, len(r.shards))
	for i := range r.shards {
		if rt := r.shards[i].Load(); rt != nil {
			out[i] = rt.Energy()
		}
	}
	return out
}

// Panics sums the task-body panics absorbed across the fleet (see
// sig.Config.RecoverPanics), past incarnations included.
func (r *Router) Panics() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.retired.panics
	for i := range r.shards {
		if rt := r.shards[i].Load(); rt != nil {
			n += rt.Panics()
		}
	}
	return n
}

// routableLocked counts routable shards; r.mu must be held.
func (r *Router) routableLocked() int {
	n := 0
	for j := range r.state {
		if r.routable(j) {
			n++
		}
	}
	return n
}

// DrainShard removes shard i from the fleet at runtime: it marks the shard
// unroutable, waits out submissions that already picked it, then closes its
// runtime — which drains every task the shard had queued or buffered.
// Completed work stays in every merged Stats/Energy view (a closed
// sig.Runtime's reports are frozen, not gone), so draining mid-wave loses
// and double-counts nothing. Draining the last routable shard is refused
// with ErrLastShard; a drained slot can rejoin via AddShard. Idempotent per
// shard.
func (r *Router) DrainShard(i int) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("shard: DrainShard(%d) out of range [0,%d)", i, len(r.shards))
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("shard: DrainShard(%d): %w", i, ErrRouterClosed)
	}
	st := &r.state[i]
	if st.down.Load() {
		r.mu.Unlock()
		return nil
	}
	routable := r.routableLocked()
	if r.routable(i) {
		routable--
	}
	if routable < 1 {
		r.mu.Unlock()
		return fmt.Errorf("shard: cannot drain shard %d: %w", i, ErrLastShard)
	}
	st.draining.Store(true)
	st.down.Store(true)
	st.health.Store(int32(HealthDrained))
	r.mu.Unlock()
	// Wait out router submissions that picked this shard before down
	// flipped; afterwards nothing new can reach it. Same yield-then-sleep
	// discipline as sig.Runtime.Close.
	for spin := 0; st.inflight.Load() != 0; spin++ {
		if spin < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
	err := r.shards[i].Load().Close()
	st.draining.Store(false)
	return err
}

// AddShard rejoins a fresh sig.Runtime into the lowest free slot and
// returns its index. The outgoing incarnation of a reused slot (already
// drained, so its report is frozen) moves into the retirement account —
// exact integer busy nanoseconds — which keeps the merged energy
// bit-identity contract: the joining runtime starts with a zero busy clock,
// so merged joules stay one multiplication over an exact integer sum.
// Placement state is re-seeded for the new shard: zero placement load (so
// least-load favors it immediately), zero trim, and its fixed cost-affinity
// classes come home. Returns ErrFleetFull with every slot routable,
// ErrShardDraining while the only free slots still have a drain in flight,
// ErrRouterClosed after Close.
func (r *Router) AddShard() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return -1, fmt.Errorf("shard: AddShard: %w", ErrRouterClosed)
	}
	slot, draining := -1, false
	for j := range r.state {
		if !r.state[j].down.Load() {
			continue
		}
		if r.state[j].draining.Load() {
			draining = true
			continue
		}
		slot = j
		break
	}
	if slot < 0 {
		if draining {
			return -1, fmt.Errorf("shard: AddShard: %w", ErrShardDraining)
		}
		return -1, fmt.Errorf("shard: AddShard: %w", ErrFleetFull)
	}
	rt, err := sig.New(r.cfg.Runtime)
	if err != nil {
		return -1, err
	}
	if old := r.shards[slot].Load(); old != nil {
		rep := old.Energy()
		r.retired.busy += rep.Busy
		if rep.Wall > r.retired.wall {
			r.retired.wall = rep.Wall
		}
		r.retired.workers += rep.Workers
		r.retired.panics += old.Panics()
		for _, g := range r.order {
			g.retire(slot)
		}
	}
	st := &r.state[slot]
	for _, g := range r.order {
		g.trim[slot].Store(0)
		g.added[slot].Store(0)
		g.parts[slot].Store(&partRef{rt: rt, p: rt.Group(g.name, g.Ratio())})
	}
	st.load.Store(0)
	st.strikes.Store(0)
	st.autoDrain.Store(false)
	st.quarantined.Store(false)
	st.health.Store(int32(HealthLive))
	r.shards[slot].Store(rt)
	// Publish routability last: a submitter that observes down == false is
	// ordered after every store above (atomics are seq-cst), so it can only
	// see the fully assembled new incarnation.
	st.down.Store(false)
	return slot, nil
}

// Live returns the number of shards whose runtime is open (quarantined
// shards included — they hold in-flight work even though they refuse new).
func (r *Router) Live() int {
	live := 0
	for i := range r.state {
		if !r.state[i].down.Load() {
			live++
		}
	}
	return live
}

// Routable returns the number of shards accepting new work.
func (r *Router) Routable() int {
	n := 0
	for j := range r.state {
		if r.routable(j) {
			n++
		}
	}
	return n
}

// Close drains every logical group and closes every shard (drained shards
// are already closed; sig.Close is idempotent). Merged Energy and Stats
// stay valid — and Energy stable — afterwards, like a single runtime's.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	var errs []error
	for i := range r.shards {
		if rt := r.shards[i].Load(); rt != nil {
			errs = append(errs, rt.Close())
		}
	}
	return errors.Join(errs...)
}

// Package shard scales the significance-aware runtime past one scheduler
// domain: a Router owns N independent sig.Runtime shards (one per NUMA-ish
// resource slice) behind the familiar single-runtime surface — Submit /
// SubmitBatch, named groups, Wait / WaitPhase, Stats / Energy, Close — and
// places each task on a shard by a pluggable placement policy.
//
// A Group created on the Router is one *logical* group backed by one
// physical sig.Group per shard. The ratio knob is hierarchical, as a global
// admission controller wants it: SetRatio commands a single global ratio,
// and the Router layers a small per-shard trim controller on top — a shard
// whose provided ratio lagged the command in the last wave is boosted (never
// shed below the command), so the merged provided ratio tracks the global
// knob even when placement skews significance across shards. WaitPhase
// drains every shard and returns one merged WaveStats; the modeled joules of
// the merge are computed from the exact integer sum of the shards' busy
// nanoseconds — not by adding per-shard float joules — so the merged energy
// account is bit-identical to a single runtime executing the same bodies,
// and replays are bit-identical at any shard count.
//
// Shards can leave the fleet at runtime: DrainShard marks a shard
// unroutable, waits out in-flight submissions (the same striped-counter
// discipline sig.Runtime.Close uses), closes its runtime — which drains its
// queued tasks — and leaves its counters and frozen energy report inside
// every merge. Nothing is lost or double-counted; the chaos suite
// (chaos_test.go) holds the Router to that.
package shard

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/sig"
)

// PlacementKind selects how the Router maps tasks onto shards.
type PlacementKind int

const (
	// PlaceRoundRobin stripes tasks across live shards in submission
	// order: the bin-packing-free baseline, perfectly balanced for
	// homogeneous streams.
	PlaceRoundRobin PlacementKind = iota
	// PlaceLeastLoad places each task on the shard with the least
	// outstanding modeled cost (declared costs, or Config.DefaultCost for
	// undeclared tasks) — first-fit-decreasing-flavored balancing for
	// heterogeneous costs.
	PlaceLeastLoad
	// PlaceCostAffinity places tasks of the same cost class (binary
	// exponent of the declared accurate cost) on the same shard, so a
	// backend's equal-sized requests keep hitting the same slab pools and
	// policy windows.
	PlaceCostAffinity
)

func (k PlacementKind) valid() bool {
	return k >= PlaceRoundRobin && k <= PlaceCostAffinity
}

func (k PlacementKind) String() string {
	switch k {
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceLeastLoad:
		return "least-load"
	case PlaceCostAffinity:
		return "cost-affinity"
	}
	return fmt.Sprintf("PlacementKind(%d)", int(k))
}

// Defaults for Config's zero fields.
const (
	// DefaultTrimGain is the per-shard trim controller's integrator gain
	// on last wave's provided-ratio lag.
	DefaultTrimGain = 0.5
	// DefaultTrimMax bounds the per-shard boost above the global ratio.
	DefaultTrimMax = 0.2
	// DefaultPlacementCost is the load estimate for tasks that declare no
	// cost (same scale as serve.DefaultRequestCost: ~100µs nominal).
	DefaultPlacementCost = 100_000
)

// Config parameterizes a Router.
type Config struct {
	// Shards is the number of sig.Runtime shards (0 means 1).
	Shards int
	// Placement selects the placement policy (default PlaceRoundRobin).
	Placement PlacementKind
	// Runtime configures every shard identically: Workers is the
	// *per-shard* worker pool (0 = GOMAXPROCS per shard). Its Observer
	// must be nil — per-wave observation belongs to the Router, which
	// merges the shards' waves and delivers them through OnWave.
	Runtime sig.Config
	// OnWave, when non-nil, receives the merged WaveStats of every
	// logical group at each Wait/WaitPhase boundary, after all shards
	// drained — the seam a global admission controller (adapt.TargetLoad
	// via Controller.Observe) attaches to. It runs on the waiter's
	// goroutine and may retune the group via Group.SetRatio.
	OnWave func(g *Group, ws sig.WaveStats)
	// TrimGain and TrimMax tune the per-shard trim controllers; zero
	// fields take DefaultTrimGain/DefaultTrimMax. A negative TrimGain
	// disables trimming (every shard runs exactly the global ratio).
	TrimGain float64
	TrimMax  float64
	// DefaultCost is the placement-load estimate for tasks without
	// declared costs (default DefaultPlacementCost).
	DefaultCost float64
}

// shardState is the Router's per-shard routing state, padded so the hot
// submit path never false-shares between shards.
type shardState struct {
	// inflight counts router submissions that picked this shard and may
	// not have reached its runtime yet; DrainShard flips down first and
	// then waits for inflight to drain, mirroring sig.Runtime.Close.
	inflight atomic.Int64
	// down marks the shard unroutable (DrainShard).
	down atomic.Bool
	// load is the outstanding modeled cost routed to the shard and not
	// yet retired by a wave boundary (least-load placement).
	load atomic.Int64
	_    [39]byte
}

// Router multiplexes the single-runtime surface over N shards. Create one
// with New, create logical groups with Group, submit with Submit or
// SubmitBatch, synchronize with Wait or WaitPhase, and release every shard
// with Close.
type Router struct {
	cfg    Config
	shards []*sig.Runtime
	state  []shardState
	watts  float64

	mu     sync.Mutex // guards groups/order/closed; never on the submit path
	groups map[string]*Group
	order  []*Group
	closed bool

	def atomic.Pointer[Group] // cached default group, off r.mu on submit
	rr  atomic.Uint64         // round-robin cursor
}

// New builds a Router and starts its shards.
func New(cfg Config) (*Router, error) {
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("shard: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if !cfg.Placement.valid() {
		return nil, fmt.Errorf("shard: unknown placement kind %d", cfg.Placement)
	}
	if cfg.Runtime.Observer != nil {
		return nil, fmt.Errorf("shard: per-shard Observer must be nil; merged waves are delivered through Config.OnWave")
	}
	if cfg.TrimGain == 0 {
		cfg.TrimGain = DefaultTrimGain
	}
	if cfg.TrimMax == 0 {
		cfg.TrimMax = DefaultTrimMax
	}
	if cfg.DefaultCost <= 0 {
		cfg.DefaultCost = DefaultPlacementCost
	}
	r := &Router{
		cfg:    cfg,
		shards: make([]*sig.Runtime, cfg.Shards),
		state:  make([]shardState, cfg.Shards),
		groups: make(map[string]*Group),
	}
	for i := range r.shards {
		rt, err := sig.New(cfg.Runtime)
		if err != nil {
			for _, prev := range r.shards[:i] {
				prev.Close()
			}
			return nil, err
		}
		r.shards[i] = rt
	}
	r.watts = r.shards[0].Energy().ActiveWatts
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// Workers returns the total worker count across shards.
func (r *Router) Workers() int {
	n := 0
	for _, rt := range r.shards {
		n += rt.Workers()
	}
	return n
}

// Runtime returns shard i's runtime, for tests and per-shard introspection.
func (r *Router) Runtime(i int) *sig.Runtime { return r.shards[i] }

// Group is one logical task group spanning every shard. It satisfies
// adapt.Target, so a single controller can own the merged ratio.
type Group struct {
	r     *Router
	name  string
	ratio atomic.Uint64 // math.Float64bits of the global commanded ratio
	parts []*sig.Group  // one physical group per shard
	// trim is each shard's boost above the global ratio (float bits),
	// updated by the trim controllers at wave boundaries and read by
	// applyRatio — atomics so SetRatio (from an OnWave observer) never
	// races the boundary update.
	trim []atomic.Uint64
	// added tracks the modeled cost this group routed to each shard since
	// its last wave boundary, so the boundary can retire it from the
	// shard's placement load.
	added []atomic.Int64

	// waveMu serializes Wait/WaitPhase merging on this group, like the
	// per-group phase lock of a single runtime.
	waveMu sync.Mutex
	wave   int
}

// Name returns the group's label.
func (g *Group) Name() string { return g.name }

// Ratio returns the global commanded accurate ratio.
func (g *Group) Ratio() float64 { return math.Float64frombits(g.ratio.Load()) }

// SetRatio retargets the global ratio and fans it out to every shard,
// boosted by the shard's current trim. It is the knob a global admission
// controller drives (adapt.Target).
func (g *Group) SetRatio(ratio float64) {
	g.ratio.Store(math.Float64bits(clamp01(ratio)))
	g.applyRatio()
}

// applyRatio pushes ratio+trim to every physical group.
func (g *Group) applyRatio() {
	ratio := g.Ratio()
	for i, p := range g.parts {
		p.SetRatio(math.Min(1, ratio+math.Float64frombits(g.trim[i].Load())))
	}
}

// Trim returns shard i's current boost above the global ratio.
func (g *Group) Trim(i int) float64 { return math.Float64frombits(g.trim[i].Load()) }

// Part returns the physical group on shard i, for tests and per-shard
// introspection.
func (g *Group) Part(i int) *sig.Group { return g.parts[i] }

// Group returns the logical group with the given name, creating it (on
// every shard) on first use, and sets its global ratio. Like
// sig.Runtime.Group it is an idempotent get-or-create.
func (r *Router) Group(name string, ratio float64) *Group {
	g, existed := r.getOrCreateGroup(name, ratio)
	if existed {
		g.SetRatio(ratio)
	}
	return g
}

func (r *Router) getOrCreateGroup(name string, ratio float64) (*Group, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.groups[name]; ok {
		return g, true
	}
	g := &Group{
		r:     r,
		name:  name,
		parts: make([]*sig.Group, len(r.shards)),
		trim:  make([]atomic.Uint64, len(r.shards)),
		added: make([]atomic.Int64, len(r.shards)),
	}
	g.ratio.Store(math.Float64bits(clamp01(ratio)))
	for i, rt := range r.shards {
		g.parts[i] = rt.Group(name, ratio)
	}
	r.groups[name] = g
	r.order = append(r.order, g)
	if name == "" {
		r.def.Store(g)
	}
	return g, false
}

// defaultGroup resolves nil-group submissions and taskwaits. Like
// sig.Runtime's, it is created with ratio 1.0 on first use but never
// overrides a ratio the caller set via r.Group("", r), and repeat lookups
// stay off r.mu.
func (r *Router) defaultGroup() *Group {
	if g := r.def.Load(); g != nil {
		return g
	}
	g, _ := r.getOrCreateGroup("", 1.0)
	return g
}

func clamp01(x float64) float64 {
	switch {
	case x < 0 || math.IsNaN(x):
		return 0
	case x > 1:
		return 1
	}
	return x
}

// placementCost is the modeled cost a spec contributes to placement load.
func (r *Router) placementCost(spec *sig.TaskSpec) float64 {
	if spec.HasCost && spec.CostAccurate > 0 {
		return spec.CostAccurate
	}
	return r.cfg.DefaultCost
}

// account charges a placed spec's modeled cost to the shard's placement
// load, and to the group's per-shard tally so the next wave boundary can
// retire it. It runs at placement time — before the shard's sub-batch is
// even formed — so least-load placement sees the load of earlier specs in
// the same batch.
func (r *Router) account(g *Group, i int, cost int64) {
	r.state[i].load.Add(cost)
	g.added[i].Add(cost)
}

// place picks a shard for one spec. It only *proposes*: route() re-checks
// liveness under the in-flight counter.
func (r *Router) place(spec *sig.TaskSpec) int {
	n := len(r.shards)
	if n == 1 {
		return 0
	}
	switch r.cfg.Placement {
	case PlaceLeastLoad:
		best, bestLoad := -1, int64(math.MaxInt64)
		for i := range r.state {
			if r.state[i].down.Load() {
				continue
			}
			if l := r.state[i].load.Load(); l < bestLoad {
				best, bestLoad = i, l
			}
		}
		if best >= 0 {
			return best
		}
		return 0
	case PlaceCostAffinity:
		// The binary exponent buckets costs into classes: tasks within 2x
		// of each other share a shard (and therefore its slab pools).
		class := math.Ilogb(r.placementCost(spec))
		if class < 0 {
			class = 0
		}
		return r.liveFrom(class % n)
	}
	return r.liveFrom(int(r.rr.Add(1)-1) % n)
}

// liveFrom returns the first non-down shard at or after i (wrapping); i
// itself when every shard is down (route will reject it).
func (r *Router) liveFrom(i int) int {
	n := len(r.shards)
	for probe := 0; probe < n; probe++ {
		j := (i + probe) % n
		if !r.state[j].down.Load() {
			return j
		}
	}
	return i % n
}

// route acquires a submit slot on a live shard at or after the proposed
// index: it publishes the in-flight count first and re-checks down, so a
// concurrent DrainShard either sees the count and waits for the submission
// to land, or already turned the shard away before it was picked.
func (r *Router) route(i int) (int, bool) {
	n := len(r.shards)
	for probe := 0; probe < n; probe++ {
		j := (i + probe) % n
		s := &r.state[j]
		s.inflight.Add(1)
		if !s.down.Load() {
			return j, true
		}
		s.inflight.Add(-1)
	}
	return 0, false
}

// Submit schedules one task on a shard picked by the placement policy.
// Like sig.Runtime.Submit it panics on a nil body or a closed router.
func (r *Router) Submit(g *Group, spec sig.TaskSpec) {
	if spec.Fn == nil {
		panic("sig: Submit with nil task body")
	}
	if g == nil {
		g = r.defaultGroup()
	}
	i, ok := r.route(r.place(&spec))
	if !ok {
		panic("shard: Submit with every shard drained")
	}
	defer r.state[i].inflight.Add(-1)
	r.account(g, i, int64(r.placementCost(&spec)))
	one := [1]sig.TaskSpec{spec}
	r.shards[i].SubmitBatch(g.parts[i], one[:])
}

// SubmitBatch scatters the batch across shards by the placement policy and
// submits one sub-batch per shard, preserving relative order within each
// shard. Semantically a loop of Submit calls.
func (r *Router) SubmitBatch(g *Group, specs []sig.TaskSpec) {
	if len(specs) == 0 {
		return
	}
	if g == nil {
		g = r.defaultGroup()
	}
	// Validate every body before routing anything, like the runtime's own
	// SubmitBatch: a nil-body panic must not fire with an in-flight slot
	// held or a partial batch dispatched.
	for k := range specs {
		if specs[k].Fn == nil {
			panic("sig: SubmitBatch with nil task body")
		}
	}
	n := len(r.shards)
	if n == 1 {
		i, ok := r.route(0)
		if !ok {
			panic("shard: Submit with every shard drained")
		}
		defer r.state[i].inflight.Add(-1)
		for k := range specs {
			r.account(g, i, int64(r.placementCost(&specs[k])))
		}
		r.shards[i].SubmitBatch(g.parts[i], specs)
		return
	}
	buckets := make([][]sig.TaskSpec, n)
	cost := make([]int64, n)
	for k := range specs {
		b := r.place(&specs[k])
		// Charge placement load as each spec is placed, so least-load
		// balancing works within one batch, not only across batches.
		c := int64(r.placementCost(&specs[k]))
		r.account(g, b, c)
		cost[b] += c
		buckets[b] = append(buckets[b], specs[k])
	}
	for b, sub := range buckets {
		if len(sub) == 0 {
			continue
		}
		r.submitBucket(g, b, sub, cost[b])
	}
}

// submitBucket routes one placed sub-batch and submits it, releasing the
// in-flight slot even if the shard's SubmitBatch panics (a leaked slot
// would wedge a later DrainShard forever).
func (r *Router) submitBucket(g *Group, b int, sub []sig.TaskSpec, cost int64) {
	i, ok := r.route(b)
	if !ok {
		panic("shard: Submit with every shard drained")
	}
	defer r.state[i].inflight.Add(-1)
	if i != b {
		// The proposed shard was drained between placement and routing:
		// move the sub-batch's load charge to the shard that actually
		// runs it, so least-load keeps seeing the truth.
		r.state[b].load.Add(-cost)
		g.added[b].Add(-cost)
		r.state[i].load.Add(cost)
		g.added[i].Add(cost)
	}
	r.shards[i].SubmitBatch(g.parts[i], sub)
}

// WaitPhase drains the logical group on every shard (in shard order) and
// returns the merged wave telemetry. Counts are summed; the merged busy
// time is the exact integer sum of the shards' busy nanoseconds, and the
// merged joules are computed from that sum in one multiplication — so the
// energy account is bit-identical to a single runtime running the same
// bodies, and additivity survives any shard count (invariant-tested).
// After the merge the per-shard trim controllers absorb each shard's
// provided-ratio lag, then the Router's OnWave observer (if any) sees the
// merged wave and may retune the global ratio for the next one.
func (r *Router) WaitPhase(g *Group) sig.WaveStats {
	if g == nil {
		g = r.defaultGroup()
	}
	g.waveMu.Lock()
	merged := sig.WaveStats{Wave: g.wave}
	var busy time.Duration
	lags := make([]float64, len(g.parts))
	for i, p := range g.parts {
		want := p.Ratio() // ratio+trim this shard was asked for
		ws := r.shards[i].WaitPhase(p)
		merged.Submitted += ws.Submitted
		merged.Accurate += ws.Accurate
		merged.Approximate += ws.Approximate
		merged.Dropped += ws.Dropped
		busy += ws.Busy
		if ws.Decided() > 0 {
			lags[i] = want - ws.ProvidedRatio
		}
		r.state[i].load.Add(-g.added[i].Swap(0))
	}
	merged.Busy = busy
	merged.Joules = r.watts * busy.Seconds()
	merged.RequestedRatio = g.Ratio()
	if d := merged.Decided(); d > 0 {
		merged.ProvidedRatio = float64(merged.Accurate) / float64(d)
	} else {
		merged.ProvidedRatio = merged.RequestedRatio
	}
	g.wave++
	// Per-shard trim update: integrate each shard's lag, clamped to
	// [0, TrimMax] — a lagging shard is boosted above the global command,
	// never shed below it, so the hierarchical knob cannot undercut the
	// ratio floor the caller asked for. Pure arithmetic on wave telemetry:
	// deterministic, replayable.
	if r.cfg.TrimGain > 0 {
		for i := range g.trim {
			t := math.Float64frombits(g.trim[i].Load()) + r.cfg.TrimGain*lags[i]
			t = math.Max(0, math.Min(r.cfg.TrimMax, t))
			g.trim[i].Store(math.Float64bits(t))
		}
	}
	g.applyRatio()
	g.waveMu.Unlock()
	if r.cfg.OnWave != nil {
		r.cfg.OnWave(g, merged)
	}
	return merged
}

// Wait drains the logical group on every shard and returns the cumulative
// provided ratio of the merge, like sig.Runtime.Wait.
func (r *Router) Wait(g *Group) float64 {
	if g == nil {
		g = r.defaultGroup()
	}
	r.WaitPhase(g)
	return g.providedRatio()
}

// providedRatio is the merged cumulative accurate fraction, from the
// shards' counters alone — no decision-log copying on the wave path.
func (g *Group) providedRatio() float64 {
	var acc, decided int64
	for _, p := range g.parts {
		_, a, ap, d := p.Counts()
		acc += a
		decided += a + ap + d
	}
	if decided == 0 {
		return g.Ratio()
	}
	return float64(acc) / float64(decided)
}

// WaitAll waits on every logical group ever created on the router.
func (r *Router) WaitAll() {
	r.mu.Lock()
	groups := append([]*Group(nil), r.order...)
	r.mu.Unlock()
	for _, g := range groups {
		r.WaitPhase(g)
	}
}

// Stats returns the logical group's merged accounting: counters summed
// across shards, the requested ratio being the global command.
func (g *Group) Stats() sig.GroupStats {
	merged := sig.GroupStats{Name: g.name, RequestedRatio: g.Ratio()}
	for _, p := range g.parts {
		gs := p.Stats()
		merged.Submitted += gs.Submitted
		merged.Accurate += gs.Accurate
		merged.Approximate += gs.Approximate
		merged.Dropped += gs.Dropped
		merged.InBytes += gs.InBytes
		merged.OutBytes += gs.OutBytes
		merged.Decisions = append(merged.Decisions, gs.Decisions...)
	}
	if total := merged.Accurate + merged.Approximate + merged.Dropped; total > 0 {
		merged.ProvidedRatio = float64(merged.Accurate) / float64(total)
	} else {
		merged.ProvidedRatio = merged.RequestedRatio
	}
	return merged
}

// Stats merges the per-shard accounting into one runtime-shaped snapshot:
// one GroupStats per logical group, counters summed across shards.
func (r *Router) Stats() sig.Stats {
	r.mu.Lock()
	groups := append([]*Group(nil), r.order...)
	r.mu.Unlock()
	st := sig.Stats{}
	for _, g := range groups {
		gs := g.Stats()
		st.Groups = append(st.Groups, gs)
		st.Submitted += gs.Submitted
		st.Accurate += gs.Accurate
		st.Approximate += gs.Approximate
		st.Dropped += gs.Dropped
	}
	return st
}

// ShardStats returns each shard's own Stats snapshot, indexed by shard.
func (r *Router) ShardStats() []sig.Stats {
	out := make([]sig.Stats, len(r.shards))
	for i, rt := range r.shards {
		out[i] = rt.Stats()
	}
	return out
}

// Energy returns the merged modeled energy report: busy time is the exact
// integer sum of the shards' busy nanoseconds and the joules are computed
// from that sum — bit-identical to a single runtime that executed the same
// bodies. Wall is the slowest shard's wall clock; Workers the fleet total.
func (r *Router) Energy() sig.Report {
	var busy time.Duration
	var wall time.Duration
	workers := 0
	var model sig.Report
	for i, rt := range r.shards {
		rep := rt.Energy()
		busy += rep.Busy
		if rep.Wall > wall {
			wall = rep.Wall
		}
		workers += rep.Workers
		if i == 0 {
			model = rep
		}
	}
	return sig.Report{
		Joules:      r.watts * busy.Seconds(),
		Wall:        wall,
		Busy:        busy,
		Workers:     workers,
		ActiveWatts: model.ActiveWatts,
		IdleWatts:   model.IdleWatts,
	}
}

// ShardEnergy returns each shard's own energy report, indexed by shard.
func (r *Router) ShardEnergy() []sig.Report {
	out := make([]sig.Report, len(r.shards))
	for i, rt := range r.shards {
		out[i] = rt.Energy()
	}
	return out
}

// DrainShard removes shard i from the fleet at runtime: it marks the shard
// unroutable, waits out submissions that already picked it, then closes its
// runtime — which drains every task the shard had queued or buffered.
// Completed work stays in every merged Stats/Energy view (a closed
// sig.Runtime's reports are frozen, not gone), so draining mid-wave loses
// and double-counts nothing. Draining the last live shard is refused; a
// drained shard cannot rejoin. Idempotent per shard.
func (r *Router) DrainShard(i int) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("shard: DrainShard(%d) out of range [0,%d)", i, len(r.shards))
	}
	r.mu.Lock()
	if r.state[i].down.Load() {
		r.mu.Unlock()
		return nil
	}
	live := 0
	for j := range r.state {
		if !r.state[j].down.Load() {
			live++
		}
	}
	if live <= 1 {
		r.mu.Unlock()
		return fmt.Errorf("shard: cannot drain shard %d: it is the last live shard", i)
	}
	r.state[i].down.Store(true)
	r.mu.Unlock()
	// Wait out router submissions that picked this shard before down
	// flipped; afterwards nothing new can reach it. Same yield-then-sleep
	// discipline as sig.Runtime.Close.
	for spin := 0; r.state[i].inflight.Load() != 0; spin++ {
		if spin < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
	return r.shards[i].Close()
}

// Live returns the number of shards still accepting work.
func (r *Router) Live() int {
	live := 0
	for i := range r.state {
		if !r.state[i].down.Load() {
			live++
		}
	}
	return live
}

// Close drains every logical group and closes every shard (drained shards
// are already closed; sig.Close is idempotent). Merged Energy and Stats
// stay valid — and Energy stable — afterwards, like a single runtime's.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	var errs []error
	for _, rt := range r.shards {
		errs = append(errs, rt.Close())
	}
	return errors.Join(errs...)
}

package shard

import (
	"fmt"
)

// HealthState is one shard's position in the fleet health state machine:
//
//	live ──strike──▶ suspect ──strike──▶ quarantined ──strike──▶ drained
//	  ▲                 │                    │                      │
//	  └──── healthy ────┘            ReviveShard              AddShard
//	          wave                  (back to live)          (slot reborn)
//
// A strike is a missed wave cut (Config.WaveTimeout watchdog) or a failing
// Config.HealthProbe. A healthy, in-time wave clears strikes and lifts a
// suspect shard back to live; a quarantined shard stays unroutable until
// ReviveShard (its empty waves complete instantly, so they prove nothing).
// Drained is terminal for the incarnation — AddShard starts the slot's next
// one at live.
type HealthState int32

const (
	// HealthLive: routable, no recent strikes.
	HealthLive HealthState = iota
	// HealthSuspect: routable, but missed at least SuspectAfter
	// consecutive waves.
	HealthSuspect
	// HealthQuarantined: unroutable while its runtime stays open, so
	// in-flight work can still drain; ReviveShard readmits it.
	HealthQuarantined
	// HealthDrained: runtime closed (DrainShard, auto-drain, or an empty
	// headroom slot). Terminal until AddShard reuses the slot.
	HealthDrained
)

func (h HealthState) String() string {
	switch h {
	case HealthLive:
		return "live"
	case HealthSuspect:
		return "suspect"
	case HealthQuarantined:
		return "quarantined"
	case HealthDrained:
		return "drained"
	}
	return fmt.Sprintf("HealthState(%d)", int32(h))
}

// Default consecutive-strike thresholds for Config's zero fields.
const (
	// DefaultSuspectAfter turns a shard suspect on its first missed wave.
	DefaultSuspectAfter = 1
	// DefaultQuarantineAfter pulls a shard out of placement after two.
	DefaultQuarantineAfter = 2
	// DefaultDrainAfter gives up and drains the shard after four.
	DefaultDrainAfter = 4
)

// Health returns shard i's current health state.
func (r *Router) Health(i int) HealthState {
	st := &r.state[i]
	if st.down.Load() {
		return HealthDrained
	}
	return HealthState(st.health.Load())
}

// HealthStates snapshots every slot's health, indexed by slot.
func (r *Router) HealthStates() []HealthState {
	out := make([]HealthState, len(r.state))
	for i := range out {
		out[i] = r.Health(i)
	}
	return out
}

// Strikes returns shard i's consecutive strike count.
func (r *Router) Strikes(i int) int { return int(r.state[i].strikes.Load()) }

// strike records one missed/failed wave for shard i and advances the health
// state machine. Runs on the merging goroutine (WaitPhase), so transitions
// are deterministic per wave; the auto-drain itself is spawned async
// because closing a wedged shard blocks until its tasks unwedge.
func (r *Router) strike(i int) {
	st := &r.state[i]
	if st.down.Load() {
		return
	}
	n := int(st.strikes.Add(1))
	if r.cfg.DrainAfter > 0 && n >= r.cfg.DrainAfter {
		if st.autoDrain.CompareAndSwap(false, true) {
			go func() { _ = r.DrainShard(i) }()
		}
		return
	}
	if n >= r.cfg.QuarantineAfter {
		// Refused for the last routable shard (ErrLastShard): the fleet
		// keeps accepting work on a suspect shard over accepting none.
		_ = r.QuarantineShard(i)
		return
	}
	if n >= r.cfg.SuspectAfter {
		st.health.CompareAndSwap(int32(HealthLive), int32(HealthSuspect))
	}
}

// probe runs the health bookkeeping for a shard that completed its wave cut
// in time: consult the pluggable probe (a failure is a strike), otherwise
// clear strikes and lift suspect back to live. No-op unless health tracking
// is on — the default fleet pays nothing.
func (r *Router) probe(i int) {
	if !r.healthOn {
		return
	}
	st := &r.state[i]
	if st.down.Load() {
		return
	}
	if hp := r.cfg.HealthProbe; hp != nil {
		if err := hp(i); err != nil {
			r.strike(i)
			return
		}
	}
	r.waveOK(i)
}

// waveOK clears shard i's strikes after a healthy wave and lifts suspect
// back to live. Quarantine is not lifted here: a quarantined shard receives
// no work, so an instantly-completing empty wave is no evidence of health —
// readmission is ReviveShard's (or the operator's) explicit call.
func (r *Router) waveOK(i int) {
	if !r.healthOn {
		return
	}
	st := &r.state[i]
	if st.down.Load() {
		return
	}
	st.strikes.Store(0)
	st.autoDrain.Store(false)
	st.health.CompareAndSwap(int32(HealthSuspect), int32(HealthLive))
}

// QuarantineShard pulls shard i out of placement without closing its
// runtime: in-flight and queued work still completes and merges, but no new
// work routes to it. Refused with ErrShardDown for a drained slot and with
// ErrLastShard when it would leave the fleet with no routable shard.
// Idempotent.
func (r *Router) QuarantineShard(i int) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("shard: QuarantineShard(%d) out of range [0,%d)", i, len(r.shards))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("shard: QuarantineShard(%d): %w", i, ErrRouterClosed)
	}
	st := &r.state[i]
	if st.down.Load() {
		return fmt.Errorf("shard: QuarantineShard(%d): %w", i, ErrShardDown)
	}
	if st.quarantined.Load() {
		return nil
	}
	if r.routableLocked() <= 1 {
		return fmt.Errorf("shard: cannot quarantine shard %d: %w", i, ErrLastShard)
	}
	st.quarantined.Store(true)
	st.health.Store(int32(HealthQuarantined))
	return nil
}

// ReviveShard readmits a quarantined shard into placement and clears its
// strikes. Refused with ErrShardDown for a drained slot. Idempotent.
func (r *Router) ReviveShard(i int) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("shard: ReviveShard(%d) out of range [0,%d)", i, len(r.shards))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("shard: ReviveShard(%d): %w", i, ErrRouterClosed)
	}
	st := &r.state[i]
	if st.down.Load() {
		return fmt.Errorf("shard: ReviveShard(%d): %w", i, ErrShardDown)
	}
	st.quarantined.Store(false)
	st.strikes.Store(0)
	st.autoDrain.Store(false)
	st.health.Store(int32(HealthLive))
	return nil
}

package shard

import (
	"fmt"
)

// Defaults for AutoscalerConfig's zero fields.
const (
	// DefaultScaleUpAt: sustained load above this adds a shard. The load
	// signal is the same normalized measure adapt.TargetLoad regulates
	// toward 1.0, so >1 means work the fleet cannot absorb by degrading
	// quality alone.
	DefaultScaleUpAt = 1.2
	// DefaultScaleDownAt: sustained load below this removes a shard.
	DefaultScaleDownAt = 0.4
	// DefaultScaleUpAfter / DefaultScaleDownAfter are the hysteresis: how
	// many consecutive waves must cross a threshold before acting. Down is
	// slower than up — capacity mistakes cost quality, idle costs watts.
	DefaultScaleUpAfter   = 2
	DefaultScaleDownAfter = 6
	// DefaultScaleCooldown is how many waves after any action the scaler
	// stays quiet, so the fleet's response is observed before acting again.
	DefaultScaleCooldown = 3
)

// AutoscalerConfig parameterizes an Autoscaler. Zero fields take defaults.
type AutoscalerConfig struct {
	// MinShards/MaxShards bound the live fleet size. MinShards defaults to
	// 1; MaxShards defaults to the router's slot capacity and cannot
	// exceed it.
	MinShards int
	MaxShards int
	// UpAt/DownAt are the load thresholds (must satisfy DownAt < UpAt).
	UpAt   float64
	DownAt float64
	// UpAfter/DownAfter are the consecutive waves a threshold must be
	// crossed before the scaler acts (hysteresis).
	UpAfter   int
	DownAfter int
	// Cooldown is the waves the scaler stays quiet after acting.
	Cooldown int
}

func (c AutoscalerConfig) withDefaults(slots int) AutoscalerConfig {
	if c.MinShards == 0 {
		c.MinShards = 1
	}
	if c.MaxShards == 0 {
		c.MaxShards = slots
	}
	if c.UpAt == 0 {
		c.UpAt = DefaultScaleUpAt
	}
	if c.DownAt == 0 {
		c.DownAt = DefaultScaleDownAt
	}
	if c.UpAfter == 0 {
		c.UpAfter = DefaultScaleUpAfter
	}
	if c.DownAfter == 0 {
		c.DownAfter = DefaultScaleDownAfter
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultScaleCooldown
	}
	return c
}

// ScaleEvent records one autoscaler action.
type ScaleEvent struct {
	// Wave is the Observe call count at which the action fired.
	Wave int
	// Delta is +1 (AddShard) or -1 (DrainShard); Shard the slot acted on.
	Delta int
	Shard int
	// Load is the observation that completed the streak.
	Load float64
	// Live is the live shard count after the action.
	Live int
}

// Autoscaler grows and shrinks a Router's live fleet between MinShards and
// MaxShards from the wave-boundary load observations an admission
// controller already produces (the adapt.Target observation stream), with
// threshold hysteresis and a post-action cooldown so steady load never
// oscillates the fleet.
//
// Observe is pure arithmetic over its inputs plus AddShard/DrainShard calls
// — no clocks, no randomness — so a replayed load trace reproduces the
// exact same scaling decisions. It is not safe for concurrent use; drive it
// from the wave loop (e.g. Config.OnWave or after serve.RunWave), which is
// single-threaded by construction.
type Autoscaler struct {
	r   *Router
	cfg AutoscalerConfig

	wave    int
	upRun   int
	downRun int
	cool    int
	events  []ScaleEvent
}

// NewAutoscaler validates the config against the router's slot capacity.
func NewAutoscaler(r *Router, cfg AutoscalerConfig) (*Autoscaler, error) {
	cfg = cfg.withDefaults(r.Shards())
	if cfg.MinShards < 1 {
		return nil, fmt.Errorf("shard: autoscaler MinShards %d < 1", cfg.MinShards)
	}
	if cfg.MaxShards < cfg.MinShards {
		return nil, fmt.Errorf("shard: autoscaler MaxShards %d below MinShards %d", cfg.MaxShards, cfg.MinShards)
	}
	if cfg.MaxShards > r.Shards() {
		return nil, fmt.Errorf("shard: autoscaler MaxShards %d above slot capacity %d", cfg.MaxShards, r.Shards())
	}
	if !(cfg.DownAt < cfg.UpAt) {
		return nil, fmt.Errorf("shard: autoscaler DownAt %.3f must be below UpAt %.3f", cfg.DownAt, cfg.UpAt)
	}
	if cfg.UpAfter < 1 || cfg.DownAfter < 1 || cfg.Cooldown < 0 {
		return nil, fmt.Errorf("shard: autoscaler hysteresis/cooldown out of range")
	}
	return &Autoscaler{r: r, cfg: cfg}, nil
}

// Config returns the resolved configuration.
func (a *Autoscaler) Config() AutoscalerConfig { return a.cfg }

// Events returns the actions taken so far, in order.
func (a *Autoscaler) Events() []ScaleEvent { return a.events }

// Observe feeds one wave's load observation and returns the shard-count
// delta it acted with: +1 (grew), -1 (shrank), 0 (held). Cooldown waves
// freeze the streak counters too, so the post-action transient cannot seed
// the next action.
func (a *Autoscaler) Observe(load float64) int {
	a.wave++
	if a.cool > 0 {
		a.cool--
		return 0
	}
	switch {
	case load >= a.cfg.UpAt:
		a.upRun++
		a.downRun = 0
	case load <= a.cfg.DownAt:
		a.downRun++
		a.upRun = 0
	default:
		a.upRun, a.downRun = 0, 0
	}
	if a.upRun >= a.cfg.UpAfter && a.r.Live() < a.cfg.MaxShards {
		if slot, err := a.r.AddShard(); err == nil {
			a.acted(ScaleEvent{Wave: a.wave, Delta: +1, Shard: slot, Load: load})
			return +1
		}
		// ErrShardDraining: the freed slot is still closing; retry next
		// wave (the streak stays satisfied).
		return 0
	}
	if a.downRun >= a.cfg.DownAfter && a.r.Live() > a.cfg.MinShards {
		if slot := a.highestRoutable(); slot >= 0 {
			if err := a.r.DrainShard(slot); err == nil {
				a.acted(ScaleEvent{Wave: a.wave, Delta: -1, Shard: slot, Load: load})
				return -1
			}
		}
	}
	return 0
}

// highestRoutable picks the scale-down victim: the highest-index routable
// slot, so the stable low slots keep their placement affinity.
func (a *Autoscaler) highestRoutable() int {
	for j := a.r.Shards() - 1; j >= 0; j-- {
		if a.r.routable(j) {
			return j
		}
	}
	return -1
}

func (a *Autoscaler) acted(ev ScaleEvent) {
	ev.Live = a.r.Live()
	a.events = append(a.events, ev)
	a.upRun, a.downRun = 0, 0
	a.cool = a.cfg.Cooldown
}

package shard

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/sig"
	"repro/sig/adapt"
)

// specStream builds n instrumented TaskSpecs with the given significance
// generator and declared costs; ranAcc/ranApx record which body ran.
func specStream(n int, sigOf func(i int) float64, ranAcc, ranApx []atomic.Bool) []sig.TaskSpec {
	specs := make([]sig.TaskSpec, n)
	for i := range specs {
		i := i
		s := sigOf(i)
		if s == 0 {
			s = -1 // batch spelling of the special 0.0
		}
		specs[i] = sig.TaskSpec{
			Fn:           func() { ranAcc[i].Store(true) },
			Approx:       func() { ranApx[i].Store(true) },
			Significance: s,
			HasCost:      true, CostAccurate: 10, CostApprox: 1,
		}
	}
	return specs
}

func nineLevels(i int) float64 { return float64(i%9+1) / 10 }

func TestRouterSurface(t *testing.T) {
	r, err := New(Config{Shards: 4, Runtime: sig.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Shards() != 4 || r.Workers() != 4 || r.Live() != 4 {
		t.Fatalf("fleet shape: %d shards, %d workers, %d live", r.Shards(), r.Workers(), r.Live())
	}
	g := r.Group("web", 0.5)
	if g2 := r.Group("web", 0.8); g2 != g {
		t.Error("Group is not idempotent")
	}
	if g.Ratio() != 0.8 {
		t.Errorf("re-Group did not retarget the ratio: %v", g.Ratio())
	}
	g.SetRatio(0.5)

	const n = 120
	ranAcc := make([]atomic.Bool, n)
	ranApx := make([]atomic.Bool, n)
	for _, spec := range specStream(n, nineLevels, ranAcc, ranApx) {
		r.Submit(g, spec)
	}
	if prov := r.Wait(g); math.IsNaN(prov) || prov < 0 || prov > 1 {
		t.Errorf("merged provided ratio %v out of range", prov)
	}

	// Round-robin with a single submitter stripes exactly n/shards each.
	for i := 0; i < 4; i++ {
		if got := g.Part(i).Stats().Submitted; got != n/4 {
			t.Errorf("shard %d got %d tasks, want %d (round-robin)", i, got, n/4)
		}
	}
	gs := g.Stats()
	if gs.Submitted != n {
		t.Errorf("merged submitted %d, want %d", gs.Submitted, n)
	}
	if got := gs.Accurate + gs.Approximate + gs.Dropped; got != n {
		t.Errorf("merged decided %d, want %d", got, n)
	}
	st := r.Stats()
	if st.Submitted != n || len(st.Groups) != 1 {
		t.Errorf("router Stats %+v", st)
	}
	// ShardStats sum to the merge.
	var sum int64
	for _, s := range r.ShardStats() {
		sum += s.Submitted
	}
	if sum != n {
		t.Errorf("shard stats sum %d, want %d", sum, n)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(Config{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(Config{Placement: PlacementKind(99)}); err == nil {
		t.Error("unknown placement accepted")
	}
	type obs struct{ sig.Observer }
	if _, err := New(Config{Runtime: sig.Config{Observer: obs{}}}); err == nil {
		t.Error("per-shard Observer accepted; merged waves must flow through OnWave")
	}
	r, err := New(Config{}) // zero config = 1 shard, round-robin
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 1 {
		t.Errorf("zero Shards resolved to %d", r.Shards())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestRouterDefaultGroup: the nil-group spelling mirrors the single
// runtime — submits and taskwaits resolve to the default group, which is
// created at ratio 1.0 on first use but never retargeted by a nil-group
// submit (a caller's r.Group("", 0.3) command must survive).
func TestRouterDefaultGroup(t *testing.T) {
	r, err := New(Config{Shards: 2, Runtime: sig.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("", 0.3)
	var ran atomic.Int64
	r.Submit(nil, sig.TaskSpec{Fn: func() { ran.Add(1) }, HasCost: true, CostAccurate: 10})
	r.SubmitBatch(nil, []sig.TaskSpec{{Fn: func() { ran.Add(1) }, HasCost: true, CostAccurate: 10}})
	if got := g.Ratio(); got != 0.3 {
		t.Errorf("nil-group submit reset the default group's ratio to %v, want the commanded 0.3", got)
	}
	if ws := r.WaitPhase(nil); ws.Submitted != 2 {
		t.Errorf("WaitPhase(nil) drained %d tasks, want 2", ws.Submitted)
	}
	if ran.Load() != 2 {
		t.Errorf("%d bodies ran, want 2", ran.Load())
	}
	if prov := r.Wait(nil); math.IsNaN(prov) {
		t.Error("Wait(nil) returned NaN")
	}
}

// TestRouterNilBodyValidatedUpfront: a nil body must panic before anything
// is routed — no partial batch, no load charged, and no in-flight slot
// leaked (a leaked slot would wedge DrainShard forever).
func TestRouterNilBodyValidatedUpfront(t *testing.T) {
	r, err := New(Config{Shards: 2, Runtime: sig.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("", 1.0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SubmitBatch accepted a nil task body")
			}
		}()
		r.SubmitBatch(g, []sig.TaskSpec{{Fn: func() {}}, {}})
	}()
	if got := g.Stats().Submitted; got != 0 {
		t.Errorf("%d tasks of the invalid batch were dispatched", got)
	}
	// Both shards must still be drainable: the failed call held no slot.
	if err := r.DrainShard(0); err != nil {
		t.Errorf("DrainShard after the recovered panic: %v", err)
	}
}

func TestPlacementLeastLoad(t *testing.T) {
	r, err := New(Config{Shards: 2, Placement: PlaceLeastLoad, Runtime: sig.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("", 1.0)
	spec := func(cost float64) sig.TaskSpec {
		return sig.TaskSpec{Fn: func() {}, HasCost: true, CostAccurate: cost, CostApprox: 0}
	}
	// One heavy task fills shard 0 (ties break to the lowest index); the
	// following light tasks must all go to shard 1 until it catches up.
	r.Submit(g, spec(1000))
	for i := 0; i < 5; i++ {
		r.Submit(g, spec(100))
	}
	if got := g.Part(1).Stats().Submitted; got != 5 {
		t.Errorf("least-load sent %d of 5 light tasks to the empty shard", got)
	}
	r.Wait(g)
	// The wave boundary retires placement load: the next task may land on
	// shard 0 again (tie at zero load).
	r.Submit(g, spec(10))
	if got := g.Part(0).Stats().Submitted; got != 2 {
		t.Errorf("wave boundary did not retire placement load: shard 0 has %d tasks, want 2", got)
	}
	r.Wait(g)
}

func TestPlacementCostAffinity(t *testing.T) {
	r, err := New(Config{Shards: 2, Placement: PlaceCostAffinity, Runtime: sig.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("", 1.0)
	spec := func(cost float64) sig.TaskSpec {
		return sig.TaskSpec{Fn: func() {}, HasCost: true, CostAccurate: cost, CostApprox: 0}
	}
	// Cost class = binary exponent: 100 and 110 share class 6; 200 is
	// class 7. Same class must mean same shard, always.
	for i := 0; i < 4; i++ {
		r.Submit(g, spec(100))
		r.Submit(g, spec(110))
		r.Submit(g, spec(200))
	}
	r.Wait(g)
	a := g.Part(0).Stats().Submitted
	b := g.Part(1).Stats().Submitted
	if a+b != 12 {
		t.Fatalf("lost tasks: %d + %d", a, b)
	}
	// Class 6 (8 tasks) and class 7 (4 tasks) map to different shards.
	if !(a == 8 && b == 4) && !(a == 4 && b == 8) {
		t.Errorf("cost classes not segregated: shard loads %d/%d, want 8/4", a, b)
	}
}

func TestPlacementKindString(t *testing.T) {
	for _, k := range []PlacementKind{PlaceRoundRobin, PlaceLeastLoad, PlaceCostAffinity} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "PlacementKind(") {
			t.Errorf("placement %d has no name", int(k))
		}
	}
	if s := PlacementKind(42).String(); !strings.HasPrefix(s, "PlacementKind(") {
		t.Errorf("unknown placement printed %q", s)
	}
}

// TestShardedWaveMerge checks the merged WaveStats arithmetic: counts sum,
// the requested ratio is the global command, and an empty wave reports the
// requested ratio as provided (no 0/0 artifact), like a single runtime.
func TestShardedWaveMerge(t *testing.T) {
	r, err := New(Config{Shards: 3, Runtime: sig.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("m", 0.6)
	const n = 90
	ranAcc := make([]atomic.Bool, n)
	ranApx := make([]atomic.Bool, n)
	r.SubmitBatch(g, specStream(n, nineLevels, ranAcc, ranApx))
	ws := r.WaitPhase(g)
	if ws.Submitted != n || ws.Decided() != n {
		t.Errorf("merged wave submitted %d decided %d, want %d", ws.Submitted, ws.Decided(), n)
	}
	if ws.RequestedRatio != 0.6 {
		t.Errorf("merged requested ratio %v, want the global command 0.6", ws.RequestedRatio)
	}
	if ws.Wave != 0 {
		t.Errorf("first merged wave indexed %d", ws.Wave)
	}
	empty := r.WaitPhase(g)
	if empty.Submitted != 0 || empty.Decided() != 0 {
		t.Errorf("empty wave carries tasks: %+v", empty)
	}
	if empty.ProvidedRatio != empty.RequestedRatio {
		t.Errorf("empty merged wave provided %v, want requested %v", empty.ProvidedRatio, empty.RequestedRatio)
	}
	if empty.Wave != 1 {
		t.Errorf("wave epoch did not advance: %d", empty.Wave)
	}
}

// laggingPolicy undershoots the requested ratio by half: the trim
// controller must detect the lag from wave telemetry and boost the shard.
type laggingPolicy struct{ g *sig.Group }

func (p *laggingPolicy) Name() string { return "lagging" }
func (p *laggingPolicy) Submit(t *sig.Task) (*sig.Task, []*sig.Task) {
	// Run accurately only the top ratio/2 significance band: the provided
	// ratio lands at about half the request at any trim, so the lag never
	// closes and the trim integrator must rail at TrimMax.
	if t.Significance >= 1-p.g.Ratio()/2 {
		t.Decision = sig.DecideAccurate
	} else {
		t.Decision = sig.DecideApprox
	}
	return t, nil
}
func (p *laggingPolicy) Flush() []*sig.Task { return nil }
func (p *laggingPolicy) WorkerDecide(worker int, t *sig.Task) sig.Decision {
	return sig.DecideAccurate
}

// TestTrimBoostsLaggingShard: per-shard trim controllers integrate provided
// lag, stay within [0, TrimMax], and raise the physical ratio above the
// global command — never below it.
func TestTrimBoostsLaggingShard(t *testing.T) {
	r, err := New(Config{
		Shards: 2,
		Runtime: sig.Config{
			Workers:   1,
			NewPolicy: func(g *sig.Group) sig.Policy { return &laggingPolicy{g: g} },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("lag", 0.5)
	const n = 100
	for wave := 0; wave < 6; wave++ {
		ranAcc := make([]atomic.Bool, n)
		ranApx := make([]atomic.Bool, n)
		r.SubmitBatch(g, specStream(n, func(i int) float64 { return float64(i%100)/100*0.98 + 0.01 }, ranAcc, ranApx))
		r.WaitPhase(g)
		for i := 0; i < 2; i++ {
			trim := g.Trim(i)
			if trim < 0 || trim > DefaultTrimMax+1e-12 {
				t.Fatalf("wave %d shard %d trim %v outside [0, %v]", wave, i, trim, DefaultTrimMax)
			}
			if pr := g.Part(i).Ratio(); pr < g.Ratio()-1e-12 {
				t.Fatalf("wave %d shard %d physical ratio %v below the global command %v", wave, i, pr, g.Ratio())
			}
		}
	}
	// The lagging policy guarantees lag, so the integrators must have
	// railed at TrimMax by now.
	if g.Trim(0) < DefaultTrimMax-1e-9 || g.Trim(1) < DefaultTrimMax-1e-9 {
		t.Errorf("trims %v/%v did not integrate up to %v under persistent lag", g.Trim(0), g.Trim(1), DefaultTrimMax)
	}
}

// TestDeterministicShardedReplay is the sharded face of the adaptive
// replay contract: a full closed loop — router, GTB(max) shards, merged
// waves observed by an adapt.TargetEnergy controller through OnWave —
// replays bit-identically (ratio trajectory, outcome counts, per-wave
// joules) at 1, 2 and 8 shards. Run under -race in CI.
func TestDeterministicShardedReplay(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		run := func() (trace []float64, joules []uint64, acc []int) {
			ctl, err := adapt.New(adapt.Config{
				Group:     "rep",
				Objective: adapt.TargetEnergy,
				Budget:    sig.DefaultActiveWatts * 400 * 1e-9, // ~half of full-accurate demand
			})
			if err != nil {
				t.Fatal(err)
			}
			r, err := New(Config{
				Shards:  shards,
				Runtime: sig.Config{Workers: 1, Policy: sig.PolicyGTBMaxBuffer},
				OnWave:  func(g *Group, ws sig.WaveStats) { ctl.Observe(g, ws) },
			})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			g := r.Group("rep", 1.0)
			const n = 80
			for wave := 0; wave < 10; wave++ {
				ranAcc := make([]atomic.Bool, n)
				ranApx := make([]atomic.Bool, n)
				r.SubmitBatch(g, specStream(n, nineLevels, ranAcc, ranApx))
				ws := r.WaitPhase(g)
				trace = append(trace, g.Ratio())
				joules = append(joules, math.Float64bits(ws.Joules))
				acc = append(acc, ws.Accurate)
			}
			return trace, joules, acc
		}
		t1, j1, a1 := run()
		t2, j2, a2 := run()
		for w := range t1 {
			if t1[w] != t2[w] || j1[w] != j2[w] || a1[w] != a2[w] {
				t.Fatalf("%d shards, wave %d diverged across identical runs: ratio %v/%v joules %x/%x accurate %d/%d",
					shards, w, t1[w], t2[w], j1[w], j2[w], a1[w], a2[w])
			}
		}
	}
}

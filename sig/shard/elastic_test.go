package shard

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"repro/sig"
)

// Elastic-fleet unit suite: sentinel errors, runtime rejoin (AddShard),
// the health state machine's explicit transitions, and the autoscaler's
// step response on scripted load traces. The chaos package carries the
// end-to-end proofs; these tests pin the per-call contracts.

func newElasticRouter(t *testing.T, shards, slots int) *Router {
	t.Helper()
	r, err := New(Config{
		Shards:    shards,
		MaxShards: slots,
		Runtime:   sig.Config{Workers: 1, Policy: sig.PolicyGTBMaxBuffer},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestShardSentinelErrors pins every refusal to its typed sentinel so
// callers can program against errors.Is instead of string matching.
func TestShardSentinelErrors(t *testing.T) {
	r := newElasticRouter(t, 2, 3)

	if err := r.DrainShard(5); err == nil || errors.Is(err, ErrShardDown) {
		t.Fatalf("out-of-range drain: got %v, want a range error", err)
	}
	if err := r.QuarantineShard(2); !errors.Is(err, ErrShardDown) {
		t.Fatalf("quarantining the empty slot: got %v, want ErrShardDown", err)
	}
	if err := r.ReviveShard(2); !errors.Is(err, ErrShardDown) {
		t.Fatalf("reviving the empty slot: got %v, want ErrShardDown", err)
	}

	// Draining down to one shard is fine; the last routable one is not.
	if err := r.DrainShard(1); err != nil {
		t.Fatal(err)
	}
	if err := r.DrainShard(0); !errors.Is(err, ErrLastShard) {
		t.Fatalf("draining the last shard: got %v, want ErrLastShard", err)
	}
	if err := r.QuarantineShard(0); !errors.Is(err, ErrLastShard) {
		t.Fatalf("quarantining the last shard: got %v, want ErrLastShard", err)
	}
	// Idempotent drain of an already-down shard.
	if err := r.DrainShard(1); err != nil {
		t.Fatalf("re-draining a down shard: got %v, want nil", err)
	}

	// Fill both free slots; the next AddShard must refuse.
	for i := 0; i < 2; i++ {
		if _, err := r.AddShard(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.AddShard(); !errors.Is(err, ErrFleetFull) {
		t.Fatalf("AddShard at capacity: got %v, want ErrFleetFull", err)
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.DrainShard(0); !errors.Is(err, ErrRouterClosed) {
		t.Fatalf("drain after Close: got %v, want ErrRouterClosed", err)
	}
	if _, err := r.AddShard(); !errors.Is(err, ErrRouterClosed) {
		t.Fatalf("AddShard after Close: got %v, want ErrRouterClosed", err)
	}
	if err := r.QuarantineShard(0); !errors.Is(err, ErrRouterClosed) {
		t.Fatalf("quarantine after Close: got %v, want ErrRouterClosed", err)
	}
	if err := r.ReviveShard(0); !errors.Is(err, ErrRouterClosed) {
		t.Fatalf("revive after Close: got %v, want ErrRouterClosed", err)
	}
}

// TestAddShardRejoinPreservesEnergy is the rejoin half of the energy
// additivity contract: drain a shard mid-run, rejoin the slot, finish the
// stream — the merged joules must stay bit-identical to the single-runtime
// golden, because retirement moves the drained incarnation's busy
// nanoseconds into an exact integer account and the joining shard starts
// with a zero busy clock.
func TestAddShardRejoinPreservesEnergy(t *testing.T) {
	const n, cost = 300, 12_345.0
	stream := func() []sig.TaskSpec {
		specs := make([]sig.TaskSpec, n)
		for i := range specs {
			specs[i] = sig.TaskSpec{Fn: func() {}, HasCost: true, CostAccurate: cost}
		}
		return specs
	}

	rt, err := sig.New(sig.Config{Workers: 2, Policy: sig.PolicyAccurate})
	if err != nil {
		t.Fatal(err)
	}
	rt.SubmitBatch(nil, stream())
	rt.SubmitBatch(nil, stream())
	rt.Wait(nil)
	rt.Close()
	golden := rt.Energy()

	r, err := New(Config{
		Shards:  3,
		Runtime: sig.Config{Workers: 2, Policy: sig.PolicyAccurate},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := r.Group("rejoin", 1.0)
	r.SubmitBatch(g, stream())
	r.Wait(g)

	if err := r.DrainShard(1); err != nil {
		t.Fatal(err)
	}
	slot, err := r.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if slot != 1 {
		t.Fatalf("rejoin took slot %d, want the drained slot 1", slot)
	}
	if got := r.ShardEnergy()[1].Busy; got != 0 {
		t.Fatalf("rejoined shard born with busy clock %v, want 0", got)
	}

	r.SubmitBatch(g, stream())
	r.Wait(g)
	r.Close()

	rep := r.Energy()
	if rep.Busy != golden.Busy {
		t.Fatalf("merged busy %v != golden %v across drain+rejoin", rep.Busy, golden.Busy)
	}
	if math.Float64bits(rep.Joules) != math.Float64bits(golden.Joules) {
		t.Fatalf("merged joules %v not bit-identical to golden %v across drain+rejoin",
			rep.Joules, golden.Joules)
	}
	gs := g.Stats()
	if gs.Submitted != 2*n || gs.Accurate != 2*n {
		t.Fatalf("conservation across rejoin: %+v, want %d submitted and accurate", gs, 2*n)
	}
}

// TestAddShardReseedsPlacement: a rejoined shard starts with zero load
// state, so least-load placement immediately favors it.
func TestAddShardReseedsPlacement(t *testing.T) {
	r, err := New(Config{
		Shards:    2,
		Placement: PlaceLeastLoad,
		Runtime:   sig.Config{Workers: 1, Policy: sig.PolicyAccurate},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("seed", 1.0)

	heavy := make([]sig.TaskSpec, 40)
	for i := range heavy {
		heavy[i] = sig.TaskSpec{Fn: func() {}, HasCost: true, CostAccurate: 1000}
	}
	// No wave boundary yet: the placement load stays outstanding on shard 0
	// while shard 1 is replaced, so the contrast is visible.
	r.SubmitBatch(g, heavy)

	if err := r.DrainShard(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddShard(); err != nil {
		t.Fatal(err)
	}
	if got := r.state[1].load.Load(); got != 0 {
		t.Fatalf("rejoined shard load %d, want 0", got)
	}
	// The fresh shard owes nothing, so the next placement must pick it.
	var onFresh atomic.Int64
	r.Submit(g, sig.TaskSpec{Fn: func() { onFresh.Add(1) }, HasCost: true, CostAccurate: 1000})
	r.Wait(g)
	if ps := g.Part(1).Stats(); ps.Submitted != 1 {
		t.Fatalf("least-load ignored the fresh shard: part stats %+v", ps)
	}
	if onFresh.Load() != 1 {
		t.Fatal("instrumented task did not run")
	}
	if gs := g.Stats(); gs.Submitted != 41 {
		t.Fatalf("conservation across replace: %d submitted, want 41", gs.Submitted)
	}
}

// TestQuarantineExplicitLifecycle pins the state machine's manual arcs:
// quarantine pulls a shard out of placement while keeping it live, revive
// readmits it, and health states read back correctly at each step.
func TestQuarantineExplicitLifecycle(t *testing.T) {
	r := newElasticRouter(t, 3, 3)
	if got := r.HealthStates(); len(got) != 3 || got[0] != HealthLive {
		t.Fatalf("initial health states %v, want all live", got)
	}
	if err := r.QuarantineShard(1); err != nil {
		t.Fatal(err)
	}
	if got := r.Health(1); got != HealthQuarantined {
		t.Fatalf("health after quarantine %v", got)
	}
	if r.Live() != 3 || r.Routable() != 2 {
		t.Fatalf("quarantined shard should stay live: live %d routable %d", r.Live(), r.Routable())
	}
	// Quarantine is idempotent and sticky: healthy waves don't lift it.
	if err := r.QuarantineShard(1); err != nil {
		t.Fatal(err)
	}
	g := r.Group("q", 1.0)
	for i := 0; i < 8; i++ {
		r.Submit(g, sig.TaskSpec{Fn: func() {}, HasCost: true, CostAccurate: 10})
	}
	r.Wait(g)
	if got := r.Health(1); got != HealthQuarantined {
		t.Fatalf("healthy wave lifted quarantine: %v", got)
	}
	if ps := g.Part(1).Stats(); ps.Submitted != 0 {
		t.Fatalf("quarantined shard received %d tasks", ps.Submitted)
	}
	if err := r.ReviveShard(1); err != nil {
		t.Fatal(err)
	}
	if got := r.Health(1); got != HealthLive {
		t.Fatalf("health after revive %v", got)
	}
	if r.Routable() != 3 {
		t.Fatalf("routable after revive %d, want 3", r.Routable())
	}
	if got := r.Health(2); got != HealthLive || r.Strikes(2) != 0 {
		t.Fatalf("bystander shard disturbed: health %v strikes %d", got, r.Strikes(2))
	}
}

// TestHealthStateStrings covers the diagnostic formatting.
func TestHealthStateStrings(t *testing.T) {
	want := map[HealthState]string{
		HealthLive: "live", HealthSuspect: "suspect",
		HealthQuarantined: "quarantined", HealthDrained: "drained",
		HealthState(99): "HealthState(99)",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("HealthState(%d).String() = %q, want %q", st, st.String(), s)
		}
	}
}

// TestAutoscalerStepResponse replays a scripted load trace through the
// scaler and checks the full step response: scale-up after UpAfter
// high-load waves, cooldown suppression, scale-down after DownAfter
// low-load waves, Min/Max clamps, and no oscillation on steady load.
func TestAutoscalerStepResponse(t *testing.T) {
	r := newElasticRouter(t, 2, 4)
	a, err := NewAutoscaler(r, AutoscalerConfig{
		MinShards: 1, MaxShards: 4,
		UpAt: 1.2, DownAt: 0.4,
		UpAfter: 2, DownAfter: 3, Cooldown: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Steady in-band load: nothing happens.
	for i := 0; i < 10; i++ {
		if d := a.Observe(1.0); d != 0 {
			t.Fatalf("in-band wave %d acted with %+d", i, d)
		}
	}

	// Step up: first high wave arms, second fires.
	if d := a.Observe(2.0); d != 0 {
		t.Fatal("scaled up before UpAfter")
	}
	if d := a.Observe(2.0); d != +1 {
		t.Fatalf("second high wave: delta %+d, want +1", d)
	}
	if r.Live() != 3 {
		t.Fatalf("live after scale-up %d, want 3", r.Live())
	}
	// Cooldown: two waves of silence even under sustained overload.
	for i := 0; i < 2; i++ {
		if d := a.Observe(2.0); d != 0 {
			t.Fatalf("cooldown wave %d acted with %+d", i, d)
		}
	}
	// Streak restarts after cooldown; two more high waves fire again.
	a.Observe(2.0)
	if d := a.Observe(2.0); d != +1 {
		t.Fatal("post-cooldown overload did not scale up")
	}
	if r.Live() != 4 {
		t.Fatalf("live at max %d, want 4", r.Live())
	}
	// At MaxShards: sustained overload never acts again.
	for i := 0; i < 8; i++ {
		if d := a.Observe(3.0); d != 0 {
			t.Fatal("scaled past MaxShards")
		}
	}

	// Step down: DownAfter low waves (after cooldown already expired).
	downs := 0
	for i := 0; i < 24 && r.Live() > 1; i++ {
		if d := a.Observe(0.1); d == -1 {
			downs++
		} else if d != 0 {
			t.Fatalf("low-load wave acted with %+d", d)
		}
	}
	if r.Live() != 1 || downs != 3 {
		t.Fatalf("scale-down: live %d (want 1) after %d down actions (want 3)", r.Live(), downs)
	}
	// At MinShards: idle load never drains the last shard.
	for i := 0; i < 8; i++ {
		if d := a.Observe(0.0); d != 0 {
			t.Fatal("scaled below MinShards")
		}
	}

	evs := a.Events()
	if len(evs) != 5 {
		t.Fatalf("recorded %d events, want 5 (+1,+1,-1,-1,-1): %+v", len(evs), evs)
	}
	for i, ev := range evs {
		wantDelta := +1
		if i >= 2 {
			wantDelta = -1
		}
		if ev.Delta != wantDelta {
			t.Errorf("event %d delta %+d, want %+d", i, ev.Delta, wantDelta)
		}
	}
	// Scale-down victims are the highest routable slots, preserving the
	// stable low slots' placement affinity.
	if evs[2].Shard != 3 || evs[3].Shard != 2 || evs[4].Shard != 1 {
		t.Errorf("scale-down victim order %d,%d,%d, want 3,2,1",
			evs[2].Shard, evs[3].Shard, evs[4].Shard)
	}
}

// TestAutoscalerConfigValidation pins the constructor's refusals.
func TestAutoscalerConfigValidation(t *testing.T) {
	r := newElasticRouter(t, 2, 3)
	bad := []AutoscalerConfig{
		{MinShards: -1},              // negative min
		{MinShards: 2, MaxShards: 1}, // max below min
		{MaxShards: 9},               // above slot capacity
		{UpAt: 0.4, DownAt: 0.5},     // inverted thresholds
		{UpAfter: -1},                // negative hysteresis
		{DownAfter: -2},              // negative hysteresis
		{MinShards: 1, MaxShards: 3, UpAt: 1, DownAt: 1}, // equal thresholds
	}
	for i, cfg := range bad {
		if _, err := NewAutoscaler(r, cfg); err == nil {
			t.Errorf("config %d (%+v) accepted, want error", i, cfg)
		}
	}
	a, err := NewAutoscaler(r, AutoscalerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := a.Config()
	if got.MinShards != 1 || got.MaxShards != 3 || got.UpAt != DefaultScaleUpAt ||
		got.DownAt != DefaultScaleDownAt || got.UpAfter != DefaultScaleUpAfter ||
		got.DownAfter != DefaultScaleDownAfter || got.Cooldown != DefaultScaleCooldown {
		t.Fatalf("defaults not applied: %+v", got)
	}
}

package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/sig"
)

// Chaos suite: shards leaving the fleet (DrainShard) or wedging mid-wave
// must never lose or double-count a task. Tasks are instrumented with a
// compare-and-swap so a body that runs twice is detected directly, not just
// through counter arithmetic.

// countingBody returns a task body that records exactly-once execution.
func countingBody(i int, ran []atomic.Bool, doubles *atomic.Int64) func() {
	return func() {
		if !ran[i].CompareAndSwap(false, true) {
			doubles.Add(1)
		}
	}
}

// TestChaosDrainShardMidWave closes one shard while four producers are
// mid-wave: the router must turn new work away from the dying shard, the
// shard must finish what it already accepted, and the merged accounting
// must conserve every task.
func TestChaosDrainShardMidWave(t *testing.T) {
	const (
		producers = 4
		perProd   = 400
		total     = producers * perProd
	)
	r, err := New(Config{Shards: 4, Runtime: sig.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("chaos", 0.5)

	ran := make([]atomic.Bool, total)  // accurate bodies
	ranA := make([]atomic.Bool, total) // approximate bodies
	var doubles atomic.Int64

	start := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for k := 0; k < perProd; k++ {
				i := p*perProd + k
				r.Submit(g, sig.TaskSpec{
					Fn:           countingBody(i, ran, &doubles),
					Approx:       countingBody(i, ranA, &doubles),
					Significance: float64(i%9+1) / 10,
					HasCost:      true, CostAccurate: 10, CostApprox: 1,
				})
			}
		}()
	}
	close(start)
	// Kill shard 1 while the producers are running.
	if err := r.DrainShard(1); err != nil {
		t.Fatal(err)
	}
	if err := r.DrainShard(1); err != nil { // idempotent
		t.Errorf("second DrainShard: %v", err)
	}
	wg.Wait()
	r.Wait(g)

	if n := doubles.Load(); n != 0 {
		t.Fatalf("%d task bodies ran twice", n)
	}
	gs := g.Stats()
	if gs.Submitted != total {
		t.Errorf("merged submitted %d, want %d: tasks lost in the drain", gs.Submitted, total)
	}
	if got := gs.Accurate + gs.Approximate + gs.Dropped; got != total {
		t.Errorf("merged decided %d, want %d", got, total)
	}
	ranTotal := 0
	for i := 0; i < total; i++ {
		if ran[i].Load() || ranA[i].Load() {
			ranTotal++
		}
	}
	if int64(ranTotal) != gs.Accurate+gs.Approximate {
		t.Errorf("%d bodies ran but merged Stats says %d executed", ranTotal, gs.Accurate+gs.Approximate)
	}
	if r.Live() != 3 {
		t.Errorf("%d shards live after one drain of 4", r.Live())
	}
	// The drained shard's completed work stays in the merged energy view.
	if r.Energy().Busy == 0 {
		t.Error("merged energy lost the drained shard's busy time")
	}
}

// TestChaosStalledShardHoldsWave wedges one shard mid-wave (its task bodies
// block on a gate) while the sibling shard is drained out from under the
// router: the merged taskwait must not report completion early, must ride
// out both failures, and must conserve every task once the gate opens.
func TestChaosStalledShardHoldsWave(t *testing.T) {
	r, err := New(Config{Shards: 2, Placement: PlaceCostAffinity, Runtime: sig.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("stall", 1.0)

	gate := make(chan struct{})
	var stalled, fast atomic.Int64
	// Cost class 6 (cost 100) lands on shard 0, class 7 (cost 200) on
	// shard 1 — cost-affinity placement makes the split deterministic.
	for i := 0; i < 8; i++ {
		r.Submit(g, sig.TaskSpec{
			Fn:      func() { <-gate; stalled.Add(1) },
			HasCost: true, CostAccurate: 100, CostApprox: 0,
		})
		r.Submit(g, sig.TaskSpec{
			Fn:      func() { fast.Add(1) },
			HasCost: true, CostAccurate: 200, CostApprox: 0,
		})
	}
	if a, b := g.Part(0).Stats().Submitted, g.Part(1).Stats().Submitted; a != 8 || b != 8 {
		t.Fatalf("cost-affinity split %d/%d, want 8/8", a, b)
	}

	done := make(chan struct{})
	go func() {
		r.Wait(g)
		close(done)
	}()
	// The wave must be held open by the stalled shard.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("merged Wait returned while one shard was stalled mid-wave")
	default:
	}
	// Chaos on top: drain the healthy shard while its sibling is wedged.
	if err := r.DrainShard(1); err != nil {
		t.Fatal(err)
	}
	// New work can only go to the stalled (sole live) shard; it must
	// queue, not vanish.
	r.Submit(g, sig.TaskSpec{
		Fn:      func() { stalled.Add(1) },
		HasCost: true, CostAccurate: 100, CostApprox: 0,
	})
	close(gate)
	<-done
	r.WaitAll() // the straggler submitted after the Wait goroutine started

	if got := stalled.Load(); got != 9 {
		t.Errorf("stalled shard ran %d bodies, want 9", got)
	}
	if got := fast.Load(); got != 8 {
		t.Errorf("drained shard ran %d bodies, want 8", got)
	}
	gs := g.Stats()
	if gs.Submitted != 17 || gs.Accurate != 17 {
		t.Errorf("merged stats %+v after the chaos, want 17 submitted and accurate", gs)
	}
	// Draining the last live shard must be refused.
	if err := r.DrainShard(0); err == nil {
		t.Error("drained the last live shard")
	}
}

// TestDrainShardValidation covers the error edges of fleet surgery.
func TestDrainShardValidation(t *testing.T) {
	r, err := New(Config{Shards: 2, Runtime: sig.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.DrainShard(-1); err == nil {
		t.Error("negative index accepted")
	}
	if err := r.DrainShard(2); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := r.DrainShard(0); err != nil {
		t.Fatal(err)
	}
	if err := r.DrainShard(1); err == nil {
		t.Error("last live shard drained")
	}
	if r.Live() != 1 {
		t.Errorf("%d live shards, want 1", r.Live())
	}
	// The fleet still serves on its last shard.
	g := r.Group("", 1.0)
	var ran atomic.Int64
	r.Submit(g, sig.TaskSpec{Fn: func() { ran.Add(1) }, HasCost: true, CostAccurate: 10})
	r.Wait(g)
	if ran.Load() != 1 {
		t.Error("task on the surviving shard did not run")
	}
}

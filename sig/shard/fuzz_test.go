package shard

import (
	"sync/atomic"
	"testing"

	"repro/sig"
)

// FuzzShardRouting feeds adversarial routing scenarios — shard count,
// placement policy, sig policy, significance stream, wave cuts, mid-stream
// ratio retargeting and mid-stream shard drains — through the Router and
// holds it to the cross-shard invariants (invariant_test.go): global
// conservation against instrumented bodies and the shard sum, the
// special-significance contracts, the merged ratio floor (when a single
// ratio is defined for the whole run), and Wait sanity.
//
// Input encoding (every byte string is valid):
//
//	data[0]  shard count, 1 + v%8
//	data[1]  placement kind, v%3
//	data[2]  sig policy selector
//	data[3]  requested ratio, v/255
//	data[4]  flags: bit0 = batch submission; bit1 = every third task has
//	         no approximate body; bit2 = 254 bytes in the stream drain a
//	         shard; bit3 = wave boundaries retarget the ratio; bit4 =
//	         elastic mode — the router gets two spare slots and each 254
//	         byte consumes one selector byte choosing drain / rejoin /
//	         quarantine / revive fleet surgery (overrides bit2)
//	data[5]  workers per shard, 1 + v%3
//	data[6:] the stream: 255 is a taskwait boundary (followed, when
//	         retargeting, by one byte of new ratio); 254 drains the next
//	         live shard (when enabled) or performs elastic surgery; any
//	         other byte v is a task of significance v/253 — so the fuzzer
//	         can position the special values and the chaos adversarially.
func FuzzShardRouting(f *testing.F) {
	// Seeds: round-robin baseline, least-load with drains, cost-affinity
	// with retargeting, single-shard degenerate, drain-heavy chaos,
	// elastic surgery (drain→rejoin same index, rejoin at max fleet,
	// quarantine/revive churn).
	nine := []byte{3, 0, 2, 128, 0, 1}
	for i := 0; i < 60; i++ {
		nine = append(nine, byte(25*(i%9+1)))
	}
	f.Add(nine)
	f.Add([]byte{7, 1, 1, 85, 4, 2, 100, 100, 254, 100, 100, 255, 100, 254, 100, 100})
	f.Add([]byte{1, 2, 2, 200, 8, 0, 10, 240, 255, 128, 10, 240, 253, 0})
	f.Add([]byte{0, 0, 0, 255, 1, 0, 253, 1, 253, 2, 255, 3})
	f.Add([]byte{5, 1, 3, 64, 6, 1, 254, 254, 254, 254, 254, 100, 255, 200, 254, 50})
	f.Add([]byte{4, 2, 4, 25, 15, 2, 200, 200, 255, 230, 254, 50, 50, 255, 10, 100})
	f.Add([]byte{2, 1, 2, 128, 16, 1, 100, 254, 0, 254, 1, 100, 255, 254, 1, 254, 1, 100})
	f.Add([]byte{3, 2, 3, 77, 17, 2, 254, 2, 50, 254, 3, 255, 254, 0, 254, 1, 200, 253})

	kinds := []sig.PolicyKind{sig.PolicyAccurate, sig.PolicyGTB, sig.PolicyGTBMaxBuffer, sig.PolicyLQH, sig.PolicyPerforation}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 {
			t.Skip()
		}
		shards := 1 + int(data[0])%8
		placement := PlacementKind(int(data[1]) % 3)
		kind := kinds[int(data[2])%len(kinds)]
		ratio := float64(data[3]) / 255
		batch := data[4]&1 != 0
		noApprox := 0
		if data[4]&2 != 0 {
			noApprox = 3
		}
		drains := data[4]&4 != 0
		retargets := data[4]&8 != 0
		elastic := data[4]&16 != 0
		workers := 1 + int(data[5])%3
		stream := data[6:]
		if len(stream) > 1024 {
			stream = stream[:1024]
		}

		maxShards := shards
		if elastic {
			maxShards = shards + 2
		}
		r, err := New(Config{
			Shards:    shards,
			MaxShards: maxShards,
			Placement: placement,
			Runtime:   sig.Config{Workers: workers, Policy: kind},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		g := r.Group("fuzz", ratio)

		var sigs []float64
		var ranAcc, ranApx []atomic.Bool
		grow := func() int {
			i := len(sigs)
			sigs = append(sigs, 0)
			return i
		}
		// The instrumented flags must not move once a task can write them,
		// so they are pre-sized to the worst case.
		ranAcc = make([]atomic.Bool, len(stream))
		ranApx = make([]atomic.Bool, len(stream))

		waves := 1
		drained := 0
		var pending []sig.TaskSpec
		flush := func() {
			if len(pending) == 0 {
				return
			}
			if batch {
				r.SubmitBatch(g, pending)
			} else {
				for _, sp := range pending {
					r.Submit(g, sp)
				}
			}
			pending = pending[:0]
		}
		for pos := 0; pos < len(stream); pos++ {
			v := stream[pos]
			if v == 255 {
				flush()
				r.Wait(g)
				waves++
				if retargets && pos+1 < len(stream) {
					pos++
					g.SetRatio(float64(stream[pos]) / 253)
				}
				continue
			}
			if v == 254 && elastic {
				// Fleet surgery: the selector byte picks the operation.
				// Refusals (last shard, fleet full, slot draining, shard
				// down) are part of the guardrail contract; only accepted
				// operations void the single-ratio floor.
				sel := byte(0)
				if pos+1 < len(stream) {
					pos++
					sel = stream[pos]
				}
				switch sel % 4 {
				case 0: // drain the lowest routable shard
					for i := 0; i < r.Shards(); i++ {
						if r.routable(i) {
							if err := r.DrainShard(i); err == nil {
								drained++
							}
							break
						}
					}
				case 1: // rejoin into the lowest free slot
					if _, err := r.AddShard(); err == nil {
						drained++
					}
				case 2: // quarantine the highest routable shard
					for i := r.Shards() - 1; i >= 0; i-- {
						if r.routable(i) {
							if err := r.QuarantineShard(i); err == nil {
								drained++
							}
							break
						}
					}
				case 3: // revive the first quarantined shard
					for i := 0; i < r.Shards(); i++ {
						if r.state[i].quarantined.Load() {
							if err := r.ReviveShard(i); err == nil {
								drained++
							}
							break
						}
					}
				}
				if r.Routable() < 1 {
					t.Fatal("surgery left no routable shard")
				}
				continue
			}
			if v == 254 && drains {
				// Drain the lowest-numbered live shard; refusing to kill
				// the last one is part of the contract under test.
				for i := 0; i < shards; i++ {
					if !r.state[i].down.Load() {
						if err := r.DrainShard(i); err == nil {
							drained++
						}
						break
					}
				}
				if r.Live() < 1 {
					t.Fatal("drains left no live shard")
				}
				continue
			}
			i := grow()
			s := float64(v) / 253
			sigs[i] = s
			spec := sig.TaskSpec{
				Fn:           func() { ranAcc[i].Store(true) },
				Significance: s,
				HasCost:      true, CostAccurate: 10, CostApprox: 1,
			}
			if noApprox == 0 || i%noApprox != 0 {
				spec.Approx = func() { ranApx[i].Store(true) }
			}
			if s == 0 {
				spec.Significance = -1 // batch spelling of the special 0.0
			}
			pending = append(pending, spec)
		}
		flush()
		provided := r.Wait(g)

		sc := shardScenario{
			shards:    shards,
			placement: placement,
			kind:      kind,
			workers:   workers,
			ratio:     ratio,
			sigs:      sigs,
			batch:     batch,
			waves:     waves,
			noApprox:  noApprox,
		}
		// Mid-stream retargeting or drains make the single-ratio floor
		// ill-defined (a drain cuts an extra quota epoch on its shard);
		// those runs check conservation, specials and Wait sanity only.
		if retargets || drained > 0 {
			sc.ratio = 0
		}
		checkShardInvariants(t, sc, r, g, ranAcc[:len(sigs)], ranApx[:len(sigs)], g.Stats(), provided)
	})
}

package shard

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/sig"
)

// Cross-shard invariant suite: for every placement policy × sig policy
// under randomized scenarios, sharding must preserve the single-runtime
// contracts globally:
//
//  1. global conservation — the merged Stats satisfy submitted = accurate +
//     approximate + dropped, agree with the instrumented task bodies, and
//     equal the sum of the per-shard snapshots — no task is lost or
//     double-counted by routing;
//  2. specials — significance-1.0 tasks run accurately and 0.0 tasks never
//     do, on whatever shard they landed;
//  3. ratio floor — the merged provided ratio over policy-decided tasks is
//     at least the global requested ratio minus the per-policy slack,
//     summed across shard-local quota epochs (each shard rounds its own
//     windows, so the slack scales with shards × waves); the per-shard trim
//     controllers may only raise it;
//  4. energy additivity — with every task forced accurate, the router's
//     merged joules are bit-identical to a single runtime executing the
//     same stream: the merge sums busy nanoseconds exactly (integer) and
//     multiplies once, so no float reassociation can leak in.
//
// Scenarios are generated from fixed seeds; tolerances are
// scheduling-independent, so the suite also passes under -race.

// shardScenario is one randomized cross-shard property case.
type shardScenario struct {
	shards    int
	placement PlacementKind
	kind      sig.PolicyKind
	workers   int // per shard
	ratio     float64
	sigs      []float64
	batch     bool
	waves     int
	noApprox  int // omit the approximate body from every noApprox-th task
}

func (sc shardScenario) hasApprox(i int) bool {
	return sc.noApprox == 0 || i%sc.noApprox != 0
}

// shardRatioSlack bounds how far below the global requested ratio the
// merged provided ratio may land over n policy-decided tasks. Per-shard
// quota epochs (waves) each round independently, so the single-runtime
// slack of sig's invariant suite scales by the shard count for the
// epoch-rounding policies.
func shardRatioSlack(kind sig.PolicyKind, shards, workersPerShard, waves, n int) float64 {
	if n == 0 {
		return 0
	}
	epochs := float64(max(waves, 1) * shards)
	switch kind {
	case sig.PolicyAccurate:
		return 0
	case sig.PolicyGTB, sig.PolicyGTBMaxBuffer:
		// Round-to-nearest plus one task of clamped window carry, per
		// shard-local wave epoch.
		return 2.0 * epochs / float64(n)
	case sig.PolicyPerforation:
		// One task of error-diffusion residue per shard (the accumulators
		// are shard-local), plus fixed-point quantization.
		return 1.5 * float64(shards) / float64(n)
	case sig.PolicyLQH:
		// Per-worker drift correctors, now workers × shards of them.
		return 0.1 + float64(workersPerShard*shards)/float64(n) + 1e-9
	}
	panic("unreachable")
}

// runShardScenario executes the scenario through a Router and returns the
// instrumented outcome, the merged group stats and Wait's provided ratio.
func runShardScenario(t *testing.T, sc shardScenario) ([]atomic.Bool, []atomic.Bool, sig.GroupStats, float64) {
	t.Helper()
	r, err := New(Config{
		Shards:    sc.shards,
		Placement: sc.placement,
		Runtime:   sig.Config{Workers: sc.workers, Policy: sc.kind},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Group("inv", sc.ratio)
	n := len(sc.sigs)
	ranAcc := make([]atomic.Bool, n)
	ranApx := make([]atomic.Bool, n)

	waves := max(sc.waves, 1)
	per := (n + waves - 1) / waves
	provided := math.NaN()
	for lo := 0; lo < n; lo += per {
		hi := min(lo+per, n)
		specs := make([]sig.TaskSpec, 0, hi-lo)
		for i := lo; i < hi; i++ {
			i := i
			s := sc.sigs[i]
			if s == 0 {
				s = -1 // batch spelling of the special 0.0
			}
			spec := sig.TaskSpec{
				Fn:           func() { ranAcc[i].Store(true) },
				Significance: s,
				HasCost:      true, CostAccurate: 10, CostApprox: 1,
			}
			if sc.hasApprox(i) {
				spec.Approx = func() { ranApx[i].Store(true) }
			}
			specs = append(specs, spec)
		}
		if sc.batch {
			r.SubmitBatch(g, specs)
		} else {
			for _, spec := range specs {
				r.Submit(g, spec)
			}
		}
		provided = r.Wait(g)
	}
	return ranAcc, ranApx, g.Stats(), provided
}

// checkShardInvariants asserts the cross-shard contracts; shared with
// FuzzShardRouting.
func checkShardInvariants(t *testing.T, sc shardScenario, r *Router, g *Group, ranAcc, ranApx []atomic.Bool, gs sig.GroupStats, provided float64) {
	t.Helper()
	n := len(sc.sigs)

	// 1. Global conservation, against both the bodies and the shard sum.
	if gs.Submitted != int64(n) {
		t.Errorf("merged submitted %d, want %d", gs.Submitted, n)
	}
	if got := gs.Accurate + gs.Approximate + gs.Dropped; got != gs.Submitted {
		t.Errorf("merged decided %d (acc %d + approx %d + drop %d) != submitted %d",
			got, gs.Accurate, gs.Approximate, gs.Dropped, gs.Submitted)
	}
	acc, apx, drop := int64(0), int64(0), int64(0)
	for i := range sc.sigs {
		switch {
		case ranAcc[i].Load() && ranApx[i].Load():
			t.Fatalf("task %d ran both bodies", i)
		case ranAcc[i].Load():
			acc++
		case ranApx[i].Load():
			apx++
		default:
			drop++
		}
	}
	if acc != gs.Accurate || apx != gs.Approximate || drop != gs.Dropped {
		t.Errorf("bodies ran %d/%d/%d but merged Stats says %d/%d/%d",
			acc, apx, drop, gs.Accurate, gs.Approximate, gs.Dropped)
	}
	if r != nil && g != nil {
		// Start from the retirement account (drained/replaced incarnations),
		// then add every occupied slot; empty slots contribute zero.
		g.retiredMu.Lock()
		sum := sig.GroupStats{
			Submitted:   g.retired.Submitted,
			Accurate:    g.retired.Accurate,
			Approximate: g.retired.Approximate,
			Dropped:     g.retired.Dropped,
		}
		g.retiredMu.Unlock()
		for i := 0; i < r.Shards(); i++ {
			p := g.Part(i)
			if p == nil {
				continue
			}
			ps := p.Stats()
			sum.Submitted += ps.Submitted
			sum.Accurate += ps.Accurate
			sum.Approximate += ps.Approximate
			sum.Dropped += ps.Dropped
		}
		if sum.Submitted != gs.Submitted || sum.Accurate != gs.Accurate ||
			sum.Approximate != gs.Approximate || sum.Dropped != gs.Dropped {
			t.Errorf("shard sum %+v disagrees with merge %+v", sum, gs)
		}
	}

	// 2. Specials hold on whatever shard the task landed.
	for i, s := range sc.sigs {
		if s >= 1.0 && !ranAcc[i].Load() {
			t.Errorf("significance-1.0 task %d did not run accurately", i)
		}
		if s <= 0.0 && ranAcc[i].Load() {
			t.Errorf("significance-0.0 task %d ran accurately", i)
		}
	}

	// 3. Merged ratio floor over policy-decided tasks.
	decided, decidedAcc := 0, 0
	for i, s := range sc.sigs {
		if s > 0 && s < 1 {
			decided++
			if ranAcc[i].Load() {
				decidedAcc++
			}
		}
	}
	if decided > 0 {
		prov := float64(decidedAcc) / float64(decided)
		floor := sc.ratio - shardRatioSlack(sc.kind, sc.shards, sc.workers, sc.waves, decided)
		if prov < floor-1e-9 {
			t.Errorf("%v/%v at %d shards: merged provided ratio %.4f over %d policy-decided tasks below requested %.4f (slack floor %.4f)",
				sc.kind, sc.placement, sc.shards, prov, decided, sc.ratio, floor)
		}
	}

	// 4. Wait's merged return value is sane and matches the merged Stats.
	if math.IsNaN(provided) {
		t.Errorf("Wait returned NaN")
	}
	if math.Abs(provided-gs.ProvidedRatio) > 1e-9 {
		t.Errorf("Wait returned %.4f but merged Stats says %.4f", provided, gs.ProvidedRatio)
	}
}

// TestShardInvariants is the cross-shard property suite entry point: every
// placement policy × sig policy, randomized streams, 1/2/8 shards.
func TestShardInvariants(t *testing.T) {
	kinds := []sig.PolicyKind{sig.PolicyAccurate, sig.PolicyGTB, sig.PolicyGTBMaxBuffer, sig.PolicyLQH, sig.PolicyPerforation}
	placements := []PlacementKind{PlaceRoundRobin, PlaceLeastLoad, PlaceCostAffinity}
	ratios := []float64{0, 0.1, 0.33, 0.5, 0.77, 1}
	shardCounts := []int{1, 2, 8}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for trial := 0; trial < 9; trial++ {
				r := rand.New(rand.NewSource(int64(9000*int(kind) + trial)))
				n := 150 + r.Intn(350)
				sigs := make([]float64, n)
				for i := range sigs {
					switch r.Intn(5) {
					case 0:
						sigs[i] = 0.0
					case 1:
						sigs[i] = 1.0
					default:
						sigs[i] = r.Float64()
					}
				}
				sc := shardScenario{
					shards:    shardCounts[trial%len(shardCounts)],
					placement: placements[trial%len(placements)],
					kind:      kind,
					workers:   1 + r.Intn(3),
					ratio:     ratios[r.Intn(len(ratios))],
					sigs:      sigs,
					batch:     trial%2 == 1,
					waves:     1 + r.Intn(3),
					noApprox:  []int{0, 0, 2, 3}[r.Intn(4)],
				}
				name := fmt.Sprintf("trial%02d-%dx-%s-r%.2f-batch%v", trial, sc.shards, sc.placement, sc.ratio, sc.batch)
				t.Run(name, func(t *testing.T) {
					ranAcc, ranApx, gs, provided := runShardScenario(t, sc)
					checkShardInvariants(t, sc, nil, nil, ranAcc, ranApx, gs, provided)
				})
			}
		})
	}
}

// TestShardEnergyAdditivity pins invariant 4 exactly: a forced-accurate
// stream with declared costs produces bit-identical merged joules at 1, 2
// and 8 shards — equal to the single-runtime golden — because the merge
// sums busy nanoseconds as integers and multiplies by the wattage once.
// The busy-ns totals are compared too: additivity must hold in the exact
// domain, not just after rounding.
func TestShardEnergyAdditivity(t *testing.T) {
	const n = 500
	costs := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range costs {
		costs[i] = float64(10 + rng.Intn(100_000))
	}
	stream := func() []sig.TaskSpec {
		specs := make([]sig.TaskSpec, n)
		for i := range specs {
			specs[i] = sig.TaskSpec{
				Fn:      func() {},
				HasCost: true, CostAccurate: costs[i], CostApprox: 0,
			}
		}
		return specs
	}

	// Single-runtime golden.
	rt, err := sig.New(sig.Config{Workers: 2, Policy: sig.PolicyAccurate})
	if err != nil {
		t.Fatal(err)
	}
	rt.SubmitBatch(nil, stream())
	rt.Wait(nil)
	rt.Close()
	golden := rt.Energy()
	if golden.Busy == 0 {
		t.Fatal("golden run accrued no busy time")
	}

	for _, shards := range []int{1, 2, 8} {
		for _, placement := range []PlacementKind{PlaceRoundRobin, PlaceLeastLoad, PlaceCostAffinity} {
			r, err := New(Config{
				Shards:    shards,
				Placement: placement,
				Runtime:   sig.Config{Workers: 2, Policy: sig.PolicyAccurate},
			})
			if err != nil {
				t.Fatal(err)
			}
			g := r.Group("e", 1.0)
			r.SubmitBatch(g, stream())
			ws := r.WaitPhase(g)
			r.Close()
			rep := r.Energy()
			if rep.Busy != golden.Busy {
				t.Errorf("%d shards/%v: merged busy %v != golden %v (exact integer sum broken)",
					shards, placement, rep.Busy, golden.Busy)
			}
			if math.Float64bits(rep.Joules) != math.Float64bits(golden.Joules) {
				t.Errorf("%d shards/%v: merged joules %v not bit-identical to golden %v",
					shards, placement, rep.Joules, golden.Joules)
			}
			if math.Float64bits(ws.Joules) != math.Float64bits(golden.Joules) {
				t.Errorf("%d shards/%v: merged wave joules %v not bit-identical to golden %v",
					shards, placement, ws.Joules, golden.Joules)
			}
		}
	}
}

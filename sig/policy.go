package sig

import (
	"math"
	"sort"
)

// PolicyKind selects one of the built-in accuracy policies.
type PolicyKind int

const (
	// PolicyAccurate executes every task accurately (the baseline).
	PolicyAccurate PolicyKind = iota
	// PolicyGTB is Global Task Buffering: tasks are buffered up to a
	// window, then the most significant fraction of each window runs
	// accurately. Larger windows trade decision latency for precision.
	PolicyGTB
	// PolicyGTBMaxBuffer is GTB with an unbounded window: every task is
	// buffered until taskwait, so the requested ratio is met exactly and
	// the accurate set is exactly the most significant tasks (the oracle
	// among the online policies).
	PolicyGTBMaxBuffer
	// PolicyLQH is Local Queue History: each worker decides at dequeue
	// time from a local history of recently seen significance values,
	// avoiding any global synchronization.
	PolicyLQH
	// PolicyPerforation ignores significance and drops tasks outright to
	// meet the ratio — the loop-perforation baseline the paper compares
	// against.
	PolicyPerforation
)

func (k PolicyKind) valid() bool {
	return k >= PolicyAccurate && k <= PolicyPerforation
}

// String returns the short name used throughout the evaluation output.
func (k PolicyKind) String() string {
	switch k {
	case PolicyAccurate:
		return "Accurate"
	case PolicyGTB:
		return "GTB"
	case PolicyGTBMaxBuffer:
		return "GTB(max)"
	case PolicyLQH:
		return "LQH"
	case PolicyPerforation:
		return "Perforation"
	}
	return "unknown"
}

// Decision is the outcome of a policy for one task.
type Decision uint8

const (
	// decideNone is the zero Decision of a not-yet-decided task.
	decideNone Decision = iota
	// DecideAccurate runs the accurate body.
	DecideAccurate
	// DecideApprox runs the approximate body (or skips the task if it
	// has none).
	DecideApprox
	// DecideDrop skips the task entirely without running any body.
	DecideDrop
	// DecideAtWorker defers the decision to the dequeuing worker, which
	// resolves it through Policy.WorkerDecide.
	DecideAtWorker
)

// Default policy parameters.
const (
	DefaultGTBWindow  = 32
	DefaultLQHHistory = 32
)

// Policy decides, per task, whether to run the accurate or the approximate
// version, from the task's significance and its group's target ratio. One
// policy instance serves one group. Submit and Flush are serialized by the
// group lock; WorkerDecide may be called concurrently by different workers
// (with distinct worker ids) and must only touch per-worker state.
//
// Custom policies plug in through Config.NewPolicy without touching the
// scheduler: a policy only annotates tasks with a Decision.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Submit offers a newly submitted task. The policy either decides
	// tasks now — returning every task that became ready, in dispatch
	// order — or buffers the task and returns nil.
	Submit(t *Task) []*Task
	// Flush decides all buffered tasks; called at taskwait and Close.
	Flush() []*Task
	// WorkerDecide resolves a task the policy emitted with
	// DecideAtWorker; worker identifies the calling worker goroutine.
	WorkerDecide(worker int, t *Task) Decision
}

// newPolicy builds the built-in policy selected by cfg for group g.
func newPolicy(cfg Config, g *Group, workers int) Policy {
	switch cfg.Policy {
	case PolicyAccurate:
		return accuratePolicy{}
	case PolicyGTB:
		w := cfg.GTBWindow
		if w == 0 {
			w = DefaultGTBWindow
		}
		return &gtbPolicy{g: g, window: w}
	case PolicyGTBMaxBuffer:
		return &gtbPolicy{g: g, window: 0}
	case PolicyLQH:
		h := cfg.LQHHistory
		if h == 0 {
			h = DefaultLQHHistory
		}
		return newLQHPolicy(g, workers, h)
	case PolicyPerforation:
		return &perforationPolicy{g: g}
	}
	panic("sig: unreachable policy kind")
}

// accuratePolicy runs everything accurately.
type accuratePolicy struct{}

func (accuratePolicy) Name() string { return PolicyAccurate.String() }

func (accuratePolicy) Submit(t *Task) []*Task {
	t.Decision = DecideAccurate
	return []*Task{t}
}

func (accuratePolicy) Flush() []*Task { return nil }

func (accuratePolicy) WorkerDecide(int, *Task) Decision { return DecideAccurate }

// perforationPolicy drops a significance-blind fraction of tasks using an
// error-diffusion accumulator, so any prefix of the stream satisfies the
// ratio within one task.
type perforationPolicy struct {
	g   *Group
	acc float64
}

func (p *perforationPolicy) Name() string { return PolicyPerforation.String() }

func (p *perforationPolicy) Submit(t *Task) []*Task {
	p.acc += p.g.Ratio()
	if p.acc >= 1-1e-9 {
		p.acc -= 1
		t.Decision = DecideAccurate
	} else {
		t.Decision = DecideDrop
	}
	return []*Task{t}
}

func (p *perforationPolicy) Flush() []*Task { return nil }

func (p *perforationPolicy) WorkerDecide(int, *Task) Decision { return DecideAccurate }

// gtbPolicy is Global Task Buffering. window==0 means unbounded buffering
// (PolicyGTBMaxBuffer): decisions happen only at Flush, giving the exact
// top-ratio-by-significance assignment.
type gtbPolicy struct {
	g      *Group
	window int
	buf    []*Task

	decidedTotal    int64
	decidedAccurate int64
}

func (p *gtbPolicy) Name() string {
	if p.window == 0 {
		return PolicyGTBMaxBuffer.String()
	}
	return PolicyGTB.String()
}

func (p *gtbPolicy) Submit(t *Task) []*Task {
	p.buf = append(p.buf, t)
	if p.window > 0 && len(p.buf) >= p.window {
		return p.decide()
	}
	return nil
}

func (p *gtbPolicy) Flush() []*Task { return p.decide() }

// decide ranks the buffered tasks by significance and marks the top share
// accurate. The accurate quota is computed against the running totals, so
// per-window rounding errors do not accumulate across windows.
func (p *gtbPolicy) decide() []*Task {
	n := len(p.buf)
	if n == 0 {
		return nil
	}
	ratio := p.g.Ratio()
	want := int(math.Round(ratio*float64(p.decidedTotal+int64(n)))) - int(p.decidedAccurate)
	if want < 0 {
		want = 0
	}
	if want > n {
		want = n
	}
	ranked := append([]*Task(nil), p.buf...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Significance != ranked[j].Significance {
			return ranked[i].Significance > ranked[j].Significance
		}
		return ranked[i].Seq < ranked[j].Seq
	})
	for i, t := range ranked {
		if i < want {
			t.Decision = DecideAccurate
		} else {
			t.Decision = DecideApprox
		}
	}
	out := p.buf
	p.buf = nil
	p.decidedTotal += int64(n)
	p.decidedAccurate += int64(want)
	return out // dispatch in submission order
}

func (p *gtbPolicy) WorkerDecide(int, *Task) Decision { return DecideAccurate }

// lqhPolicy is Local Queue History: tasks are forwarded to workers
// undecided, and each worker classifies them against a private ring of
// recently seen significance values — no shared state, no locks on the
// decision path. A small drift corrector keeps the locally provided ratio
// near the target when the significance distribution defeats the histogram
// estimate.
type lqhPolicy struct {
	g       *Group
	history int
	states  []lqhState
}

type lqhState struct {
	ring     []float64
	n        int
	next     int
	total    int64
	accurate int64
	_        [24]byte // pad to reduce false sharing between worker states
}

func newLQHPolicy(g *Group, workers, history int) *lqhPolicy {
	p := &lqhPolicy{g: g, history: history, states: make([]lqhState, workers)}
	for i := range p.states {
		p.states[i].ring = make([]float64, 0, history)
	}
	return p
}

func (p *lqhPolicy) Name() string { return PolicyLQH.String() }

func (p *lqhPolicy) Submit(t *Task) []*Task {
	t.Decision = DecideAtWorker
	return []*Task{t}
}

func (p *lqhPolicy) Flush() []*Task { return nil }

// lqhDriftTolerance bounds how far the locally provided ratio may drift
// from the target before the histogram estimate is overridden.
const lqhDriftTolerance = 0.10

func (p *lqhPolicy) WorkerDecide(worker int, t *Task) Decision {
	st := &p.states[worker]
	ratio := p.g.Ratio()
	var accurate bool
	switch {
	case ratio >= 1:
		accurate = true
	case ratio <= 0:
		accurate = false
	case st.n < min(8, p.history):
		// Cold start: assume significance ~ U(0,1), so the top-ratio
		// quantile boundary sits at 1-ratio. Capped by the history
		// length so short histories still reach the histogram path.
		accurate = t.Significance >= 1-ratio
	default:
		// Histogram estimate: the task runs accurately if its
		// significance lands in the top `ratio` fraction of the
		// local history.
		above := 0
		for _, h := range st.ring[:st.n] {
			if h > t.Significance {
				above++
			}
		}
		accurate = float64(above)/float64(st.n) < ratio
	}
	// Drift correction against the locally provided ratio.
	if st.total > 0 {
		provided := float64(st.accurate) / float64(st.total)
		if provided > ratio+lqhDriftTolerance {
			accurate = false
		} else if provided < ratio-lqhDriftTolerance {
			accurate = true
		}
	}
	// Record the observation in the ring.
	if len(st.ring) < p.history {
		st.ring = append(st.ring, t.Significance)
		st.n = len(st.ring)
	} else {
		st.ring[st.next] = t.Significance
		st.next = (st.next + 1) % p.history
	}
	st.total++
	if accurate {
		st.accurate++
		return DecideAccurate
	}
	return DecideApprox
}

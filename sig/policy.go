package sig

import (
	"math"
	"sync/atomic"
)

// PolicyKind selects one of the built-in accuracy policies.
type PolicyKind int

const (
	// PolicyAccurate executes every task accurately (the baseline).
	PolicyAccurate PolicyKind = iota
	// PolicyGTB is Global Task Buffering: tasks are buffered up to a
	// window, then the most significant fraction of each window runs
	// accurately. Larger windows trade decision latency for precision.
	PolicyGTB
	// PolicyGTBMaxBuffer is GTB with an unbounded window: every task is
	// buffered until taskwait, so the requested ratio is met exactly and
	// the accurate set is exactly the most significant tasks (the oracle
	// among the online policies).
	PolicyGTBMaxBuffer
	// PolicyLQH is Local Queue History: each worker decides at dequeue
	// time from a local history of recently seen significance values,
	// avoiding any global synchronization.
	PolicyLQH
	// PolicyPerforation ignores significance and drops tasks outright to
	// meet the ratio — the loop-perforation baseline the paper compares
	// against.
	PolicyPerforation
)

func (k PolicyKind) valid() bool {
	return k >= PolicyAccurate && k <= PolicyPerforation
}

// String returns the short name used throughout the evaluation output.
func (k PolicyKind) String() string {
	switch k {
	case PolicyAccurate:
		return "Accurate"
	case PolicyGTB:
		return "GTB"
	case PolicyGTBMaxBuffer:
		return "GTB(max)"
	case PolicyLQH:
		return "LQH"
	case PolicyPerforation:
		return "Perforation"
	}
	return "unknown"
}

// Decision is the outcome of a policy for one task.
type Decision uint8

const (
	// decideNone is the zero Decision of a not-yet-decided task.
	decideNone Decision = iota
	// DecideAccurate runs the accurate body.
	DecideAccurate
	// DecideApprox runs the approximate body (or skips the task if it
	// has none).
	DecideApprox
	// DecideDrop skips the task entirely without running any body.
	DecideDrop
	// DecideAtWorker defers the decision to the dequeuing worker, which
	// resolves it through Policy.WorkerDecide.
	DecideAtWorker
)

// Default policy parameters.
const (
	DefaultGTBWindow  = 32
	DefaultLQHHistory = 32
)

// Policy decides, per task, whether to run the accurate or the approximate
// version, from the task's significance and its group's target ratio. One
// policy instance serves one group. Submit and Flush are serialized by the
// group lock unless the policy implements LocklessSubmitter; WorkerDecide
// may be called concurrently by different workers (with distinct worker
// ids) and must only touch per-worker state.
//
// Custom policies plug in through Config.NewPolicy without touching the
// scheduler: a policy only annotates tasks with a Decision. A policy must
// hand every task back exactly once across Submit and Flush — completed
// tasks are recycled by the runtime, so retaining a returned *Task is an
// error.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Submit offers a newly submitted task. A policy that decides the
	// task immediately returns it as ready (the allocation-free fast
	// path); a policy that buffers returns (nil, nil) until a window
	// fills, then returns the decided window as batch in dispatch order.
	// ready and batch are never both non-empty for built-in policies, but
	// callers must handle both.
	Submit(t *Task) (ready *Task, batch []*Task)
	// Flush decides all buffered tasks; called at taskwait and Close.
	Flush() []*Task
	// WorkerDecide resolves a task the policy emitted with
	// DecideAtWorker; worker identifies the calling worker goroutine.
	WorkerDecide(worker int, t *Task) Decision
}

// LocklessSubmitter marks a Policy whose Submit and Flush need no external
// serialization (they are either stateless or synchronize internally). The
// runtime skips the per-group policy lock on the submit path for such
// policies, which keeps independent submitters contention-free.
type LocklessSubmitter interface {
	LocklessSubmit()
}

// BufferFlusher is an optional Policy extension for buffering policies:
// FlushInto is Flush, but appends the decided tasks to dst (returning the
// extended slice) instead of allocating a fresh one. The runtime's taskwait
// path hands buffering policies a pooled buffer through it, which takes the
// per-wave flush allocation off the steady-state path (see Runtime.drain).
// The same hand-back-exactly-once contract as Flush applies.
type BufferFlusher interface {
	FlushInto(dst []*Task) []*Task
}

// newPolicy builds the built-in policy selected by cfg for group g.
func newPolicy(cfg Config, g *Group, workers int) Policy {
	switch cfg.Policy {
	case PolicyAccurate:
		return accuratePolicy{}
	case PolicyGTB:
		w := cfg.GTBWindow
		if w == 0 {
			w = DefaultGTBWindow
		}
		return &gtbPolicy{g: g, window: w}
	case PolicyGTBMaxBuffer:
		return &gtbPolicy{g: g, window: 0}
	case PolicyLQH:
		h := cfg.LQHHistory
		if h == 0 {
			h = DefaultLQHHistory
		}
		return newLQHPolicy(g, workers, h)
	case PolicyPerforation:
		return &perforationPolicy{g: g}
	}
	panic("sig: unreachable policy kind")
}

// accuratePolicy runs everything accurately.
type accuratePolicy struct{}

func (accuratePolicy) Name() string { return PolicyAccurate.String() }

func (accuratePolicy) LocklessSubmit() {}

func (accuratePolicy) Submit(t *Task) (*Task, []*Task) {
	t.Decision = DecideAccurate
	return t, nil
}

func (accuratePolicy) Flush() []*Task { return nil }

func (accuratePolicy) WorkerDecide(int, *Task) Decision { return DecideAccurate }

// perforationPolicy drops a significance-blind fraction of tasks using an
// error-diffusion accumulator, so any prefix of the stream satisfies the
// ratio within one task. The accumulator is a 32.32 fixed-point atomic: one
// fetch-add per task, no lock, and a task runs accurately exactly when the
// addition carries into the integer half.
type perforationPolicy struct {
	g   *Group
	acc atomic.Uint64
}

func (p *perforationPolicy) Name() string { return PolicyPerforation.String() }

func (p *perforationPolicy) LocklessSubmit() {}

func (p *perforationPolicy) Submit(t *Task) (*Task, []*Task) {
	delta := uint64(math.Round(p.g.Ratio() * (1 << 32)))
	acc := p.acc.Add(delta)
	if acc>>32 != (acc-delta)>>32 {
		t.Decision = DecideAccurate
	} else {
		t.Decision = DecideDrop
	}
	return t, nil
}

func (p *perforationPolicy) Flush() []*Task { return nil }

func (p *perforationPolicy) WorkerDecide(int, *Task) Decision { return DecideAccurate }

// gtbPolicy is Global Task Buffering. window==0 means unbounded buffering
// (PolicyGTBMaxBuffer): decisions happen only at Flush, giving the exact
// top-ratio-by-significance assignment.
type gtbPolicy struct {
	g      *Group
	window int
	buf    []*Task
	// scratch is the reusable ranking workspace of decide; it only lives
	// between the entry and exit of one decide call (always under the
	// group's policy lock).
	scratch []*Task

	decidedTotal    int64
	decidedAccurate int64
}

func (p *gtbPolicy) Name() string {
	if p.window == 0 {
		return PolicyGTBMaxBuffer.String()
	}
	return PolicyGTB.String()
}

func (p *gtbPolicy) Submit(t *Task) (*Task, []*Task) {
	p.buf = append(p.buf, t)
	if p.window > 0 && len(p.buf) >= p.window {
		return nil, p.decide()
	}
	return nil, nil
}

// Flush decides the remaining buffer and closes the wave's quota epoch: the
// running totals the per-window drift correction accumulates against are
// reset, so a ratio retargeted between waves (Group.SetRatio, the adaptive
// controller's knob) applies to the next wave alone instead of fighting the
// previous waves' accounting. Without the reset, a wave after a ratio
// change over- or under-shoots to drag the *cumulative* ratio onto the new
// target — a second integrator in the control loop that sends it into a
// limit cycle.
func (p *gtbPolicy) Flush() []*Task {
	return p.FlushInto(nil)
}

// FlushInto is the allocation-free taskwait flush (BufferFlusher): the
// decided buffer is appended to dst — typically a pooled dispatch buffer —
// instead of a fresh slice, so a steady-state wave flush costs no heap.
func (p *gtbPolicy) FlushInto(dst []*Task) []*Task {
	out := p.decideInto(dst)
	p.decidedTotal, p.decidedAccurate = 0, 0
	return out
}

// decide hands out the decided window as a fresh slice: the window-boundary
// path of Submit, where the returned batch must outlive the policy lock
// while the dispatcher enqueues it.
func (p *gtbPolicy) decide() []*Task {
	return p.decideInto(nil)
}

// decideInto ranks the buffered tasks by significance and marks the top
// share accurate, appending them to dst in submission order. The accurate
// quota is computed against the running totals, so per-window rounding
// errors do not accumulate across windows. Ranking uses an O(n) quickselect
// over (significance desc, Seq asc) — a strict total order, so the accurate
// set is identical to what a stable sort would pick.
func (p *gtbPolicy) decideInto(dst []*Task) []*Task {
	n := len(p.buf)
	if n == 0 {
		return dst
	}
	ratio := p.g.Ratio()
	want := int(math.Round(ratio*float64(p.decidedTotal+int64(n)))) - int(p.decidedAccurate)
	if want < 0 {
		want = 0
	}
	if want > n {
		want = n
	}
	switch want {
	case 0:
		for _, t := range p.buf {
			t.Decision = DecideApprox
		}
	case n:
		for _, t := range p.buf {
			t.Decision = DecideAccurate
		}
	default:
		p.scratch = append(p.scratch[:0], p.buf...)
		selectTopK(p.scratch, want)
		for i, t := range p.scratch {
			if i < want {
				t.Decision = DecideAccurate
			} else {
				t.Decision = DecideApprox
			}
			p.scratch[i] = nil // do not pin recycled tasks until next decide
		}
	}
	// Hand out a copy (appended to dst) and keep the grown buffer array for
	// the next window: the copy is owned by the dispatcher (which may still
	// be enqueueing it while new submissions buffer), while p.buf never pays
	// append growth again in steady state.
	out := append(dst, p.buf...)
	clear(p.buf)
	p.buf = p.buf[:0]
	p.decidedTotal += int64(n)
	p.decidedAccurate += int64(want)
	return out // dispatch in submission order
}

func (p *gtbPolicy) WorkerDecide(int, *Task) Decision { return DecideAccurate }

// taskBefore is the GTB ranking order: higher significance first, then lower
// sequence number — a strict total order (Seq is unique), which makes the
// top-k set deterministic.
func taskBefore(a, b *Task) bool {
	if a.Significance != b.Significance {
		return a.Significance > b.Significance
	}
	return a.Seq < b.Seq
}

// selectTopK partially orders s so that the k top-ranked tasks (per
// taskBefore) occupy s[:k], in O(len(s)) expected time. Only the membership
// of s[:k] is defined, not its internal order.
func selectTopK(s []*Task, k int) {
	lo, hi := 0, len(s)-1
	for lo < hi {
		p := partitionTasks(s, lo, hi)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

// partitionTasks partitions s[lo:hi+1] around a median-of-three pivot and
// returns the pivot's final index: everything before it ranks higher
// (taskBefore), everything after ranks lower.
func partitionTasks(s []*Task, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if taskBefore(s[mid], s[lo]) {
		s[lo], s[mid] = s[mid], s[lo]
	}
	if taskBefore(s[hi], s[lo]) {
		s[lo], s[hi] = s[hi], s[lo]
	}
	if taskBefore(s[hi], s[mid]) {
		s[mid], s[hi] = s[hi], s[mid]
	}
	pivot := s[mid]
	s[mid], s[hi] = s[hi], s[mid] // park pivot at hi
	i := lo
	for j := lo; j < hi; j++ {
		if taskBefore(s[j], pivot) {
			s[i], s[j] = s[j], s[i]
			i++
		}
	}
	s[i], s[hi] = s[hi], s[i]
	return i
}

// lqhPolicy is Local Queue History: tasks are forwarded to workers
// undecided, and each worker classifies them against a private ring of
// recently seen significance values — no shared state, no locks on the
// decision path. A small drift corrector keeps the locally provided ratio
// near the target when the significance distribution defeats the histogram
// estimate.
type lqhPolicy struct {
	g       *Group
	history int
	states  []lqhState
}

type lqhState struct {
	ring     []float64
	n        int
	next     int
	total    int64
	accurate int64
	_        [24]byte // pad to reduce false sharing between worker states
}

func newLQHPolicy(g *Group, workers, history int) *lqhPolicy {
	p := &lqhPolicy{g: g, history: history, states: make([]lqhState, workers)}
	for i := range p.states {
		p.states[i].ring = make([]float64, 0, history)
	}
	return p
}

func (p *lqhPolicy) Name() string { return PolicyLQH.String() }

func (p *lqhPolicy) LocklessSubmit() {}

func (p *lqhPolicy) Submit(t *Task) (*Task, []*Task) {
	t.Decision = DecideAtWorker
	return t, nil
}

func (p *lqhPolicy) Flush() []*Task { return nil }

// lqhDriftTolerance bounds how far the locally provided ratio may drift
// from the target before the histogram estimate is overridden.
const lqhDriftTolerance = 0.10

func (p *lqhPolicy) WorkerDecide(worker int, t *Task) Decision {
	st := &p.states[worker]
	ratio := p.g.Ratio()
	var accurate bool
	switch {
	case ratio >= 1:
		accurate = true
	case ratio <= 0:
		accurate = false
	case st.n < min(8, p.history):
		// Cold start: assume significance ~ U(0,1), so the top-ratio
		// quantile boundary sits at 1-ratio. Capped by the history
		// length so short histories still reach the histogram path.
		accurate = t.Significance >= 1-ratio
	default:
		// Histogram estimate: the task runs accurately if its
		// significance lands in the top `ratio` fraction of the
		// local history.
		above := 0
		for _, h := range st.ring[:st.n] {
			if h > t.Significance {
				above++
			}
		}
		accurate = float64(above)/float64(st.n) < ratio
	}
	// Drift correction against the locally provided ratio.
	if st.total > 0 {
		provided := float64(st.accurate) / float64(st.total)
		if provided > ratio+lqhDriftTolerance {
			accurate = false
		} else if provided < ratio-lqhDriftTolerance {
			accurate = true
		}
	}
	// Record the observation in the ring.
	if len(st.ring) < p.history {
		st.ring = append(st.ring, t.Significance)
		st.n = len(st.ring)
	} else {
		st.ring[st.next] = t.Significance
		st.next = (st.next + 1) % p.history
	}
	st.total++
	if accurate {
		st.accurate++
		return DecideAccurate
	}
	return DecideApprox
}

package sig

import "reflect"

// TaskOption configures a task at Submit time. The options mirror the
// clauses of the paper's #pragma omp task directive: label, significant,
// approxfun, in and out. Options write through the *Task they are handed;
// they must not retain it — tasks are pool-recycled after completion.
type TaskOption func(*Task)

// TaskSpec describes one task for Runtime.SubmitBatch: the struct-shaped
// equivalent of Submit's functional options, so a batch of fine-grained
// tasks can be submitted without per-task closure or option-slice overhead.
// The zero value of the cost fields means "measure execution time"; set
// HasCost to declare nominal costs as WithCost would (CostApprox 0 then
// means the approximation is a drop).
type TaskSpec struct {
	// Fn is the accurate task body (required).
	Fn func()
	// Approx is the optional approximate body (the approxfun clause).
	Approx func()
	// Significance in [0,1], clamped like WithSignificance. The zero
	// value means fully significant (1.0), mirroring Submit without a
	// WithSignificance option — so a plain work batch runs accurately
	// rather than being silently skipped. To request the special
	// always-approximate significance 0.0, set any negative value.
	Significance float64
	// HasCost declares CostAccurate/CostApprox as the task's nominal
	// costs (see WithCost); when false, execution time is measured.
	HasCost      bool
	CostAccurate float64
	CostApprox   float64
}

// WithLabel assigns the task to a group (the label clause).
func WithLabel(g *Group) TaskOption {
	return func(t *Task) { t.group = g }
}

// WithSignificance sets the task's significance (the significant clause),
// clamped to [0,1]. 1.0 forces accurate execution, 0.0 forces approximate
// execution; values in between are interpreted by the policy.
func WithSignificance(s float64) TaskOption {
	return func(t *Task) { t.Significance = clamp01(s) }
}

// WithApprox attaches the approximate task body (the approxfun clause). A
// task selected for approximate execution without one is skipped entirely,
// which is the model's task-dropping degradation.
func WithApprox(fn func()) TaskOption {
	return func(t *Task) { t.approx = fn }
}

// WithCost declares the task's nominal work in cost units (1 unit ≈ 1ns of
// nominal-frequency execution) for the accurate and approximate bodies.
// Declared costs feed the modeled energy account deterministically —
// immune to preemption and timer noise — instead of the measured execution
// time fallback. Pass approx 0 for a task whose approximation is a drop.
func WithCost(accurate, approx float64) TaskOption {
	return func(t *Task) {
		t.costAcc = accurate
		t.costApprox = approx
	}
}

// Range describes a span of memory touched by a task, as produced by
// SliceRange. Footprint declarations are advisory in this runtime: they feed
// the per-group footprint statistics (and future dependence tracking), they
// do not synchronize tasks.
type Range struct {
	Addr  uintptr
	Bytes int
}

// SliceRange describes the elements s[lo:hi] as a task footprint.
func SliceRange[T any](s []T, lo, hi int) Range {
	if lo < 0 || hi < lo || hi > len(s) {
		panic("sig: SliceRange bounds out of range")
	}
	size := int(reflect.TypeOf((*T)(nil)).Elem().Size())
	var addr uintptr
	if cap(s) > 0 {
		addr = reflect.ValueOf(s).Pointer() + uintptr(lo*size)
	}
	return Range{Addr: addr, Bytes: (hi - lo) * size}
}

// In declares the task's input footprint (the in clause).
func In(rs ...Range) TaskOption {
	return func(t *Task) { t.ins = append(t.ins, rs...) }
}

// Out declares the task's output footprint (the out clause).
func Out(rs ...Range) TaskOption {
	return func(t *Task) { t.outs = append(t.outs, rs...) }
}

package serve

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// paceRequest is one deterministic measured-time test request: premium
// significance (never degraded, so cost arithmetic stays exact), declared
// cost d nanoseconds, and a handler that advances the fake clock by exactly
// that much — the wave's measured wall time is the sum of what it admitted.
func paceRequest(fc *FakeClock, d time.Duration) Request {
	return Request{
		Significance: 1.0,
		Handler:      func() { fc.Advance(d) },
		CostAccurate: float64(d),
	}
}

// newPaceServer builds a Workers=1 fake-clock server: one worker makes
// "measured period × live workers" and "sum of admitted cost" the same
// quantity, so budget assertions are exact.
func newPaceServer(t *testing.T, mut func(*Config)) (*Server, *FakeClock) {
	t.Helper()
	fc := NewFakeClock()
	cfg := Config{
		Workers:    1,
		QueueLimit: 1024,
		WavePeriod: time.Millisecond,
		Clock:      fc,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, fc
}

// TestServeMeasuredPeriodEWMA pins the measured-time plumbing end to end:
// WaveReport.WallTime is the exact fake-clock advance of the wave, and
// MeasuredPeriod follows the deterministic integer EWMA
// (next = old + (sample-old)/4) sample by sample.
func TestServeMeasuredPeriodEWMA(t *testing.T) {
	s, fc := newPaceServer(t, func(c *Config) { c.WaveBudget = 1e9 })
	defer s.Close()

	if got := s.MeasuredPeriod(); got != s.cfg.WavePeriod {
		t.Fatalf("pre-measurement MeasuredPeriod %v, want configured %v", got, s.cfg.WavePeriod)
	}

	wave := func(d time.Duration) WaveReport {
		if _, err := s.Submit(paceRequest(fc, d)); err != nil {
			t.Fatal(err)
		}
		rep, _ := s.PaceWave()
		return rep
	}

	if rep := wave(2 * time.Millisecond); rep.WallTime != 2*time.Millisecond {
		t.Fatalf("WallTime %v, want the wave's exact 2ms advance", rep.WallTime)
	}
	if got := s.MeasuredPeriod(); got != 2*time.Millisecond {
		t.Fatalf("first sample MeasuredPeriod %v, want 2ms", got)
	}
	// Step the true wall time up to 4ms: the EWMA must walk the exact
	// integer trajectory toward it.
	for _, want := range []time.Duration{2_500_000, 2_875_000, 3_156_250} {
		wave(4 * time.Millisecond)
		if got := s.MeasuredPeriod(); got != want {
			t.Fatalf("EWMA %v, want %v", got, want)
		}
	}
}

// TestServeRetryAfterMeasuredPeriod is the repricing regression: once a
// wave has measured longer than the configured WavePeriod, the queue-full
// backoff hint must be priced in measured-period units. Pre-fix code priced
// waves × cfg.WavePeriod and sent clients back into a still-full queue.
func TestServeRetryAfterMeasuredPeriod(t *testing.T) {
	const cost = 4 * time.Millisecond // one wave's true wall time: 4x the period
	s, fc := newPaceServer(t, func(c *Config) {
		c.QueueLimit = 4
		c.WaveBudget = float64(cost)
	})
	defer s.Close()

	// One explicit wave (no pump running) establishes the measurement.
	if _, err := s.Submit(paceRequest(fc, cost)); err != nil {
		t.Fatal(err)
	}
	if rep := s.RunWave(); rep.WallTime != cost {
		t.Fatalf("measured wave wall %v, want %v", rep.WallTime, cost)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(paceRequest(fc, cost)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit(paceRequest(fc, cost))
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("expected OverloadError from the full queue, got %v", err)
	}
	// Backlog = 4 requests of one budget each -> 4 waves, each honestly
	// worth the measured 4ms, not the configured 1ms.
	if want := 4 * s.MeasuredPeriod(); oe.RetryAfter != want {
		t.Fatalf("RetryAfter %v, want %v (4 waves at the measured period %v)",
			oe.RetryAfter, want, s.MeasuredPeriod())
	}
	if oe.RetryAfter < 4*cost {
		t.Fatalf("RetryAfter %v under-prices 4 overrunning waves of %v", oe.RetryAfter, cost)
	}
}

// TestServePacerCountsOverruns pins the tick-coalescing fix: a wave whose
// wall time outruns the cadence is counted — Totals.Overruns, the report's
// Overrun flag, a zero next-wave delay — and the wave count tracks every
// PaceWave call; nothing is silently dropped the way the old fixed Ticker
// coalesced late ticks.
func TestServePacerCountsOverruns(t *testing.T) {
	s, fc := newPaceServer(t, func(c *Config) { c.WaveBudget = 1e9 })
	defer s.Close()

	// Wave 1 overruns: 4ms of work against the 1ms starting cadence.
	if _, err := s.Submit(paceRequest(fc, 4*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	rep, delay := s.PaceWave()
	if !rep.Overrun || delay != 0 {
		t.Fatalf("overrunning wave: Overrun=%v delay=%v, want true/0", rep.Overrun, delay)
	}
	if got := s.Totals().Overruns; got != 1 {
		t.Fatalf("Overruns %d after one overrunning wave, want 1", got)
	}
	// The pacer retimed to the measured 4ms, so an identical wave now fits
	// its cadence: no overrun, and the pacer owes no extra delay.
	if got := s.PacePeriod(); got != 4*time.Millisecond {
		t.Fatalf("cadence %v after retime, want the measured 4ms", got)
	}
	if _, err := s.Submit(paceRequest(fc, 4*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	rep, delay = s.PaceWave()
	if rep.Overrun || delay != 0 {
		t.Fatalf("retimed wave: Overrun=%v delay=%v, want false/0", rep.Overrun, delay)
	}
	// An empty wave underruns; the delay is the remaining cadence.
	rep, delay = s.PaceWave()
	if rep.Overrun || delay <= 0 {
		t.Fatalf("idle wave: Overrun=%v delay=%v, want false/positive", rep.Overrun, delay)
	}
	if tot := s.Totals(); tot.Overruns != 1 || tot.Waves != 3 {
		t.Fatalf("totals Overruns=%d Waves=%d, want 1 and 3 (every PaceWave counted)", tot.Overruns, tot.Waves)
	}
}

// TestServePacerBounds pins the cadence clamp: the EWMA may exceed
// MaxPeriod, but the pacer never paces outside [MinPeriod, MaxPeriod] —
// while RetryAfter keeps pricing with the unclamped, honest measurement.
func TestServePacerBounds(t *testing.T) {
	s, fc := newPaceServer(t, func(c *Config) {
		c.WaveBudget = 1e9
		c.MaxPeriod = 2 * time.Millisecond
	})
	defer s.Close()
	if _, err := s.Submit(paceRequest(fc, 40*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s.PaceWave()
	if got := s.PacePeriod(); got != 2*time.Millisecond {
		t.Fatalf("cadence %v, want clamped MaxPeriod 2ms", got)
	}
	if got := s.MeasuredPeriod(); got != 40*time.Millisecond {
		t.Fatalf("MeasuredPeriod %v, want the unclamped 40ms", got)
	}
}

// TestServePacedBudgetTracksMeasured: under the pacer, a configured
// WaveBudget is only the initial guess — after a measured wave, capacity is
// re-derived as effective measured period × live workers.
func TestServePacedBudgetTracksMeasured(t *testing.T) {
	s, fc := newPaceServer(t, func(c *Config) { c.WaveBudget = 1e6 })
	defer s.Close()
	if got := s.Budget(); got != 1e6 {
		t.Fatalf("initial budget %v, want the configured 1e6", got)
	}
	if _, err := s.Submit(paceRequest(fc, 4*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	rep, _ := s.PaceWave()
	if want := 4e6; s.Budget() != want || rep.Budget != want {
		t.Fatalf("paced budget %v (report %v), want %v = measured 4ms x 1 worker",
			s.Budget(), rep.Budget, want)
	}
}

// TestServeDefaultBudgetSoloShardedEquivalence pins the unified budget
// derivation: the default WaveBudget of a solo server with W workers equals
// that of a sharded server with the same W total workers, and the sharded
// per-wave rebuild (budgetPerShard × live) reproduces the same number — no
// drift between withDefaults' basis and the rebuild's.
func TestServeDefaultBudgetSoloShardedEquivalence(t *testing.T) {
	solo, err := New(Config{Workers: 4, WavePeriod: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	sharded, err := New(Config{Workers: 2, Shards: 2, WavePeriod: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	want := 4 * float64((2 * time.Millisecond).Nanoseconds())
	if got := solo.Budget(); got != want {
		t.Fatalf("solo default budget %v, want %v", got, want)
	}
	if got := sharded.Budget(); got != want {
		t.Fatalf("sharded default budget %v, want solo-equivalent %v", got, want)
	}
	// The fleet rebuild at a wave boundary must reproduce the same number
	// while all shards are live.
	sharded.RunWave()
	if got := sharded.Budget(); got != want {
		t.Fatalf("sharded budget %v after the per-wave rebuild, want %v", got, want)
	}
}

// TestServeStartLifecycle covers the pump's edges: a second Start is a
// no-op on the same pump, and Start after Close spawns nothing.
func TestServeStartLifecycle(t *testing.T) {
	s, _ := newPaceServer(t, nil)
	pump := func() chan struct{} {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.pumpStop
	}
	s.Start()
	first := pump()
	if first == nil {
		t.Fatal("Start spawned no pump")
	}
	s.Start()
	if pump() != first {
		t.Fatal("double Start replaced the pump instead of no-opping")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if pump() != first {
		t.Fatal("Close must not clear the pump record it already joined")
	}

	s2, _ := newPaceServer(t, nil)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s2.Start()
	if pump := func() chan struct{} {
		s2.mu.Lock()
		defer s2.mu.Unlock()
		return s2.pumpStop
	}(); pump != nil {
		t.Fatal("Start after Close spawned a pump goroutine")
	}
}

// TestServeCloseDuringPacedWaveDrains: Close called while the real-clock
// pacer has a wave in flight must drain cleanly — every accepted ticket
// resolves, and no goroutine (pump, workers) outlives Close.
func TestServeCloseDuringPacedWaveDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := New(Config{
		Workers:    2,
		QueueLimit: 1024,
		WavePeriod: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	var tks []*Ticket
	for i := 0; i < 16; i++ {
		tk, err := s.Submit(Request{
			Significance: 1.0,
			Handler:      func() { time.Sleep(time.Millisecond) },
			CostAccurate: float64(time.Millisecond),
		})
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	// Let the pacer take at least one wave in flight before shutting down.
	for s.Totals().Waves == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tks {
		select {
		case <-tk.Done():
		default:
			t.Fatalf("ticket %d unresolved after Close", i)
		}
	}
	if tot := s.Totals(); tot.Completed != 16 {
		t.Fatalf("completed %d of 16 accepted requests", tot.Completed)
	}
	// The pump and the engine workers must be gone; give the runtime a
	// moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Fatalf("%d goroutines outlive Close (baseline %d)", got-base, base)
	}
}

package serve

import (
	"errors"
	"math"
	"testing"
	"time"
)

// FuzzServeAdmission feeds adversarial request/wave schedules through the
// admission path and checks the serving contracts:
//
//   - every accepted ticket completes with exactly one outcome, and the
//     per-outcome totals conserve (accurate+degraded+dropped = completed =
//     accepted);
//   - accepted + rejected = attempted;
//   - each admission lane never exceeds its own slot share, and a Submit
//     is rejected only when its lane is at that share — the priority slice
//     can never be starved by bulk traffic, nor the bulk remainder by
//     premium traffic;
//   - the commanded ratio respects the MinRatio contract;
//   - Totals.Priority equals the premium requests that were accepted;
//   - the modeled energy account equals the declared cost of what actually
//     ran: accurate outcomes charge their accurate cost, degraded outcomes
//     their degraded cost, dropped outcomes exactly nothing (the runtime's
//     skipped-task accounting fix, exercised under adversarial schedules);
//   - with the fake clock driving measured wave time, every queue-full
//     rejection's RetryAfter covers at least one measured period — the
//     backoff hint can never under-price the server's own measurement.
//
// Input encoding (every byte string is valid):
//
//	data[0]  workers (1..4)
//	data[1]  queue limit (1..32; floored at 2 with a priority lane)
//	data[2]  wave budget, in accurate-request units (1..16)
//	data[3]  MinRatio, quantized to data[3]/255 * 0.8
//	data[4]  priority lane: 0 disables, else PriorityAt = 0.5 + (v%5)/10
//	data[5]  measured-period bit: 0 runs on the wall clock; else a
//	         FakeClock is injected and each handler advances it by
//	         (v%8+1) × 100µs — waves acquire fuzzer-chosen wall times
//	data[6:] op stream: 0 runs a wave; any other byte v submits a request
//	         with significance (v%11)/10, a degraded body iff v%3 != 0,
//	         and declared costs derived from v.
func FuzzServeAdmission(f *testing.F) {
	f.Add([]byte{1, 8, 4, 0, 0, 0, 7, 7, 7, 0, 9, 9, 0})
	f.Add([]byte{2, 2, 1, 128, 0, 0, 3, 6, 9, 12, 0, 3, 6, 9, 12, 0, 0})
	f.Add([]byte{4, 32, 16, 64, 1, 0, 255, 254, 253, 1, 2, 3, 0, 255, 1, 0})
	f.Add([]byte{3, 1, 2, 255, 3, 7, 11, 22, 33, 44, 55, 66, 77, 88, 99, 0})
	f.Add([]byte{2, 8, 2, 0, 2, 1, 10, 9, 10, 9, 10, 9, 10, 0, 10, 9, 0})
	f.Add([]byte{2, 3, 1, 0, 0, 255, 200, 200, 200, 0, 200, 200, 200, 200, 200, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 {
			t.Skip()
		}
		minRatio := float64(data[3]) / 255 * 0.8
		cfg := Config{
			Workers:    1 + int(data[0])%4,
			QueueLimit: 1 + int(data[1])%32,
			WaveBudget: float64(1+int(data[2])%16) * 1000,
			MinRatio:   minRatio,
		}
		if v := data[4]; v != 0 {
			cfg.PriorityAt = 0.5 + float64(int(v)%5)/10
			if cfg.QueueLimit < 2 {
				cfg.QueueLimit = 2 // the lane needs a slot on each side
			}
		}
		var fc *FakeClock
		var advance time.Duration
		if v := data[5]; v != 0 {
			fc = NewFakeClock()
			cfg.Clock = fc
			advance = time.Duration(int(v)%8+1) * 100 * time.Microsecond
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ops := data[6:]
		if len(ops) > 1024 {
			ops = ops[:1024]
		}

		type accepted struct {
			tk       *Ticket
			acc, deg float64 // declared costs
			hasDeg   bool
		}
		var tks []accepted
		attempted, rejected := 0, 0
		acceptedPrio := int64(0)
		for _, v := range ops {
			if v == 0 {
				if rep := s.RunWave(); rep.NextRatio < minRatio-1e-9 {
					t.Fatalf("commanded ratio %.4f below MinRatio %.4f", rep.NextRatio, minRatio)
				}
				continue
			}
			handler := func() {}
			if fc != nil {
				handler = func() { fc.Advance(advance) }
			}
			req := Request{
				Significance: float64(int(v)%11) / 10,
				Handler:      handler,
				CostAccurate: float64(100 + 10*int(v)),
				CostDegraded: float64(1 + int(v)%50),
			}
			hasDeg := v%3 != 0
			if hasDeg {
				req.Degraded = handler
			}
			prio := cfg.PriorityAt > 0 && req.Significance >= cfg.PriorityAt
			laneDepth, laneLimit := laneState(s, prio)
			attempted++
			tk, err := s.Submit(req)
			if err != nil {
				rejected++
				// RetryAfter honesty: a queue-full backoff hint must cover at
				// least one measured period, whatever wall times the fake
				// clock has given the waves so far.
				var oe *OverloadError
				if errors.As(err, &oe) && oe.RetryAfter < s.MeasuredPeriod() {
					t.Fatalf("RetryAfter %v under one measured period %v", oe.RetryAfter, s.MeasuredPeriod())
				}
				// Lane conservation: a rejection is legal only when the
				// request's own lane was full — the other lane's backlog must
				// never bleed into this one's slots. (The sweep may have freed
				// expired slots first; no deadlines here, so depth is exact.)
				if laneDepth < laneLimit {
					t.Fatalf("lane (prio=%v) rejected at depth %d of %d slots", prio, laneDepth, laneLimit)
				}
				continue
			}
			if prio {
				acceptedPrio++
			}
			tks = append(tks, accepted{tk: tk, acc: req.CostAccurate, deg: req.CostDegraded, hasDeg: hasDeg})
			bulkD, prioD := s.LaneDepths()
			if bulkD+prioD > cfg.QueueLimit {
				t.Fatalf("queue depth %d above limit %d", bulkD+prioD, cfg.QueueLimit)
			}
			if _, bl := laneState(s, false); bulkD > bl {
				t.Fatalf("bulk lane depth %d above its %d slots", bulkD, bl)
			}
			if _, pl := laneState(s, true); cfg.PriorityAt > 0 && prioD > pl {
				t.Fatalf("priority lane depth %d above its %d slots", prioD, pl)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		if attempted != len(tks)+rejected {
			t.Fatalf("attempted %d != accepted %d + rejected %d", attempted, len(tks), rejected)
		}
		var acc, deg, drop int64
		var wantCost float64
		for i, a := range tks {
			select {
			case <-a.tk.Done():
			default:
				t.Fatalf("ticket %d not completed by Close", i)
			}
			switch a.tk.Outcome() {
			case OutcomeAccurate:
				acc++
				wantCost += a.acc
			case OutcomeDegraded:
				deg++
				if !a.hasDeg {
					t.Fatalf("ticket %d reported degraded without a degraded body", i)
				}
				wantCost += a.deg
			case OutcomeDropped:
				drop++ // contributes zero cost by contract
				if a.hasDeg {
					t.Fatalf("ticket %d with a degraded body was dropped", i)
				}
			}
			if lat := a.tk.WaveLatency(); lat < 1 {
				t.Fatalf("ticket %d wave latency %d < 1", i, lat)
			}
		}
		tot := s.Totals()
		if tot.Completed != int64(len(tks)) || tot.Accurate != acc || tot.Degraded != deg || tot.Dropped != drop {
			t.Fatalf("totals %+v disagree with tickets %d/%d/%d over %d", tot, acc, deg, drop, len(tks))
		}
		if tot.Rejected != int64(rejected) {
			t.Fatalf("rejected total %d, want %d", tot.Rejected, rejected)
		}
		if tot.Priority != acceptedPrio {
			t.Fatalf("Totals.Priority %d, want %d premium requests accepted", tot.Priority, acceptedPrio)
		}
		rep := s.Energy()
		want := rep.ActiveWatts * wantCost * 1e-9
		if math.Abs(rep.Joules-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("modeled %.12f J, want %.12f J from declared costs (dropped must charge 0)",
				rep.Joules, want)
		}
	})
}

// laneState reads one lane's current depth and slot share.
func laneState(s *Server, prio bool) (depth, limit int) {
	bulkD, prioD := s.LaneDepths()
	if prio {
		return prioD, s.cfg.PrioritySlice
	}
	return bulkD, s.bulkLimit
}

// Package serve is the significance-aware load-shedding serving layer: it
// maps request traffic onto the sig runtime as significance-annotated task
// waves, so overload sheds result quality before it sheds requests.
//
// Callers submit Requests carrying a significance (user tier, staleness
// tolerance) and, optionally, a cheap Degraded handler. Admitted requests
// queue until the next wave; each wave the server pops requests up to a
// modeled work budget, submits them as one batch and taskwaits. An
// admission controller (adapt.TargetLoad) observes every wave and maps the
// measured load — queue depth and modeled joules of demand vs per-wave
// capacity, both computed from declared request costs — onto the group's
// accuracy ratio: as load climbs past the cap, the ratio drops and requests
// run their degraded handlers (or are skipped entirely, the model's task
// dropping), which shrinks per-request cost and raises throughput. Only
// when the queue is full despite maximum degradation does Submit reject —
// quality sheds first, requests last.
//
// Time enters the package through one seam, the WaveClock: deadlines,
// latency stamps and the per-wave wall-time measurement all read it. Each
// wave's measured wall time feeds a bounded EWMA (MeasuredPeriod) that
// prices the RetryAfter backoff hint honestly and, under Start's pacer,
// retimes the wave cadence within [MinPeriod, MaxPeriod] and re-derives
// the wave budget from measured period × live workers — the closed
// measured-feedback loop, as opposed to trusting the configured WavePeriod
// open-loop.
//
// With declared costs, a deterministic policy (the default GTB max
// buffering), a deterministic arrival order and a FakeClock behind the
// seam, the whole closed loop — ratio trajectory, per-request outcomes,
// modeled joules, measured cadence — replays bit-identically;
// harness.ServeStudy, harness.PaceStudy and the regression suite rely on
// it.
//
//siglint:deterministic
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/sig"
	"repro/sig/adapt"
	"repro/sig/shard"
)

// engine is the execution backend behind the admission queue: one
// sig.Runtime (the default), or a shard.Router fleet when Config.Shards
// asks for one. Both present the same wave surface, so the serving layer —
// and its admission controller — is indifferent to how many scheduler
// domains execute the waves.
type engine interface {
	SubmitBatch(specs []sig.TaskSpec)
	WaitPhase() sig.WaveStats
	Ratio() float64
	Close() error
	Energy() sig.Report
	Stats() sig.Stats
}

// soloEngine is one runtime; the admission controller attaches as its
// runtime Observer.
type soloEngine struct {
	rt  *sig.Runtime
	grp *sig.Group
}

func (e soloEngine) SubmitBatch(specs []sig.TaskSpec) { e.rt.SubmitBatch(e.grp, specs) }
func (e soloEngine) WaitPhase() sig.WaveStats         { return e.rt.WaitPhase(e.grp) }
func (e soloEngine) Ratio() float64                   { return e.grp.Ratio() }
func (e soloEngine) Close() error                     { return e.rt.Close() }
func (e soloEngine) Energy() sig.Report               { return e.rt.Energy() }
func (e soloEngine) Stats() sig.Stats                 { return e.rt.Stats() }

// shardEngine is a sharded fleet; the admission controller observes the
// router's merged waves (the global layer of the hierarchical controller —
// the router's per-shard trim controllers are the local layer).
type shardEngine struct {
	r   *shard.Router
	grp *shard.Group
}

func (e shardEngine) SubmitBatch(specs []sig.TaskSpec) { e.r.SubmitBatch(e.grp, specs) }
func (e shardEngine) WaitPhase() sig.WaveStats         { return e.r.WaitPhase(e.grp) }
func (e shardEngine) Ratio() float64                   { return e.grp.Ratio() }
func (e shardEngine) Close() error                     { return e.r.Close() }
func (e shardEngine) Energy() sig.Report               { return e.r.Energy() }
func (e shardEngine) Stats() sig.Stats                 { return e.r.Stats() }

// Defaults for Config's zero fields.
const (
	// DefaultQueueLimit bounds the admission queue.
	DefaultQueueLimit = 4096
	// DefaultWavePeriod is the Start pump's wave cadence, and the basis of
	// the default wave budget.
	DefaultWavePeriod = 5 * time.Millisecond
	// DefaultTargetLoad is the load cap the admission controller regulates
	// to: 1.0 = modeled demand equals modeled per-wave capacity.
	DefaultTargetLoad = 1.0
	// DefaultDrainGain is the fraction of the queued backlog the load
	// signal asks each wave to absorb on top of fresh arrivals.
	DefaultDrainGain = 0.5
	// DefaultRequestCost is the admission estimate (in cost units, ~1ns)
	// for requests that declare no accurate cost.
	DefaultRequestCost = 100_000
	// DefaultQualityWindow is the averaging horizon, in waves, of the
	// windowed quality floor when QualityFloor is set without a window.
	DefaultQualityWindow = 16
)

// Pacer tuning. The measured-period EWMA folds 1/periodAlphaInv of every
// new wall-time sample in (bounded memory, geometric horizon); the pacer
// only retimes when the clamped EWMA has moved more than
// 1/paceHysteresisInv off the current cadence; MinPeriod and MaxPeriod
// default to WavePeriod/minPeriodDiv and maxPeriodMult×WavePeriod.
const (
	periodAlphaInv    = 4
	paceHysteresisInv = 10
	minPeriodDiv      = 4
	maxPeriodMult     = 8
)

// Request is one unit of service traffic.
type Request struct {
	// Significance in [0,1] orders requests for degradation: higher
	// values keep their accurate handler longer as load climbs. The
	// special values bypass the policy — 1.0 (e.g. a premium tier) always
	// runs Handler, 0.0 (e.g. a best-effort prefetch) never does.
	Significance float64
	// Handler is the accurate request body (required).
	Handler func()
	// Degraded is the optional cheap body run when the request is shed to
	// approximate execution (a coarser thumbnail, a stale cache fill). A
	// request shed without one is skipped entirely — OutcomeDropped — and
	// contributes zero modeled joules.
	Degraded func()
	// Deadline, when non-zero, bounds how long the request may wait for
	// service. A request already past its deadline at Submit is rejected
	// immediately with ErrDeadlineExpired; one that expires while queued is
	// resolved at the next wave boundary with OutcomeTimedOut. Either way
	// no handler runs and the request contributes zero modeled joules —
	// its ticket is released like any other.
	Deadline time.Time
	// CostAccurate/CostDegraded declare the handlers' nominal work in
	// cost units (~1ns, see sig.WithCost). Declared costs make admission
	// pacing and the modeled energy account deterministic; a request
	// without them is paced at DefaultRequestCost and its execution time
	// is measured instead. Declarations are all-or-nothing per handler
	// pair: Submit rejects a CostDegraded without a CostAccurate, and a
	// Degraded handler whose cost is left undeclared while CostAccurate
	// is set — half-declared costs would silently model shed work as free.
	CostAccurate float64
	CostDegraded float64
}

// Outcome is how a completed request was ultimately served.
type Outcome int

const (
	// OutcomeAccurate: the full-quality Handler ran.
	OutcomeAccurate Outcome = iota
	// OutcomeDegraded: the Degraded handler ran.
	OutcomeDegraded
	// OutcomeDropped: the request was shed without running any body.
	OutcomeDropped
	// OutcomeTimedOut: the request's Deadline expired while it was queued;
	// no body ran and zero joules were charged.
	OutcomeTimedOut
)

func (o Outcome) String() string {
	switch o {
	case OutcomeAccurate:
		return "accurate"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeDropped:
		return "dropped"
	case OutcomeTimedOut:
		return "timed-out"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Errors returned by Submit.
var (
	// ErrQueueFull: the admission queue is at QueueLimit — the request is
	// shed. Under the admission controller this only happens once quality
	// degradation alone can no longer absorb the offered load. The returned
	// error is an *OverloadError wrapping this sentinel, carrying a
	// retry-after backoff hint.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDeadlineExpired: the request's Deadline had already passed at
	// Submit — it is rejected without queueing (and counted as timed out).
	ErrDeadlineExpired = errors.New("serve: request deadline expired")
	// ErrClosed: the server is shutting down.
	ErrClosed = errors.New("serve: server closed")
)

// OverloadError is the queue-full rejection: it wraps ErrQueueFull (so
// errors.Is(err, ErrQueueFull) keeps working) and carries a backoff hint —
// the modeled time to drain the current backlog at the current ratio and
// wave budget. Clients can surface it directly as a Retry-After header.
type OverloadError struct {
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: admission queue full (retry after %v)", e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrQueueFull }

// Config parameterizes a Server. Zero fields take defaults.
type Config struct {
	// Workers and Policy configure the underlying sig runtime. Zero
	// workers means GOMAXPROCS. The zero Policy is replaced by GTB max
	// buffering (the deterministic significance oracle): PolicyAccurate
	// cannot shed quality, so a server that must never degrade should set
	// MinRatio to 1 instead.
	Workers int
	Policy  sig.PolicyKind
	// Shards, when ≥ 2, runs the server over a shard.Router fleet of that
	// many sig.Runtime shards (round-robin placement) instead of a single
	// runtime. Workers is then the per-shard pool and the admission
	// controller becomes hierarchical: it commands the global ratio over
	// the router's merged waves, while the router's per-shard trim
	// controllers keep each shard tracking the command.
	Shards int
	// Group names the serving task group (default "serve").
	Group string
	// QueueLimit bounds the admission queue; Submit returns ErrQueueFull
	// beyond it (default DefaultQueueLimit). With a priority lane enabled,
	// PrioritySlice of the limit is the priority lane's own and the bulk
	// FIFO keeps the remainder.
	QueueLimit int
	// PriorityAt, when in (0,1], enables the priority admission lane:
	// requests with Significance at or above it queue in a second lane
	// that each wave drains ahead of the bulk FIFO — premium tiers bypass
	// the backlog. The lane owns its PrioritySlice of the queue limit
	// outright, so bulk traffic can never starve premium admission, and
	// it has its own depth/latency accounting (WaveReport.PriorityDepth,
	// the per-lane wave-latency histogram in WriteMetrics).
	PriorityAt float64
	// PrioritySlice is the number of queue slots reserved for the priority
	// lane (default QueueLimit/4, min 1; must leave at least one bulk
	// slot). Only meaningful with PriorityAt > 0.
	PrioritySlice int
	// WaveBudget is the modeled work (cost units, ~1ns) admitted per wave
	// — the server's modeled capacity. Default: resolved workers ×
	// WavePeriod in nanoseconds.
	WaveBudget float64
	// TargetLoad is the cap the admission controller holds the load
	// signal under (default DefaultTargetLoad). Lower values keep more
	// headroom at the price of earlier degradation.
	TargetLoad float64
	// DrainGain weights queued backlog in the load signal (default
	// DefaultDrainGain): each wave is asked to absorb fresh arrivals plus
	// this fraction of the backlog.
	DrainGain float64
	// MinRatio floors the admission controller's ratio — the service's
	// quality contract. 0 allows full degradation.
	MinRatio float64
	// QualityFloor, when positive, holds the serving quality SLO as a
	// long-run average instead of (or on top of) the per-wave MinRatio:
	// the mean provided ratio over the last QualityWindow waves stays at
	// or above QualityFloor (adapt.WindowFloor). Individual waves may
	// still dip below it during transients — the window absorbs them.
	QualityFloor float64
	// QualityWindow is the floor's averaging horizon in waves (default
	// DefaultQualityWindow; requires QualityFloor > 0).
	QualityWindow int
	// EnergyBudget, when positive, additionally caps modeled joules per
	// wave (power capping): the load signal takes the max of the demand
	// term and joules/EnergyBudget.
	EnergyBudget float64
	// WavePeriod is the cadence Start's pacer starts from, and the basis of
	// the default wave budget (default DefaultWavePeriod). Once waves have
	// been measured the pacer retimes toward the measured wall-time EWMA;
	// WavePeriod is then only the pre-measurement guess.
	WavePeriod time.Duration
	// MinPeriod and MaxPeriod bound the pacer: the cadence tracks the
	// measured-period EWMA but never leaves [MinPeriod, MaxPeriod]
	// (defaults WavePeriod/4 and 8×WavePeriod). WavePeriod must lie inside
	// the bounds.
	MinPeriod time.Duration
	MaxPeriod time.Duration
	// Clock injects the serving layer's time source (nil = the monotonic
	// wall clock). A FakeClock behind this seam makes the whole
	// measured-time loop — deadlines, MeasuredPeriod, the pacer cadence,
	// RetryAfter pricing — deterministic for replay.
	Clock WaveClock
	// DefaultCost is the admission pacing estimate for requests without
	// declared costs (default DefaultRequestCost).
	DefaultCost float64
	// AutoScale, when non-nil, runs a shard.Autoscaler over the serving
	// fleet: each wave boundary feeds the admission controller's load
	// signal to the scaler, which grows or shrinks the live shard count
	// between its Min/MaxShards bounds (with hysteresis and cooldown). The
	// wave budget scales with the live fleet — capacity follows the
	// shards. Requires Shards ≥ 2; AutoScale.MaxShards (default 2×Shards)
	// sets the router's slot capacity.
	AutoScale *shard.AutoscalerConfig
	// WaveTimeout and HealthProbe switch on the shard fleet's health
	// machinery (they forward to shard.Config; both require Shards ≥ 2):
	// a shard that overruns the wave cut or fails the probe is struck
	// live → suspect → quarantined and, at the drain threshold,
	// auto-drained out of the fleet. The wave budget tracks the live
	// shard count whether or not an autoscaler is configured — capacity
	// follows the fleet, not the config.
	WaveTimeout time.Duration
	HealthProbe func(shard int) error
}

func (c Config) withDefaults(workersPerShard int) Config {
	if c.Group == "" {
		c.Group = "serve"
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = DefaultQueueLimit
	}
	if c.WavePeriod <= 0 {
		c.WavePeriod = DefaultWavePeriod
	}
	if c.MinPeriod <= 0 {
		c.MinPeriod = c.WavePeriod / minPeriodDiv
	}
	if c.MaxPeriod <= 0 {
		c.MaxPeriod = maxPeriodMult * c.WavePeriod
	}
	if c.WaveBudget <= 0 {
		// The one default-budget derivation: per-shard workers × period,
		// scaled by the shard count — the same per-shard arithmetic the
		// per-wave rebuild uses (budgetPerShard × live shards), so solo and
		// sharded defaults agree exactly.
		c.WaveBudget = float64(workersPerShard) * float64(c.WavePeriod.Nanoseconds()) * float64(max(c.Shards, 1))
	}
	if c.TargetLoad <= 0 {
		c.TargetLoad = DefaultTargetLoad
	}
	if c.DrainGain <= 0 {
		c.DrainGain = DefaultDrainGain
	}
	if c.DefaultCost <= 0 {
		c.DefaultCost = DefaultRequestCost
	}
	if c.PriorityAt > 0 && c.PrioritySlice == 0 {
		c.PrioritySlice = max(c.QueueLimit/4, 1)
	}
	if c.QualityFloor > 0 && c.QualityWindow == 0 {
		c.QualityWindow = DefaultQualityWindow
	}
	return c
}

// pending is one queued request; prio marks which admission lane holds it.
type pending struct {
	req  Request
	tk   *Ticket
	prio bool
}

// costSums aggregates declared request costs so the load signal is O(1) in
// the queue length.
type costSums struct {
	acc float64 // Σ accurate cost
	deg float64 // Σ degraded cost (0 contribution for drop-only requests)
}

//siglint:noalloc
func (s *costSums) add(c costSums) { s.acc += c.acc; s.deg += c.deg }

//siglint:noalloc
func (s *costSums) sub(c costSums) { s.acc -= c.acc; s.deg -= c.deg }

//siglint:noalloc
func (s costSums) at(r float64) float64 { return r*s.acc + (1-r)*s.deg }

// WaveReport is the telemetry of one serving wave.
type WaveReport struct {
	// Wave is the wave index.
	Wave int
	// Admitted is how many requests the wave served; Accurate, Degraded
	// and Dropped split them by outcome. TimedOut counts queued requests
	// whose deadline expired before this wave could admit them — resolved
	// without running, on top of Admitted.
	Admitted int
	Accurate int
	Degraded int
	Dropped  int
	TimedOut int
	// PriorityAdmitted is how many of Admitted came through the priority
	// lane; PriorityDepth is that lane's post-admission depth (Depth spans
	// both lanes). Zero without a configured lane.
	PriorityAdmitted int
	PriorityDepth    int
	// LiveShards is the live fleet size after this wave's autoscaling
	// decision (1 in solo mode, the shard count when not autoscaled).
	LiveShards int
	// Depth is the admission-queue depth after the wave's admissions.
	Depth int
	// Ratio ran the wave; NextRatio is what the admission controller
	// commanded for the next one; Provided is the wave's accurate
	// fraction.
	Ratio     float64
	NextRatio float64
	Provided  float64
	// Load is the signal the admission controller regulated this wave
	// (demand+backlog over capacity, see package doc); Budget is the
	// modeled per-wave capacity it was priced against, rebuilt from the
	// live fleet at every wave boundary.
	Load   float64
	Budget float64
	// Joules is the wave's modeled energy.
	Joules float64
	// WallTime is the wave's measured wall time (admission through
	// taskwait), read through the WaveClock seam; it is the sample that
	// feeds the MeasuredPeriod EWMA.
	WallTime time.Duration
	// Overrun marks a paced wave (PaceWave/Start) whose WallTime exceeded
	// the cadence that fired it; such waves are counted in Totals.Overruns
	// and the next wave starts immediately — never a dropped tick.
	Overrun bool
	// Stats is the underlying wave telemetry.
	Stats sig.WaveStats
}

// Totals is the server's cumulative accounting.
type Totals struct {
	Submitted int64
	Rejected  int64
	Completed int64
	Accurate  int64
	Degraded  int64
	Dropped   int64
	// TimedOut counts deadline expiries: requests rejected already-expired
	// at Submit plus queued requests resolved OutcomeTimedOut. The former
	// are also counted in Rejected, the latter in Completed.
	TimedOut int64
	// Priority counts completed requests that were admitted through the
	// priority lane (whatever their outcome); they are also in Completed.
	Priority int64
	Waves    int64
	// Overruns counts paced waves whose measured wall time exceeded the
	// cadence that fired them. Each one ran to completion and the next
	// wave followed immediately — the pacer counts overruns where a fixed
	// Ticker would silently coalesce the late ticks.
	Overruns int64
	Joules   float64
}

// Server admits requests as significance-annotated task waves over a sig
// runtime. Create one with New; drive waves explicitly with RunWave (the
// deterministic study mode) or let Start pump them every WavePeriod; stop
// with Close.
type Server struct {
	cfg Config
	eng engine
	ctl *adapt.Controller

	// fleet is the shard router behind a sharded engine (nil for solo);
	// scaler, when configured, elasticizes it. budgetPerShard is the
	// per-live-shard share of the configured WaveBudget the dynamic budget
	// is rebuilt from after every scaling action.
	fleet          *shard.Router
	scaler         *shard.Autoscaler
	budgetPerShard float64

	// clock is the WaveClock seam (Config.Clock, or the wall clock);
	// workersPerShard is the resolved per-shard worker pool that every
	// budget derivation — the default, the fleet rebuild, the pacer's
	// measured rebuild — shares.
	clock           WaveClock
	workersPerShard int

	// measuredNs is the bounded EWMA of measured wave wall time behind
	// MeasuredPeriod (0 until the first wave measures); paceNs is the
	// pacer's current cadence; overruns counts paced waves that outran
	// their cadence.
	measuredNs atomic.Int64
	paceNs     atomic.Int64
	overruns   atomic.Int64

	// waveMu serializes RunWave with itself and with Close's final drain,
	// so shutdown can never tear the engine down under an in-flight wave
	// (which would panic the wave's batch submit and strand its tickets).
	waveMu  sync.Mutex
	stopped bool // engine closed; RunWave becomes a no-op (guarded by waveMu)

	mu        sync.Mutex
	queue     []*pending // bulk FIFO lane
	prio      []*pending // priority lane (PriorityAt), drained ahead of the FIFO
	qCost     costSums   // declared costs of the bulk backlog
	pCost     costSums   // declared costs of the priority backlog
	arrCost   costSums   // declared costs of arrivals since the last wave (both lanes)
	deadlined int        // queued requests (both lanes) carrying a deadline
	budget    float64    // current wave budget (WaveBudget, rescaled to the live fleet)
	closed    bool
	lastLoad  float64

	// bulkLimit is the bulk lane's share of QueueLimit (all of it without
	// a priority lane); the priority lane owns cfg.PrioritySlice slots.
	bulkLimit int

	// lat is the per-lane wave-latency histogram (laneBulk/lanePriority)
	// behind WriteMetrics; recorded at every ticket resolution.
	lat [2]latHist

	// Per-wave hot-path state, touched only under waveMu (see hotpath.go):
	// admit's reused batch buffer, the cost-class slab registry, the classes
	// with a partially filled slab this wave, and the wave's submitted slabs
	// awaiting recycle.
	wavePending []*pending
	waveExpired []*pending // deadline-expired requests skimmed by admit
	classes     map[classKey]*classState
	openClasses []*classState
	waveSlabs   []*waveSlab

	// closeDone is closed (after closeErr is set) once the winning Close
	// finished draining and retired the engine; losing concurrent Close
	// calls block on it so a returned Close always means "shut down".
	closeDone chan struct{}
	closeErr  error

	wave atomic.Int64
	tot  struct {
		submitted, rejected, completed atomic.Int64
		accurate, degraded, dropped    atomic.Int64
		timedout, priority             atomic.Int64
		joules                         atomic.Uint64 // math.Float64bits
	}

	pumpStop chan struct{}
	pumpDone chan struct{}
}

// New builds and starts a Server (its runtime workers start immediately;
// waves only run via RunWave or after Start).
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("serve: negative worker count %d", cfg.Workers)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("serve: negative shard count %d", cfg.Shards)
	}
	if cfg.MinRatio < 0 || cfg.MinRatio > 1 {
		return nil, fmt.Errorf("serve: MinRatio %v outside [0,1]", cfg.MinRatio)
	}
	if cfg.AutoScale != nil && cfg.Shards < 2 {
		return nil, fmt.Errorf("serve: AutoScale requires Shards >= 2 (got %d)", cfg.Shards)
	}
	if (cfg.WaveTimeout != 0 || cfg.HealthProbe != nil) && cfg.Shards < 2 {
		return nil, fmt.Errorf("serve: WaveTimeout/HealthProbe require Shards >= 2 (got %d)", cfg.Shards)
	}
	if cfg.PriorityAt < 0 || cfg.PriorityAt > 1 {
		return nil, fmt.Errorf("serve: PriorityAt %v outside [0,1]", cfg.PriorityAt)
	}
	if cfg.PrioritySlice != 0 && cfg.PriorityAt == 0 {
		return nil, fmt.Errorf("serve: PrioritySlice %d without PriorityAt", cfg.PrioritySlice)
	}
	if cfg.QualityFloor < 0 || cfg.QualityFloor > 1 {
		return nil, fmt.Errorf("serve: QualityFloor %v outside [0,1]", cfg.QualityFloor)
	}
	if cfg.QualityWindow != 0 && cfg.QualityFloor == 0 {
		return nil, fmt.Errorf("serve: QualityWindow %d without QualityFloor", cfg.QualityWindow)
	}
	if cfg.QualityWindow < 0 {
		return nil, fmt.Errorf("serve: negative QualityWindow %d", cfg.QualityWindow)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0) // per shard in sharded mode
	}
	cfg = cfg.withDefaults(workers)
	if cfg.Policy == 0 {
		cfg.Policy = sig.PolicyGTBMaxBuffer
	}
	if cfg.PriorityAt > 0 && (cfg.PrioritySlice < 1 || cfg.PrioritySlice >= cfg.QueueLimit) {
		return nil, fmt.Errorf("serve: PrioritySlice %d outside [1,%d)", cfg.PrioritySlice, cfg.QueueLimit)
	}
	if cfg.MinPeriod > cfg.WavePeriod || cfg.MaxPeriod < cfg.WavePeriod {
		return nil, fmt.Errorf("serve: pacer bounds [%v, %v] must bracket WavePeriod %v", cfg.MinPeriod, cfg.MaxPeriod, cfg.WavePeriod)
	}

	s := &Server{cfg: cfg, closeDone: make(chan struct{})}
	s.workersPerShard = workers
	s.clock = cfg.Clock
	if s.clock == nil {
		s.clock = wallClock{}
	}
	s.paceNs.Store(int64(cfg.WavePeriod))
	s.budget = cfg.WaveBudget
	s.budgetPerShard = cfg.WaveBudget / float64(max(cfg.Shards, 1))
	s.bulkLimit = cfg.QueueLimit
	if cfg.PriorityAt > 0 {
		s.bulkLimit = cfg.QueueLimit - cfg.PrioritySlice
	}
	var wf *adapt.WindowFloor
	if cfg.QualityFloor > 0 {
		wf = &adapt.WindowFloor{Window: cfg.QualityWindow, Floor: cfg.QualityFloor}
	}
	var err error
	s.ctl, err = adapt.New(adapt.Config{
		Group:       cfg.Group,
		Objective:   adapt.TargetLoad,
		Budget:      cfg.TargetLoad,
		Measure:     s.measure,
		Min:         cfg.MinRatio,
		Max:         1,
		TraceCap:    serveTraceCap,
		WindowFloor: wf,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		slots := cfg.Shards
		if cfg.AutoScale != nil {
			if slots = cfg.AutoScale.MaxShards; slots == 0 {
				slots = 2 * cfg.Shards
			}
			if slots < cfg.Shards {
				return nil, fmt.Errorf("serve: AutoScale.MaxShards %d below Shards %d", slots, cfg.Shards)
			}
		}
		r, err := shard.New(shard.Config{
			Shards:      cfg.Shards,
			MaxShards:   slots,
			Runtime:     sig.Config{Workers: cfg.Workers, Policy: cfg.Policy},
			WaveTimeout: cfg.WaveTimeout,
			HealthProbe: cfg.HealthProbe,
			OnWave:      func(g *shard.Group, ws sig.WaveStats) { s.ctl.Observe(g, ws) },
		})
		if err != nil {
			return nil, err
		}
		s.fleet = r
		s.eng = shardEngine{r: r, grp: r.Group(cfg.Group, 1.0)} // start at full quality
		if cfg.AutoScale != nil {
			ac := *cfg.AutoScale
			ac.MaxShards = slots
			s.scaler, err = shard.NewAutoscaler(r, ac)
			if err != nil {
				r.Close()
				return nil, err
			}
		}
	} else {
		rt, err := sig.New(sig.Config{
			Workers:  cfg.Workers,
			Policy:   cfg.Policy,
			Observer: s.ctl,
		})
		if err != nil {
			return nil, err
		}
		s.eng = soloEngine{rt: rt, grp: rt.Group(cfg.Group, 1.0)}
	}
	return s, nil
}

// Ratio returns the admission controller's current accuracy ratio.
func (s *Server) Ratio() float64 { return s.eng.Ratio() }

// Depth returns the current admission-queue depth across both lanes.
func (s *Server) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) + len(s.prio)
}

// LaneDepths returns the per-lane queue depths (prio is 0 without a
// configured priority lane).
func (s *Server) LaneDepths() (bulk, prio int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), len(s.prio)
}

// Load returns the last wave's measured load signal.
func (s *Server) Load() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLoad
}

// Budget returns the current modeled per-wave capacity — WaveBudget
// rescaled to the live shard count in sharded mode.
func (s *Server) Budget() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// Totals returns the cumulative serving counters.
func (s *Server) Totals() Totals {
	return Totals{
		Submitted: s.tot.submitted.Load(),
		Rejected:  s.tot.rejected.Load(),
		Completed: s.tot.completed.Load(),
		Accurate:  s.tot.accurate.Load(),
		Degraded:  s.tot.degraded.Load(),
		Dropped:   s.tot.dropped.Load(),
		TimedOut:  s.tot.timedout.Load(),
		Priority:  s.tot.priority.Load(),
		Waves:     s.wave.Load(),
		Overruns:  s.overruns.Load(),
		Joules:    math.Float64frombits(s.tot.joules.Load()),
	}
}

// MeasuredPeriod returns the bounded EWMA of measured wave wall time — the
// server's honest estimate of what one wave actually costs in real time —
// or the configured WavePeriod before the first wave has measured.
func (s *Server) MeasuredPeriod() time.Duration {
	if m := s.measuredNs.Load(); m > 0 {
		return time.Duration(m)
	}
	return s.cfg.WavePeriod
}

// PacePeriod returns the pacer's current cadence: the configured
// WavePeriod until PaceWave (or Start's pump) retimes it toward the
// measured EWMA within [MinPeriod, MaxPeriod].
func (s *Server) PacePeriod() time.Duration { return time.Duration(s.paceNs.Load()) }

// effectivePeriod is the honest wall-time price of one wave: the measured
// EWMA, floored at the pacer's current cadence (the configured WavePeriod
// until the pacer retimes) — a queued request can't be reached faster than
// waves fire, and an overrunning wave takes as long as it measures.
//
//siglint:noalloc
func (s *Server) effectivePeriod() time.Duration {
	p := s.paceNs.Load()
	if m := s.measuredNs.Load(); m > p {
		p = m
	}
	return time.Duration(p)
}

// observePeriod folds one measured wave wall time into the EWMA behind
// MeasuredPeriod (α = 1/periodAlphaInv: bounded memory, geometric
// horizon). Samples are floored at 1ns so a measured wave is never
// mistaken for the zero "no measurement yet" sentinel.
func (s *Server) observePeriod(wall time.Duration) {
	w := int64(wall)
	if w < 1 {
		w = 1
	}
	for {
		old := s.measuredNs.Load()
		next := w
		if old != 0 {
			next = old + (w-old)/periodAlphaInv
		}
		if next < 1 {
			next = 1
		}
		if s.measuredNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// Fleet returns the shard router behind a sharded server (nil in solo
// mode), for fleet-health introspection — live/routable counts, per-shard
// health states, manual quarantine.
func (s *Server) Fleet() *shard.Router { return s.fleet }

// reqCosts returns the request's declared cost sums, substituting the
// pacing default for undeclared accurate costs. Requests without a Degraded
// handler contribute zero degraded cost: shedding them to approximate
// execution skips them entirely.
//
//siglint:noalloc
func (s *Server) reqCosts(req *Request) costSums {
	c := costSums{acc: req.CostAccurate}
	if c.acc <= 0 {
		c.acc = s.cfg.DefaultCost
	}
	if req.Degraded != nil {
		c.deg = req.CostDegraded
	}
	return c
}

// Submit admits a request into the next wave. It returns ErrQueueFull when
// the admission queue is at its limit (the request is shed) and ErrClosed
// on a shut-down server; otherwise the Ticket tracks the request to
// completion.
//
//siglint:noalloc
func (s *Server) Submit(req Request) (*Ticket, error) {
	if req.Handler == nil {
		return nil, fmt.Errorf("serve: Submit with nil Handler") //siglint:allocok rejected-request path; the caller has a bug to fix
	}
	if req.CostAccurate < 0 || req.CostDegraded < 0 {
		return nil, fmt.Errorf("serve: negative request cost (%v/%v)", req.CostAccurate, req.CostDegraded) //siglint:allocok rejected-request path; the caller has a bug to fix
	}
	if req.CostAccurate == 0 && req.CostDegraded > 0 {
		return nil, fmt.Errorf("serve: CostDegraded declared without CostAccurate") //siglint:allocok rejected-request path; the caller has a bug to fix
	}
	if req.CostAccurate > 0 && req.Degraded != nil && req.CostDegraded == 0 {
		return nil, fmt.Errorf("serve: request declares CostAccurate but not the Degraded handler's cost") //siglint:allocok rejected-request path; the caller has a bug to fix
	}
	now := s.clock.Now() //siglint:allocok clock seam: one virtual read behind the WaveClock interface
	if !req.Deadline.IsZero() && now.After(req.Deadline) {
		// Already expired: reject before a ticket or queue slot is touched.
		// The request is accounted (submitted, rejected, timed out) but
		// models zero joules — no handler ever runs.
		s.tot.submitted.Add(1)
		s.tot.rejected.Add(1)
		s.tot.timedout.Add(1)
		return nil, ErrDeadlineExpired
	}
	s.tot.submitted.Add(1)
	prio := s.cfg.PriorityAt > 0 && req.Significance >= s.cfg.PriorityAt
	tk := getTicket(now.UnixNano())
	p := getPending()
	p.req = req
	p.tk = tk
	p.prio = prio
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.tot.rejected.Add(1)
		putPending(p)
		discardTicket(tk)
		return nil, ErrClosed
	}
	lane, limit := &s.queue, s.bulkLimit
	if prio {
		lane, limit = &s.prio, s.cfg.PrioritySlice
	}
	if len(*lane) >= limit && s.deadlined > 0 {
		// Before rejecting, sweep queued requests whose deadline has
		// already passed: an expired request deeper in the backlog must
		// not hold a slot against live traffic.
		s.reapExpiredLocked(now)
	}
	if len(*lane) >= limit {
		// Price the backoff hint while the lock still pins the backlog:
		// the modeled waves to drain the work ahead of this request's lane
		// at the current ratio and budget. The priority lane drains first,
		// so bulk rejections price both lanes; priority rejections price
		// the priority backlog alone.
		backlog := s.pCost
		if !prio {
			backlog.add(s.qCost)
		}
		budget := s.budget
		s.mu.Unlock()
		s.tot.rejected.Add(1)
		putPending(p)
		discardTicket(tk)
		waves := 1.0
		if budget > 0 {
			waves = math.Ceil(backlog.at(s.eng.Ratio()) / budget) //siglint:allocok engine boundary: Ratio is an atomic read behind the interface
			if waves < 1 {
				waves = 1
			}
		}
		// Price the hint in measured-period units (effectivePeriod: the
		// wall-time EWMA, floored at the cadence — the configured WavePeriod
		// before the first measurement). Pricing waves at the configured
		// period under an overrunning wave sent clients back into a
		// still-full queue.
		return nil, &OverloadError{RetryAfter: time.Duration(waves) * s.effectivePeriod()} //siglint:allocok shed-request path: the structured retry hint costs one error object
	}
	tk.enqWave.Store(s.wave.Load())
	c := s.reqCosts(&req)
	if prio {
		s.pCost.add(c)
	} else {
		s.qCost.add(c)
	}
	s.arrCost.add(c)
	if !req.Deadline.IsZero() {
		s.deadlined++
	}
	*lane = append(*lane, p) //siglint:allocok amortized growth of the retained lane backlog
	s.mu.Unlock()
	return tk, nil
}

// reapExpiredLocked sweeps both lanes for queued requests whose deadline
// has passed and resolves them OutcomeTimedOut on the spot — queue slot
// and cost share freed, ticket completed, counters updated. It is the
// queue-full Submit path's side of the expiry bugfix; admit runs the same
// sweep at every wave boundary. Caller holds s.mu.
//
//siglint:noalloc
func (s *Server) reapExpiredLocked(now time.Time) {
	nowNs := now.UnixNano()
	wave := s.wave.Load()
	var reaped, reapedPrio int64
	for _, ln := range [...]struct {
		q    *[]*pending
		cost *costSums
	}{{&s.prio, &s.pCost}, {&s.queue, &s.qCost}} {
		kept := (*ln.q)[:0]
		for _, p := range *ln.q {
			if p.req.Deadline.IsZero() || !now.After(p.req.Deadline) {
				kept = append(kept, p) //siglint:allocok re-slices the lane in place; kept shares its backing array
				continue
			}
			ln.cost.sub(s.reqCosts(&p.req))
			s.deadlined--
			tk := p.tk
			tk.outcome.Store(int32(OutcomeTimedOut))
			tk.complete(wave, nowNs)
			s.lat[laneOf(p.prio)].record(wave - tk.enqWave.Load() + 1)
			if p.prio {
				reapedPrio++
			}
			tk.release()
			putPending(p)
			reaped++
		}
		for i := len(kept); i < len(*ln.q); i++ {
			(*ln.q)[i] = nil
		}
		*ln.q = kept
	}
	if reaped > 0 {
		s.tot.completed.Add(reaped)
		s.tot.timedout.Add(reaped)
		s.tot.priority.Add(reapedPrio)
	}
}

// measure is the admission controller's load signal, evaluated at the wave
// boundary (inside RunWave's taskwait): the modeled cost of fresh arrivals
// plus a DrainGain share of the backlog, both priced at the wave's ratio,
// over the per-wave capacity — and, with an EnergyBudget, the wave's
// modeled joules over that budget, whichever is larger. Both terms are
// monotone increasing in the ratio, which is what lets the secant law of
// adapt.TargetLoad converge in a handful of waves.
func (s *Server) measure(ws sig.WaveStats) float64 {
	s.mu.Lock()
	arr, backlog, budget := s.arrCost, s.qCost, s.budget
	backlog.add(s.pCost)   // both lanes drain from the same capacity
	s.arrCost = costSums{} // next wave accounts fresh arrivals only
	s.mu.Unlock()
	r := ws.RequestedRatio
	load := (arr.at(r) + s.cfg.DrainGain*backlog.at(r)) / budget
	if s.cfg.EnergyBudget > 0 {
		load = math.Max(load, ws.Joules/s.cfg.EnergyBudget)
	}
	s.mu.Lock()
	s.lastLoad = load
	s.mu.Unlock()
	return load
}

// admit pops the next wave's worth of requests: the priority lane first,
// then the bulk FIFO, while the expected modeled cost at the current ratio
// fits the wave budget (always at least one when anything is queued, so a
// single oversized request cannot wedge the queue). Before popping, BOTH
// lanes are swept end to end for requests whose Deadline expired while
// queued — they are moved to the waveExpired buffer (no budget consumed;
// RunWave resolves them OutcomeTimedOut), so an expired request can never
// hold a queue slot or keep its cost in the backlog sums, however deep it
// sits. The returned batch is the server's reused wavePending buffer
// (valid until the next admit); lane remainders compact to the front of
// their backing arrays, so steady-state waves neither grow nor churn them.
// now is the wave's start-of-wave clock reading (RunWave takes it through
// the WaveClock seam) — admit performs no clock reads of its own.
//
//siglint:noalloc
func (s *Server) admit(now time.Time) []*pending {
	s.mu.Lock()
	defer s.mu.Unlock()
	ratio := s.eng.Ratio() //siglint:allocok engine boundary: Ratio is an atomic read behind the interface
	batch := s.wavePending[:0]
	s.waveExpired = s.waveExpired[:0]
	if s.deadlined > 0 {
		s.sweepLaneLocked(&s.prio, &s.pCost, now)
		s.sweepLaneLocked(&s.queue, &s.qCost, now)
	}
	var cost float64
	batch, cost = s.popLaneLocked(batch, &s.prio, &s.pCost, ratio, cost, s.cfg.PrioritySlice)
	batch, _ = s.popLaneLocked(batch, &s.queue, &s.qCost, ratio, cost, s.cfg.QueueLimit)
	s.wavePending = batch
	return batch
}

// sweepLaneLocked moves every deadline-expired request of one lane into
// waveExpired, releasing its cost share and compacting the lane in place.
// Caller holds s.mu.
//
//siglint:noalloc
func (s *Server) sweepLaneLocked(q *[]*pending, cs *costSums, now time.Time) {
	kept := (*q)[:0]
	for _, p := range *q {
		if !p.req.Deadline.IsZero() && now.After(p.req.Deadline) {
			cs.sub(s.reqCosts(&p.req))
			s.deadlined--
			s.waveExpired = append(s.waveExpired, p) //siglint:allocok amortized growth of the reused per-wave expired buffer
			continue
		}
		kept = append(kept, p) //siglint:allocok re-slices the lane in place; kept shares its backing array
	}
	for i := len(kept); i < len(*q); i++ {
		(*q)[i] = nil
	}
	*q = kept
}

// popLaneLocked pops one lane FIFO into batch while the running cost fits
// the budget (admitting at least one request overall), returning the grown
// batch and cost. limit sizes the lane's backing-array release heuristic.
// Caller holds s.mu.
//
//siglint:noalloc
func (s *Server) popLaneLocked(batch []*pending, q *[]*pending, cs *costSums, ratio, cost float64, limit int) ([]*pending, float64) {
	n := 0
	for n < len(*q) {
		p := (*q)[n]
		c := s.reqCosts(&p.req)
		if len(batch) > 0 && cost+c.at(ratio) > s.budget {
			break
		}
		batch = append(batch, p) //siglint:allocok amortized growth of the reused wavePending batch buffer
		cost += c.at(ratio)
		cs.sub(c)
		if !p.req.Deadline.IsZero() {
			s.deadlined--
		}
		n++
	}
	if n > 0 {
		rem := copy(*q, (*q)[n:])
		clear((*q)[rem:])
		*q = (*q)[:rem]
	}
	if len(*q) == 0 && cap(*q) > max(64, limit/8) {
		*q = nil // release a burst-grown backing array once it drains
	}
	return batch, cost
}

// RunWave executes one serving wave: admit a budget's worth of queued
// requests, run them as one significance-annotated batch, taskwait, and
// let the admission controller retune the ratio. It is safe to call
// concurrently with Submit, with itself, and with Close (concurrent waves
// serialize; after Close's final drain it is a no-op returning an empty
// report). A wave with nothing to admit still advances the wave epoch
// (tickets measure latency in waves).
func (s *Server) RunWave() WaveReport {
	s.waveMu.Lock()
	defer s.waveMu.Unlock()
	if s.stopped {
		return WaveReport{Wave: int(s.wave.Load()), Ratio: s.eng.Ratio(), NextRatio: s.eng.Ratio()}
	}
	start := s.clock.Now()
	batch := s.admit(start)
	ratio := s.eng.Ratio()

	rep := WaveReport{Wave: int(s.wave.Load()), Admitted: len(batch), Ratio: ratio}
	if len(batch) > 0 {
		// Coalesce the batch into cost-class slabs of prebuilt specs; full
		// slabs submit as they fill, partials flush after (see hotpath.go).
		for _, p := range batch {
			s.coalesce(p)
		}
		s.flushSlabs()
	}
	ws := s.eng.WaitPhase() // admission controller observes here
	end := s.clock.Now()
	// The wave's measured wall time — admission through taskwait — is the
	// sample behind MeasuredPeriod: the pacer's cadence target and the
	// honest RetryAfter price.
	rep.WallTime = end.Sub(start)
	s.observePeriod(rep.WallTime)
	wave := s.wave.Add(1) - 1
	nowNs := end.UnixNano()
	// Resolve the deadline casualties admit skimmed: outcome, completion
	// edge, ticket release — everything a served request gets, except a
	// body run or a joule.
	priority := 0
	for i, p := range s.waveExpired {
		tk := p.tk
		tk.outcome.Store(int32(OutcomeTimedOut))
		tk.complete(wave, nowNs)
		s.lat[laneOf(p.prio)].record(wave - tk.enqWave.Load() + 1)
		if p.prio {
			priority++
		}
		tk.release()
		putPending(p)
		s.waveExpired[i] = nil
		rep.TimedOut++
	}
	s.waveExpired = s.waveExpired[:0]
	for i, p := range batch {
		tk := p.tk
		tk.complete(wave, nowNs)
		s.lat[laneOf(p.prio)].record(wave - tk.enqWave.Load() + 1)
		if p.prio {
			rep.PriorityAdmitted++
			priority++
		}
		// Read the outcome before dropping the server's reference: after
		// release the ticket may already be recycled by a concurrent Submit.
		switch Outcome(tk.outcome.Load()) {
		case OutcomeAccurate:
			rep.Accurate++
		case OutcomeDegraded:
			rep.Degraded++
		default:
			rep.Dropped++
		}
		tk.release()
		putPending(p)
		batch[i] = nil
	}
	s.recycleSlabs()
	s.tot.completed.Add(int64(len(batch) + rep.TimedOut))
	s.tot.accurate.Add(int64(rep.Accurate))
	s.tot.degraded.Add(int64(rep.Degraded))
	s.tot.dropped.Add(int64(rep.Dropped))
	s.tot.timedout.Add(int64(rep.TimedOut))
	s.tot.priority.Add(int64(priority))
	for {
		old := s.tot.joules.Load()
		if s.tot.joules.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+ws.Joules)) {
			break
		}
	}

	s.mu.Lock()
	rep.Depth = len(s.queue) + len(s.prio)
	rep.PriorityDepth = len(s.prio)
	rep.Load = s.lastLoad
	s.mu.Unlock()
	rep.LiveShards = 1
	if s.fleet != nil {
		if s.scaler != nil {
			// The scaler sees the same load signal the admission controller
			// just regulated; a drain here runs against an idle fleet (the
			// wave's taskwait completed above).
			s.scaler.Observe(rep.Load)
		}
		// Capacity follows the fleet, however it changed: autoscaler
		// actions AND health auto-drains (DrainAfter) shrink or grow the
		// live count, and the wave budget — hence the load signal's
		// denominator — must track it either way. (Rebuilding only under
		// a scaler left the budget overstated after a watchdog drain.)
		rep.LiveShards = s.fleet.Live()
		s.mu.Lock()
		s.budget = s.budgetPerShard * float64(rep.LiveShards)
		s.mu.Unlock()
	}
	rep.Budget = s.Budget()
	rep.NextRatio = s.eng.Ratio()
	rep.Provided = ws.ProvidedRatio
	rep.Joules = ws.Joules
	rep.Stats = ws
	return rep
}

// PaceWave runs one wave under the pacer discipline Start's pump uses, and
// is the deterministic way to drive that discipline explicitly (with a
// FakeClock — harness.PaceStudy). After RunWave it: counts an overrun when
// the wave's wall time exceeded the cadence that fired it (the wave ran and
// the next one is due immediately — never a dropped tick), retimes the
// cadence toward the measured EWMA within [MinPeriod, MaxPeriod] with
// hysteresis, and re-derives the wave budget as effective measured period ×
// live workers — under pacing, a configured WaveBudget degrades to an
// initial guess that real measurements replace. It returns the wave report
// and the delay until the next wave is due (zero after an overrun).
func (s *Server) PaceWave() (WaveReport, time.Duration) {
	rep := s.RunWave()
	if rep.Overrun = rep.WallTime > time.Duration(s.paceNs.Load()); rep.Overrun {
		s.overruns.Add(1)
	}
	cadence := s.retime()
	if rep.LiveShards > 0 { // zero only after Close's teardown
		// Measured capacity: what one wave can actually absorb is the wall
		// time a wave occupies times the workers executing it, not the
		// configured guess. (Cost units are ~1ns of work, so period
		// nanoseconds × workers is directly a cost budget.)
		s.mu.Lock()
		s.budget = float64(s.workersPerShard*rep.LiveShards) * float64(s.effectivePeriod())
		rep.Budget = s.budget
		s.mu.Unlock()
	}
	delay := cadence - rep.WallTime
	if delay < 0 {
		delay = 0
	}
	return rep, delay
}

// retime moves the pacer cadence toward the measured EWMA, clamped into
// [MinPeriod, MaxPeriod], with 1/paceHysteresisInv relative hysteresis so
// measurement jitter doesn't wobble the timer. It returns the cadence in
// force after the move.
func (s *Server) retime() time.Duration {
	cur := s.paceNs.Load()
	target := s.measuredNs.Load()
	if target == 0 {
		return time.Duration(cur) // nothing measured yet
	}
	if lo := int64(s.cfg.MinPeriod); target < lo {
		target = lo
	}
	if hi := int64(s.cfg.MaxPeriod); target > hi {
		target = hi
	}
	if diff := target - cur; diff > cur/paceHysteresisInv || diff < -cur/paceHysteresisInv {
		s.paceNs.Store(target)
		cur = target
	}
	return time.Duration(cur)
}

// Start launches the wave pacer: a PaceWave whenever the cadence timer
// fires, the cadence retimed wave by wave to the measured period. A wave
// that overruns its cadence is followed immediately by the next one and
// counted in Totals.Overruns — where the old fixed Ticker silently
// coalesced the late ticks, making the wave count diverge from
// elapsed/period with no signal.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.pumpStop != nil {
		return
	}
	s.pumpStop = make(chan struct{})
	s.pumpDone = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		timer := time.NewTimer(time.Duration(s.paceNs.Load()))
		defer timer.Stop()
		for {
			select {
			case <-stop:
				return
			case <-timer.C:
				_, delay := s.PaceWave()
				timer.Reset(delay)
			}
		}
	}(s.pumpStop, s.pumpDone)
}

// Close stops admitting, drains the queue through final waves (every
// accepted ticket completes), and shuts the engine down. It is idempotent
// and safe to call while an explicit RunWave is in flight: the in-flight
// wave finishes first (its tickets resolve normally), the drain waves run
// after it, and only then is the engine torn down — a RunWave arriving
// later is a no-op. The engine's energy report stays valid afterwards.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// A concurrent Close already owns the shutdown: wait for it, so
		// every returned Close means the same thing — tickets resolved,
		// engine retired, energy frozen.
		<-s.closeDone
		return s.closeErr
	}
	s.closed = true
	stop, done := s.pumpStop, s.pumpDone
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	// Each RunWave below serializes behind any in-flight wave; once the
	// queue is empty (no new Submit can refill it past the closed flag),
	// the engine can be retired under the same lock, so no wave can ever
	// find it half-closed.
	for s.Depth() > 0 {
		s.RunWave()
	}
	s.waveMu.Lock()
	s.stopped = true
	err := s.eng.Close()
	s.waveMu.Unlock()
	s.closeErr = err
	close(s.closeDone)
	return err
}

// Energy returns the engine's modeled energy report (merged across shards
// in sharded mode).
func (s *Server) Energy() sig.Report { return s.eng.Energy() }

// Stats returns the engine's task accounting (merged across shards in
// sharded mode).
func (s *Server) Stats() sig.Stats { return s.eng.Stats() }

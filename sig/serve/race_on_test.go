//go:build race

package serve

// raceEnabled: under -race, sync.Pool deliberately drops ~25% of Puts, so
// pooled paths re-allocate and strict zero-alloc assertions cannot hold.
const raceEnabled = true

package serve

import (
	"fmt"
	"io"
	"strconv"
)

// WriteMetrics renders the server's state in the Prometheus text exposition
// format (version 0.0.4): cumulative serving counters, the controller's
// ratio and load signal against the live-fleet budget, per-lane queue
// depths and limits, and the per-lane wave-latency histogram (latency in
// waves — the serving layer's deterministic latency unit). cmd/sigserve
// mounts it at /metrics; anything that can write an io.Writer can scrape a
// Server directly. Counters are read atomically one by one — a scrape
// concurrent with a wave may be torn across metrics, which Prometheus
// counters tolerate by design.
func (s *Server) WriteMetrics(w io.Writer) error {
	tot := s.Totals()
	bulk, prio := s.LaneDepths()
	live := 1
	if s.fleet != nil {
		live = s.fleet.Live()
	}

	mf := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	mf("sigserve_submitted_total", "counter", "Requests offered to Submit.")
	fmt.Fprintf(w, "sigserve_submitted_total %d\n", tot.Submitted)
	mf("sigserve_rejected_total", "counter", "Requests rejected at admission (queue full, closed, pre-expired).")
	fmt.Fprintf(w, "sigserve_rejected_total %d\n", tot.Rejected)
	mf("sigserve_completed_total", "counter", "Admitted requests resolved, by outcome.")
	fmt.Fprintf(w, "sigserve_completed_total{outcome=\"accurate\"} %d\n", tot.Accurate)
	fmt.Fprintf(w, "sigserve_completed_total{outcome=\"degraded\"} %d\n", tot.Degraded)
	fmt.Fprintf(w, "sigserve_completed_total{outcome=\"dropped\"} %d\n", tot.Dropped)
	fmt.Fprintf(w, "sigserve_completed_total{outcome=\"timedout\"} %d\n", tot.Completed-tot.Accurate-tot.Degraded-tot.Dropped)
	mf("sigserve_priority_completed_total", "counter", "Completed requests that came through the priority lane.")
	fmt.Fprintf(w, "sigserve_priority_completed_total %d\n", tot.Priority)
	mf("sigserve_waves_total", "counter", "Serving waves run.")
	fmt.Fprintf(w, "sigserve_waves_total %d\n", tot.Waves)
	mf("sigserve_wave_overruns_total", "counter", "Paced waves whose wall time overran the cadence (counted, never dropped).")
	fmt.Fprintf(w, "sigserve_wave_overruns_total %d\n", tot.Overruns)
	mf("sigserve_joules_total", "counter", "Modeled energy spent, in joules.")
	fmt.Fprintf(w, "sigserve_joules_total %s\n", fmtFloat(tot.Joules))

	mf("sigserve_ratio", "gauge", "The admission controller's current accuracy ratio.")
	fmt.Fprintf(w, "sigserve_ratio %s\n", fmtFloat(s.Ratio()))
	mf("sigserve_load", "gauge", "Last wave's measured load signal (demand+backlog over capacity).")
	fmt.Fprintf(w, "sigserve_load %s\n", fmtFloat(s.Load()))
	mf("sigserve_target_load", "gauge", "The load cap the admission controller regulates to.")
	fmt.Fprintf(w, "sigserve_target_load %s\n", fmtFloat(s.cfg.TargetLoad))
	mf("sigserve_wave_budget", "gauge", "Modeled per-wave capacity, rebuilt from the live fleet each wave.")
	fmt.Fprintf(w, "sigserve_wave_budget %s\n", fmtFloat(s.Budget()))
	mf("sigserve_wave_period_seconds", "gauge", "Measured wave wall-time EWMA (the configured period before the first wave).")
	fmt.Fprintf(w, "sigserve_wave_period_seconds %s\n", fmtFloat(s.MeasuredPeriod().Seconds()))
	mf("sigserve_pace_period_seconds", "gauge", "The pacer's current wave cadence.")
	fmt.Fprintf(w, "sigserve_pace_period_seconds %s\n", fmtFloat(s.PacePeriod().Seconds()))
	mf("sigserve_live_shards", "gauge", "Live shards behind the server (1 in solo mode).")
	fmt.Fprintf(w, "sigserve_live_shards %d\n", live)

	mf("sigserve_queue_depth", "gauge", "Admission queue depth, per lane.")
	fmt.Fprintf(w, "sigserve_queue_depth{lane=\"bulk\"} %d\n", bulk)
	fmt.Fprintf(w, "sigserve_queue_depth{lane=\"priority\"} %d\n", prio)
	mf("sigserve_queue_limit", "gauge", "Admission queue slots, per lane.")
	fmt.Fprintf(w, "sigserve_queue_limit{lane=\"bulk\"} %d\n", s.bulkLimit)
	fmt.Fprintf(w, "sigserve_queue_limit{lane=\"priority\"} %d\n", s.cfg.PrioritySlice)

	mf("sigserve_wave_latency_waves", "histogram", "Request latency from admission to resolution, in waves, per lane.")
	for lane, name := range [laneCount]string{laneBulk: "bulk", lanePriority: "priority"} {
		cum, count, sum := s.lat[lane].snapshot()
		for i, le := range waveLatBuckets {
			fmt.Fprintf(w, "sigserve_wave_latency_waves_bucket{lane=%q,le=\"%d\"} %d\n", name, le, cum[i])
		}
		fmt.Fprintf(w, "sigserve_wave_latency_waves_bucket{lane=%q,le=\"+Inf\"} %d\n", name, count)
		fmt.Fprintf(w, "sigserve_wave_latency_waves_sum{lane=%q} %d\n", name, sum)
		fmt.Fprintf(w, "sigserve_wave_latency_waves_count{lane=%q} %d\n", name, count)
	}
	return nil
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, no exponent for common magnitudes.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package serve

import (
	"errors"
	"math"
	"sort"
	"sync/atomic"
	"testing"

	"repro/sig"
)

// testCosts are the declared request costs of the deterministic tests:
// degraded work is ~13% of accurate work, like the sobel kernels.
const (
	costAcc = 30_000.0
	costDeg = 4_000.0
)

// newTestServer builds a server sized so `base` accurate requests fill 60%
// of a wave — light load at full quality, 4x that is genuine overload.
func newTestServer(t *testing.T, base int, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Workers:    2,
		QueueLimit: 1024,
		WaveBudget: float64(base) * costAcc / 0.6,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// request builds the i-th deterministic test request: nine significance
// levels, declared costs, a degraded body. The counters are atomic: with
// Workers >= 2 the bodies of one wave run concurrently.
func request(i int, served *[3]atomic.Int64) Request {
	return Request{
		Significance: float64(i%9+1) / 10,
		Handler:      func() { served[0].Add(1) },
		Degraded:     func() { served[1].Add(1) },
		CostAccurate: costAcc,
		CostDegraded: costDeg,
	}
}

func TestServeBasicWave(t *testing.T) {
	s := newTestServer(t, 8, nil)
	defer s.Close()
	var served [3]atomic.Int64
	var tks []*Ticket
	for i := 0; i < 8; i++ {
		tk, err := s.Submit(request(i, &served))
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	rep := s.RunWave()
	if rep.Admitted != 8 {
		t.Fatalf("admitted %d of 8 under a light wave", rep.Admitted)
	}
	acc, deg := 0, 0
	for _, tk := range tks {
		switch tk.Wait() {
		case OutcomeAccurate:
			acc++
		case OutcomeDegraded:
			deg++
		}
		if got := tk.WaveLatency(); got != 1 {
			t.Errorf("light-load wave latency %d, want 1", got)
		}
	}
	if acc != rep.Accurate || deg != rep.Degraded {
		t.Errorf("ticket outcomes %d/%d disagree with report %d/%d", acc, deg, rep.Accurate, rep.Degraded)
	}
	if int64(acc) != served[0].Load() || int64(deg) != served[1].Load() {
		t.Errorf("outcomes %d/%d vs bodies run %d/%d", acc, deg, served[0].Load(), served[1].Load())
	}
	tot := s.Totals()
	if tot.Submitted != 8 || tot.Completed != 8 || tot.Rejected != 0 {
		t.Errorf("totals %+v, want 8 submitted/completed, 0 rejected", tot)
	}
}

// TestServeOverloadShedsQualityFirst is the package-level acceptance test:
// under a 4x offered-load step the admission controller degrades the
// provided ratio instead of queueing unboundedly, keeps wave latency
// bounded, rejects nothing, and recovers full quality within 8 waves of
// the step ending.
func TestServeOverloadShedsQualityFirst(t *testing.T) {
	const (
		base            = 8
		waves           = 28
		stepAt, stepEnd = 8, 16
	)
	run := func() (rows []WaveReport, lats []int, rejected int64, joules []float64) {
		s := newTestServer(t, base, nil)
		var served [3]atomic.Int64
		var tks []*Ticket
		seq := 0
		for w := 0; w < waves; w++ {
			offered := base
			if w >= stepAt && w < stepEnd {
				offered *= 4
			}
			for i := 0; i < offered; i++ {
				tk, err := s.Submit(request(seq, &served))
				seq++
				if err != nil {
					continue
				}
				tks = append(tks, tk)
			}
			rep := s.RunWave()
			rows = append(rows, rep)
			joules = append(joules, rep.Joules)
		}
		if err := s.Close(); err != nil { // drains the tail of the backlog
			t.Fatal(err)
		}
		for _, tk := range tks {
			lats = append(lats, tk.WaveLatency())
		}
		rejected = s.Totals().Rejected
		return rows, lats, rejected, joules
	}

	rows, lats, rejected, joules := run()

	// Quality sheds before requests: nothing rejected, ratio drops hard.
	if rejected != 0 {
		t.Errorf("%d requests rejected; quality shedding should have absorbed the step", rejected)
	}
	preStep := rows[stepAt-1].NextRatio
	if preStep < 0.95 {
		t.Errorf("pre-step ratio %.3f, want ~1 under light load", preStep)
	}
	minRatio := 1.0
	for _, r := range rows[stepAt:stepEnd] {
		minRatio = math.Min(minRatio, r.NextRatio)
	}
	if minRatio > preStep-0.3 {
		t.Errorf("ratio only fell to %.3f under a 4x step (pre-step %.3f)", minRatio, preStep)
	}

	// Latency stays bounded: the queue drains instead of growing without
	// bound, so even p99 over the overload window is a handful of waves.
	sort.Ints(lats)
	p99 := lats[len(lats)*99/100]
	if p99 > 6 {
		t.Errorf("p99 wave latency %d, want <= 6", p99)
	}

	// Recovery: full quality back within 8 waves of the step ending.
	recovered := -1
	for w := stepEnd; w < len(rows); w++ {
		if rows[w].NextRatio >= 0.95 {
			recovered = w - stepEnd
			break
		}
	}
	if recovered < 0 || recovered > 8 {
		t.Errorf("ratio recovered after %d waves (want within 8)", recovered)
	}

	// Determinism: with declared costs the whole closed loop replays
	// bit-identically — including the modeled joules of every wave.
	rows2, _, _, joules2 := run()
	for w := range rows {
		if rows[w].NextRatio != rows2[w].NextRatio || rows[w].Admitted != rows2[w].Admitted {
			t.Fatalf("wave %d diverged across identical runs: ratio %.6f/%.6f admitted %d/%d",
				w, rows[w].NextRatio, rows2[w].NextRatio, rows[w].Admitted, rows2[w].Admitted)
		}
		if math.Float64bits(joules[w]) != math.Float64bits(joules2[w]) {
			t.Fatalf("wave %d joules not bit-identical: %v vs %v", w, joules[w], joules2[w])
		}
	}
}

// TestServeDroppedRequestsCostZeroJoules pins the serving-side face of the
// runtime's skipped-task fix: requests shed without a degraded handler must
// contribute exactly 0 modeled joules, so the energy report equals the
// declared cost of what actually ran.
func TestServeDroppedRequestsCostZeroJoules(t *testing.T) {
	s := newTestServer(t, 8, func(c *Config) { c.Workers = 1 })
	var ran int
	// Two premium requests that always run, six zero-significance ones
	// that are always shed — and, with no degraded handler, dropped.
	var tks []*Ticket
	for i := 0; i < 8; i++ {
		req := Request{
			Significance: 0,
			Handler:      func() { ran++ },
			CostAccurate: costAcc,
			CostDegraded: costDeg, // declared but bodiless: must not be charged
		}
		if i < 2 {
			req.Significance = 1
		}
		tk, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	s.RunWave()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for i, tk := range tks {
		o := tk.Outcome()
		if i < 2 && o != OutcomeAccurate {
			t.Errorf("premium request %d served %v", i, o)
		}
		if i >= 2 {
			if o != OutcomeDropped {
				t.Errorf("bodiless request %d served %v, want dropped", i, o)
			} else {
				dropped++
			}
		}
	}
	if ran != 2 || dropped != 6 {
		t.Fatalf("ran %d, dropped %d; want 2/6", ran, dropped)
	}
	rep := s.Energy()
	watts := rep.ActiveWatts
	want := watts * 2 * costAcc * 1e-9
	if math.Abs(rep.Joules-want) > 1e-12 {
		t.Errorf("modeled %.12f J, want %.12f J: dropped requests were charged", rep.Joules, want)
	}
}

func TestServeQueueLimitAndClose(t *testing.T) {
	s := newTestServer(t, 4, func(c *Config) { c.QueueLimit = 3 })
	var served [3]atomic.Int64
	var tks []*Ticket
	full := 0
	for i := 0; i < 5; i++ {
		tk, err := s.Submit(request(i, &served))
		if errors.Is(err, ErrQueueFull) {
			full++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	if full != 2 {
		t.Errorf("%d rejections at QueueLimit 3 over 5 submissions, want 2", full)
	}
	if tot := s.Totals(); tot.Rejected != 2 {
		t.Errorf("rejected total %d, want 2", tot.Rejected)
	}
	// Close must drain: every accepted ticket completes.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tks {
		select {
		case <-tk.Done():
		default:
			t.Errorf("ticket %d not completed by Close", i)
		}
	}
	if _, err := s.Submit(request(9, &served)); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close returned %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestServeMinRatioHonored: the quality contract floors degradation even
// under hopeless overload — excess then sheds as rejections.
func TestServeMinRatioHonored(t *testing.T) {
	s := newTestServer(t, 4, func(c *Config) {
		c.MinRatio = 0.6
		c.QueueLimit = 16
	})
	var served [3]atomic.Int64
	for w := 0; w < 12; w++ {
		for i := 0; i < 16; i++ { // 4x the base the budget was sized for
			s.Submit(request(w*16+i, &served))
		}
		if rep := s.RunWave(); rep.NextRatio < 0.6-1e-9 {
			t.Fatalf("wave %d commanded ratio %.3f below the MinRatio contract", w, rep.NextRatio)
		}
	}
	if tot := s.Totals(); tot.Rejected == 0 {
		t.Error("floored ratio under sustained overload must eventually reject")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeEnergyBudgetCapsJoules: with an EnergyBudget the load signal
// also tracks modeled joules, so steady-state per-wave energy lands at or
// under the cap even though the queue never backs up.
func TestServeEnergyBudgetCapsJoules(t *testing.T) {
	const base = 8
	budget := sig.DefaultActiveWatts * 4 * costAcc * 1e-9 // ~half the full-quality wave energy
	s := newTestServer(t, base, func(c *Config) {
		c.WaveBudget = 100 * base * costAcc // work capacity never binds
		c.EnergyBudget = budget
	})
	var served [3]atomic.Int64
	var last WaveReport
	for w := 0; w < 12; w++ {
		for i := 0; i < base; i++ {
			if _, err := s.Submit(request(w*base+i, &served)); err != nil {
				t.Fatal(err)
			}
		}
		last = s.RunWave()
	}
	if last.Joules > budget*1.05 {
		t.Errorf("steady-state wave energy %.9f J exceeds the %.9f J budget", last.Joules, budget)
	}
	if last.NextRatio > 0.9 {
		t.Errorf("ratio %.3f: the energy cap should have forced degradation", last.NextRatio)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeStartPump smokes the wall-clock mode: the background pump serves
// submitted requests without explicit RunWave calls.
func TestServeStartPump(t *testing.T) {
	s := newTestServer(t, 8, func(c *Config) { c.WavePeriod = 500_000 }) // 0.5ms
	s.Start()
	s.Start() // idempotent
	var served [3]atomic.Int64
	var tks []*Ticket
	for i := 0; i < 20; i++ {
		tk, err := s.Submit(request(i, &served))
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	for _, tk := range tks {
		tk.Wait()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	tot := s.Totals()
	if tot.Completed != 20 {
		t.Errorf("pump completed %d of 20", tot.Completed)
	}
	if tot.Accurate+tot.Degraded+tot.Dropped != tot.Completed {
		t.Errorf("outcome conservation broken: %+v", tot)
	}
}

// TestServeIdleWavesRecoverRatio: an idle server must walk a shed ratio
// back up — empty waves are genuine zero demand for the load objective,
// not missing information — so the first requests after a lull are not
// punished for the last overload.
func TestServeIdleWavesRecoverRatio(t *testing.T) {
	s := newTestServer(t, 8, nil)
	defer s.Close()
	var served [3]atomic.Int64
	// Overload hard enough to shed the ratio.
	seq := 0
	for w := 0; w < 6; w++ {
		for i := 0; i < 32; i++ {
			s.Submit(request(seq, &served))
			seq++
		}
		s.RunWave()
	}
	// Drain the backlog so the idle phase really is idle.
	for s.Depth() > 0 {
		s.RunWave()
	}
	if r := s.Ratio(); r > 0.6 {
		t.Fatalf("overload phase left ratio at %.3f; the test needs a shed ratio to recover from", r)
	}
	for w := 0; w < 8; w++ {
		s.RunWave() // empty waves
	}
	if r := s.Ratio(); r < 0.95 {
		t.Errorf("ratio %.3f after 8 idle waves, want recovered to ~1", r)
	}
}

// TestServeCloseRacingRunWave pins the shutdown contract: Close arriving
// while an explicit RunWave is in flight must let that wave finish, drain
// the rest of the queue, and resolve every accepted ticket exactly once —
// a double resolution would panic the ticket's channel close, a leak would
// leave a ticket unresolved, and a torn-down engine under the wave would
// panic its batch submit. Before waves were serialized with shutdown,
// Close could close the runtime between a wave's admit and its submit.
func TestServeCloseRacingRunWave(t *testing.T) {
	for round := 0; round < 8; round++ {
		s := newTestServer(t, 8, nil)
		var served [3]atomic.Int64
		var tks []*Ticket
		for i := 0; i < 64; i++ {
			tk, err := s.Submit(request(i, &served))
			if err != nil {
				t.Fatal(err)
			}
			tks = append(tks, tk)
		}
		waves := make(chan struct{})
		go func() {
			defer close(waves)
			// Hammer waves until shutdown turns them into no-ops.
			for i := 0; i < 64; i++ {
				s.RunWave()
			}
		}()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		<-waves
		for i, tk := range tks {
			select {
			case <-tk.Done():
			default:
				t.Fatalf("round %d: ticket %d leaked through the Close/RunWave race", round, i)
			}
		}
		tot := s.Totals()
		if tot.Completed != 64 || tot.Accurate+tot.Degraded+tot.Dropped != tot.Completed {
			t.Fatalf("round %d: outcome conservation broken across the race: %+v", round, tot)
		}
		// RunWave after shutdown stays a harmless no-op.
		if rep := s.RunWave(); rep.Admitted != 0 {
			t.Fatalf("round %d: post-Close wave admitted %d requests", round, rep.Admitted)
		}
	}
}

// TestServeConcurrentClose: a losing concurrent Close must block until the
// winning Close finished draining — when any Close returns, every accepted
// ticket is resolved and the energy report is frozen.
func TestServeConcurrentClose(t *testing.T) {
	s := newTestServer(t, 8, nil)
	var served [3]atomic.Int64
	var tks []*Ticket
	for i := 0; i < 48; i++ {
		tk, err := s.Submit(request(i, &served))
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	errs := make(chan error, 3)
	for c := 0; c < 3; c++ {
		go func() {
			err := s.Close()
			// The moment any Close returns, the contract must hold.
			for i, tk := range tks {
				select {
				case <-tk.Done():
				default:
					t.Errorf("ticket %d unresolved when a concurrent Close returned", i)
				}
			}
			errs <- err
		}()
	}
	for c := 0; c < 3; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if tot := s.Totals(); tot.Completed != 48 {
		t.Errorf("completed %d of 48 across concurrent Closes", tot.Completed)
	}
}

// TestServeShardedOverload runs the overload-step contract over a sharded
// engine: with Config.Shards the admission controller is hierarchical —
// global ratio over the router's merged waves, per-shard trim underneath —
// and the behavior must match the single-runtime server: quality sheds
// before requests, everything conserves, and the closed loop replays
// bit-identically (declared costs, round-robin placement, merged joules
// summed in the exact integer domain).
func TestServeShardedOverload(t *testing.T) {
	const base = 8
	run := func() (ratios []float64, joules []uint64, rejected int64, tot Totals) {
		// newTestServer's explicit WaveBudget (base accurate requests at
		// 60% utilization) is the fleet's aggregate capacity: admission
		// pacing is budget-driven, so it needs no per-shard scaling.
		s := newTestServer(t, base, func(c *Config) {
			c.Shards = 4
			c.Workers = 1
		})
		var served [3]atomic.Int64
		seq := 0
		for w := 0; w < 20; w++ {
			offered := base
			if w >= 6 && w < 12 {
				offered *= 4
			}
			for i := 0; i < offered; i++ {
				s.Submit(request(seq, &served))
				seq++
			}
			rep := s.RunWave()
			ratios = append(ratios, rep.NextRatio)
			joules = append(joules, math.Float64bits(rep.Joules))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		tot = s.Totals()
		return ratios, joules, tot.Rejected, tot
	}
	ratios, joules, rejected, tot := run()
	if rejected != 0 {
		t.Errorf("%d requests rejected; the sharded fleet should shed quality first", rejected)
	}
	if tot.Completed != tot.Submitted {
		t.Errorf("sharded totals leak requests: %+v", tot)
	}
	if tot.Accurate+tot.Degraded+tot.Dropped != tot.Completed {
		t.Errorf("sharded outcome conservation broken: %+v", tot)
	}
	minRatio := 1.0
	for _, r := range ratios[6:12] {
		minRatio = math.Min(minRatio, r)
	}
	if minRatio > 0.7 {
		t.Errorf("sharded ratio only fell to %.3f under a 4x step", minRatio)
	}
	if last := ratios[len(ratios)-1]; last < 0.95 {
		t.Errorf("sharded ratio %.3f did not recover after the step", last)
	}
	ratios2, joules2, _, _ := run()
	for w := range ratios {
		if ratios[w] != ratios2[w] || joules[w] != joules2[w] {
			t.Fatalf("sharded wave %d diverged across identical runs: ratio %v/%v joules %x/%x",
				w, ratios[w], ratios2[w], joules[w], joules2[w])
		}
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := New(Config{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := New(Config{MinRatio: 1.5}); err == nil {
		t.Error("MinRatio > 1 accepted")
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{}); err == nil {
		t.Error("nil Handler accepted")
	}
	// Half-declared costs silently corrupt the modeled energy account and
	// must be rejected outright.
	h := func() {}
	if _, err := s.Submit(Request{Handler: h, CostAccurate: -1}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := s.Submit(Request{Handler: h, CostDegraded: 5}); err == nil {
		t.Error("CostDegraded without CostAccurate accepted")
	}
	if _, err := s.Submit(Request{Handler: h, Degraded: h, CostAccurate: 5}); err == nil {
		t.Error("declared CostAccurate with undeclared Degraded cost accepted")
	}
	if _, err := s.Submit(Request{Handler: h, CostAccurate: 5, CostDegraded: 1}); err != nil {
		t.Errorf("fully declared request rejected: %v", err)
	}
	if _, err := s.Submit(Request{Handler: h, CostAccurate: 5}); err != nil {
		t.Errorf("declared drop-only request rejected: %v", err)
	}
	if _, err := s.Submit(Request{Handler: h, Degraded: h}); err != nil {
		t.Errorf("fully undeclared request rejected: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

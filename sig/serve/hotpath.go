package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/sig"
)

// The serving admission hot path. A steady-state request allocates nothing:
// Ticket and pending objects are drawn from pools and refcounted back,
// admitted requests coalesce into cost-class-keyed slabs of prebuilt
// TaskSpecs (one slab draw per serveSlabSize same-shaped requests instead of
// per-request spec construction), and every per-wave scratch slice —
// admit's batch, the open-class list, the flushed-slab list — is reused
// across waves. The slabs feed sig's SubmitBatch slab ingest, so the batch
// fast path PR 2 built for the scheduler now runs end-to-end from Submit.

// serveSlabSize is how many requests one cost-class slab carries — matched
// to sig's internal task slab size so one serve slab maps onto one task slab.
const serveSlabSize = 64

// serveTraceCap bounds the admission controller's retained trace: a server
// pumping waves every few milliseconds for days must not grow its telemetry
// without bound.
const serveTraceCap = 1024

// Admission lanes. laneOf maps a pending's lane flag onto the per-lane
// accounting index (the latency histograms, the metrics labels).
const (
	laneBulk     = 0
	lanePriority = 1
	laneCount    = 2
)

//siglint:noalloc
func laneOf(prio bool) int {
	if prio {
		return lanePriority
	}
	return laneBulk
}

// waveLatBuckets are the wave-latency histogram's upper bounds, in waves —
// the deterministic latency unit of the wave-driven serving layer. A
// request served by the wave after its arrival has latency 1.
var waveLatBuckets = [...]int64{1, 2, 4, 8, 16, 32}

// latHist is one lane's wave-latency histogram: lock-free single-bucket
// increments at ticket resolution, cumulated only at export time
// (Prometheus buckets are cumulative). Tolerating torn cross-bucket reads
// during a scrape keeps the record path at two uncontended atomic adds.
type latHist struct {
	buckets [len(waveLatBuckets) + 1]atomic.Int64 // last bucket: +Inf
	sum     atomic.Int64
}

//siglint:noalloc
func (h *latHist) record(waves int64) {
	i := 0
	for i < len(waveLatBuckets) && waves > waveLatBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(waves)
}

// snapshot returns the cumulative bucket counts plus the total count and
// latency sum, in Prometheus histogram form.
func (h *latHist) snapshot() (cum [len(waveLatBuckets) + 1]int64, count, sum int64) {
	for i := range h.buckets {
		count += h.buckets[i].Load()
		cum[i] = count
	}
	return cum, count, h.sum.Load()
}

// closedChan is the pre-closed channel Done returns once a pooled Ticket's
// wave completed and its lazily-created channel (if any) has been retired.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// Ticket tracks one admitted request through its wave. Tickets are pooled:
// the server holds one reference until the request's wave resolves, the
// caller holds the other. Calling Release returns the caller's reference so
// the Ticket can be recycled; it is optional (an unreleased Ticket is
// simply garbage collected) but must be the caller's last use — at most one
// Release per Ticket, only after Done. Every accessor reads atomically, so
// even a buggy late read on a recycled Ticket is race-free (it returns the
// next request's values, not torn memory).
type Ticket struct {
	outcome   atomic.Int32
	completed atomic.Bool
	// refs counts the outstanding references (server + caller); the Ticket
	// returns to the pool when both are released.
	refs       atomic.Int32
	enqWave    atomic.Int64
	doneWave   atomic.Int64
	enqueuedNs atomic.Int64
	finishedNs atomic.Int64

	mu   sync.Mutex
	done chan struct{} // created lazily by Done; nil when nobody waited
}

// Done is closed when the request's wave completed. The channel is created
// lazily: tickets polled through Outcome/Wait after completion never pay
// for one.
func (tk *Ticket) Done() <-chan struct{} {
	if tk.completed.Load() {
		return closedChan
	}
	tk.mu.Lock()
	// Re-check under the lock: complete() marks done-ness under the same
	// lock, so a completion between the fast-path check and here cannot
	// leave us waiting on a channel nobody will close.
	if tk.completed.Load() {
		tk.mu.Unlock()
		return closedChan
	}
	if tk.done == nil {
		tk.done = make(chan struct{})
	}
	d := tk.done
	tk.mu.Unlock()
	return d
}

// Wait blocks until the request's wave completed and returns the outcome.
func (tk *Ticket) Wait() Outcome {
	<-tk.Done()
	return Outcome(tk.outcome.Load())
}

// Outcome returns how the request was served; valid once Done is closed.
func (tk *Ticket) Outcome() Outcome { return Outcome(tk.outcome.Load()) }

// WaveLatency is the request's queueing+service delay in waves (≥ 1);
// valid once Done is closed. It is the deterministic latency metric of the
// wave-driven studies.
func (tk *Ticket) WaveLatency() int { return int(tk.doneWave.Load() - tk.enqWave.Load() + 1) }

// Latency is the wall-clock submit-to-completion delay; valid once Done is
// closed.
func (tk *Ticket) Latency() time.Duration {
	return time.Duration(tk.finishedNs.Load() - tk.enqueuedNs.Load())
}

// Release returns the caller's reference to the Ticket pool. Optional — an
// unreleased Ticket is garbage collected normally — but steady-state
// callers that Release after reading their outcome make the admission path
// allocation-free. Must be the last use: at most one Release per Ticket,
// only after Done, and no accessor calls afterwards.
func (tk *Ticket) Release() { tk.release() }

// release drops one reference; the last one resets the Ticket and recycles
// it.
//
//siglint:noalloc
func (tk *Ticket) release() {
	if tk.refs.Add(-1) != 0 {
		return
	}
	tk.completed.Store(false)
	tk.enqWave.Store(0)
	tk.doneWave.Store(0)
	tk.finishedNs.Store(0)
	tk.mu.Lock()
	tk.done = nil
	tk.mu.Unlock()
	ticketPool.Put(tk)
}

// complete publishes the wave resolution: latency metadata first, then the
// done edge (flag + channel close) under mu so Done's lazy channel cannot
// miss the close.
//
//siglint:noalloc
func (tk *Ticket) complete(wave, nowNs int64) {
	tk.doneWave.Store(wave)
	tk.finishedNs.Store(nowNs)
	tk.mu.Lock()
	tk.completed.Store(true)
	if tk.done != nil {
		close(tk.done)
		tk.done = nil
	}
	tk.mu.Unlock()
}

var (
	ticketPool  sync.Pool // of *Ticket
	pendingPool sync.Pool // of *pending
)

// getTicket draws a Ticket with both references (server + caller) live and
// the outcome preset to Dropped — a request shed without running any body
// needs no store at resolution time.
//
//siglint:poolget
//siglint:noalloc
func getTicket(nowNs int64) *Ticket {
	tk, _ := ticketPool.Get().(*Ticket)
	if tk == nil {
		tk = &Ticket{} //siglint:allocok pool miss: steady state always hits the pool
	}
	tk.refs.Store(2)
	tk.outcome.Store(int32(OutcomeDropped))
	tk.enqueuedNs.Store(nowNs)
	return tk
}

// discardTicket recycles a ticket that was never handed out (a rejected
// Submit): both references are still ours.
//
//siglint:poolput
//siglint:noalloc
func discardTicket(tk *Ticket) {
	tk.refs.Store(1)
	tk.release()
}

// getPending draws a pending-request slot.
//
//siglint:poolget
//siglint:noalloc
func getPending() *pending {
	p, _ := pendingPool.Get().(*pending)
	if p == nil {
		p = &pending{} //siglint:allocok pool miss: steady state always hits the pool
	}
	return p
}

// putPending recycles a pending after its wave, dropping the handler
// closures and ticket reference.
//
//siglint:poolput
//siglint:noalloc
func putPending(p *pending) {
	p.req = Request{}
	p.tk = nil
	pendingPool.Put(p)
}

// classKey identifies a cost class: requests with identical declared costs
// and the same degradability build identical TaskSpecs except for their
// significance and bodies, so one slab of prebuilt specs serves them all.
type classKey struct {
	acc    float64
	deg    float64
	hasDeg bool
}

// slabSlot carries the per-request state a slab spec's prebuilt closures
// read when they run: the bodies and the ticket to mark.
type slabSlot struct {
	fn  func()
	deg func()
	tk  *Ticket
}

// waveSlab is one cost class's submission unit: serveSlabSize slots and the
// matching prebuilt TaskSpecs whose closures capture their slot by pointer.
// Filling slot i costs two pointer stores, a ticket store and a
// significance store — no closure or spec construction. Slabs are recycled
// wave-synchronously: WaitPhase guarantees every task of the wave has
// completed before recycleSlabs runs, so no completion counting is needed.
type waveSlab struct {
	cls   *classState
	n     int
	slots [serveSlabSize]slabSlot
	specs [serveSlabSize]sig.TaskSpec
}

// classState is one cost class's slab supply: a pool of prebuilt slabs and
// the partially filled one of the current wave.
type classState struct {
	key  classKey
	pool sync.Pool // of *waveSlab
	cur  *waveSlab
	open bool // already on this wave's openClasses list
}

func newClassState(key classKey) *classState {
	cs := &classState{key: key}
	cs.pool.New = func() any { return newWaveSlab(cs) }
	return cs
}

// newWaveSlab prebuilds a class's specs once: the closures and cost fields
// are paid here, then amortized over every wave the slab serves.
func newWaveSlab(cs *classState) *waveSlab {
	sl := &waveSlab{cls: cs}
	k := cs.key
	for i := range sl.slots {
		slot := &sl.slots[i]
		spec := &sl.specs[i]
		spec.Fn = func() {
			slot.fn()
			slot.tk.outcome.Store(int32(OutcomeAccurate))
		}
		if k.hasDeg {
			spec.Approx = func() {
				slot.deg()
				slot.tk.outcome.Store(int32(OutcomeDegraded))
			}
		}
		spec.HasCost = k.acc > 0
		spec.CostAccurate = k.acc
		spec.CostApprox = k.deg
	}
	return sl
}

// coalesce routes one admitted request into its cost class's current slab,
// submitting the slab to the engine the moment it fills. Called from
// RunWave under waveMu.
//
//siglint:noalloc
func (s *Server) coalesce(p *pending) {
	key := classKey{acc: p.req.CostAccurate, deg: p.req.CostDegraded, hasDeg: p.req.Degraded != nil}
	cs := s.classes[key]
	if cs == nil {
		if s.classes == nil {
			s.classes = make(map[classKey]*classState) //siglint:allocok first request of the first wave; the map is retained for the server's lifetime
		}
		cs = newClassState(key) //siglint:allocok once per distinct cost class, not per request; classes are retained
		s.classes[key] = cs
	}
	if cs.cur == nil {
		cs.cur = cs.pool.Get().(*waveSlab)
		if !cs.open {
			cs.open = true
			s.openClasses = append(s.openClasses, cs) //siglint:allocok amortized growth of the reused per-wave open-class list
		}
	}
	sl := cs.cur
	i := sl.n
	sl.slots[i] = slabSlot{fn: p.req.Handler, deg: p.req.Degraded, tk: p.tk}
	sv := p.req.Significance
	if sv <= 0 {
		sv = -1 // batch spelling of the special 0.0
	}
	sl.specs[i].Significance = sv
	sl.n++
	if sl.n == serveSlabSize {
		s.eng.SubmitBatch(sl.specs[:sl.n])    //siglint:allocok engine boundary: sig's SubmitBatch amortizes into pooled slabs
		s.waveSlabs = append(s.waveSlabs, sl) //siglint:allocok amortized growth of the reused per-wave slab list
		cs.cur = nil
	}
}

// flushSlabs submits every class's partial slab, in class-first-seen order
// (deterministic for a deterministic arrival order), and resets the
// open-class list for the next wave.
//
//siglint:noalloc
func (s *Server) flushSlabs() {
	for i, cs := range s.openClasses {
		if sl := cs.cur; sl != nil {
			if sl.n > 0 {
				s.eng.SubmitBatch(sl.specs[:sl.n])    //siglint:allocok engine boundary: sig's SubmitBatch amortizes into pooled slabs
				s.waveSlabs = append(s.waveSlabs, sl) //siglint:allocok amortized growth of the reused per-wave slab list
			} else {
				cs.pool.Put(sl)
			}
			cs.cur = nil
		}
		cs.open = false
		s.openClasses[i] = nil
	}
	s.openClasses = s.openClasses[:0]
}

// recycleSlabs returns the wave's submitted slabs to their class pools.
// Callable only after WaitPhase: every task of the wave has completed, so
// no prebuilt closure can still run against a cleared slot.
//
//siglint:noalloc
func (s *Server) recycleSlabs() {
	for i, sl := range s.waveSlabs {
		for j := 0; j < sl.n; j++ {
			sl.slots[j] = slabSlot{} // drop body closures and ticket refs
		}
		sl.n = 0
		sl.cls.pool.Put(sl)
		s.waveSlabs[i] = nil
	}
	s.waveSlabs = s.waveSlabs[:0]
}

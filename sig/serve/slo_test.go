package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestServeBudgetTracksHealthDrain is the capacity-accounting regression
// test: when the health machinery auto-drains a shard (no autoscaler
// configured), the wave budget — the load signal's denominator — must
// shrink to the surviving fleet. Before the fix the budget was rebuilt only
// under an autoscaler, so a watchdog drain left capacity overstated and the
// controller admitting against shards that no longer exist.
func TestServeBudgetTracksHealthDrain(t *testing.T) {
	var sick atomic.Bool
	s, err := New(Config{
		Workers:    1,
		Shards:     3,
		QueueLimit: 64,
		WaveBudget: 3 * costAcc / 0.6,
		HealthProbe: func(shard int) error {
			if shard == 1 && sick.Load() {
				return fmt.Errorf("probe: shard %d unhealthy", shard)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	full := s.Budget()
	if rep := s.RunWave(); rep.LiveShards != 3 || rep.Budget != full {
		t.Fatalf("healthy fleet: LiveShards=%d Budget=%v, want 3 shards at %v", rep.LiveShards, rep.Budget, full)
	}

	// Sicken shard 1: each wave's failing probe is a strike; at the drain
	// threshold the router auto-drains it asynchronously, so poll the live
	// count across waves with a deadline.
	sick.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	live := 3
	for live != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("shard never auto-drained: live=%d health=%v", live, s.Fleet().HealthStates())
		}
		rep := s.RunWave()
		live = rep.LiveShards
	}

	// The drain may have landed mid-wave; the next wave's report must price
	// capacity from the two survivors.
	rep := s.RunWave()
	want := full * 2 / 3
	if rep.LiveShards != 2 || rep.Budget != want {
		t.Errorf("post-drain wave: LiveShards=%d Budget=%v, want 2 shards at %v", rep.LiveShards, rep.Budget, want)
	}
	if got := s.Budget(); got != want {
		t.Errorf("Budget() = %v after drain, want %v (pre-fix: stayed at %v)", got, want, full)
	}

	// And the load signal's denominator follows: an identical arrival burst
	// must measure 1.5x the load it did against three shards.
	var served [3]atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(request(i, &served)); err != nil {
			t.Fatal(err)
		}
	}
	rep = s.RunWave()
	wantLoad := 3 * costAcc * rep.Ratio / want // fresh arrivals only, empty backlog
	if rep.Load < wantLoad*0.99 {
		t.Errorf("post-drain load %v, want >= %v (budget denominator still at full fleet?)", rep.Load, wantLoad)
	}
}

// TestServeExpiredDeepInQueueFreesSlots is the stranded-expiry regression
// test: requests whose deadline passes while queued must not hold queue
// slots against live traffic, however deep they sit. Before the fix the
// admission skim stopped at the wave-budget cut-off and the queue-full
// Submit path never swept at all, so a backlog of expired requests pinned
// the queue at its limit and rejected everything after it.
func TestServeExpiredDeepInQueueFreesSlots(t *testing.T) {
	s := newTestServer(t, 4, func(c *Config) { c.QueueLimit = 8 })
	defer s.Close()
	var served [3]atomic.Int64

	deadline := time.Now().Add(20 * time.Millisecond)
	var tks []*Ticket
	for i := 0; i < 8; i++ {
		req := request(i, &served)
		req.Deadline = deadline
		tk, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	if _, err := s.Submit(request(8, &served)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue at limit: Submit err = %v, want ErrQueueFull", err)
	}
	time.Sleep(30 * time.Millisecond) // let every queued deadline lapse

	// The queue is nominally full — but full of corpses. A live Submit must
	// reap them and be admitted, not bounce.
	tk, err := s.Submit(request(8, &served))
	if err != nil {
		t.Fatalf("Submit after queued deadlines lapsed: %v (pre-fix: ErrQueueFull)", err)
	}
	if got := s.Depth(); got != 1 {
		t.Errorf("queue depth %d after the reap, want 1 (the live request)", got)
	}
	for i, exp := range tks {
		if out := exp.Wait(); out != OutcomeTimedOut {
			t.Errorf("expired ticket %d: outcome %v, want TimedOut", i, out)
		}
	}
	s.RunWave()
	if out := tk.Wait(); out == OutcomeTimedOut {
		t.Errorf("live request timed out; want it served")
	}
	tot := s.Totals()
	if tot.TimedOut != 8 || tot.Completed != 9 {
		t.Errorf("totals TimedOut=%d Completed=%d, want 8 and 9", tot.TimedOut, tot.Completed)
	}
}

// TestServePriorityLaneBypassesBacklog: a premium request submitted behind
// a deep bulk backlog is served by the very next wave, while the bulk tail
// waits multiple waves.
func TestServePriorityLaneBypassesBacklog(t *testing.T) {
	s := newTestServer(t, 4, func(c *Config) { c.PriorityAt = 0.9 })
	defer s.Close()
	var served [3]atomic.Int64

	var bulk []*Ticket
	for i := 0; i < 12; i++ {
		req := request(i, &served)
		req.Significance = 0.5
		tk, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		bulk = append(bulk, tk)
	}
	prioReq := request(0, &served)
	prioReq.Significance = 0.95
	prio, err := s.Submit(prioReq)
	if err != nil {
		t.Fatal(err)
	}

	rep := s.RunWave()
	if rep.PriorityAdmitted != 1 {
		t.Fatalf("wave admitted %d priority requests, want 1 (of %d total)", rep.PriorityAdmitted, rep.Admitted)
	}
	if got := prio.WaveLatency(); got != 1 {
		t.Errorf("priority request submitted 13th served with latency %d, want 1", got)
	}
	for s.Depth() > 0 {
		s.RunWave()
	}
	slow := 0
	for _, tk := range bulk {
		if tk.WaveLatency() > 1 {
			slow++
		}
	}
	if slow == 0 {
		t.Errorf("no bulk request waited past its arrival wave: the backlog the priority lane bypassed is missing")
	}
	if tot := s.Totals(); tot.Priority != 1 {
		t.Errorf("Totals.Priority = %d, want 1", tot.Priority)
	}
}

// TestServePriorityReservedSlice: the priority lane owns its slice of the
// queue limit outright — a bulk flood that fills its own lane cannot take
// the premium slots, and each lane's overflow prices its own backlog.
func TestServePriorityReservedSlice(t *testing.T) {
	s := newTestServer(t, 4, func(c *Config) {
		c.QueueLimit = 8
		c.PriorityAt = 0.9 // default slice: 8/4 = 2, bulk keeps 6
	})
	defer s.Close()
	var served [3]atomic.Int64

	mk := func(sig float64) Request {
		req := request(0, &served)
		req.Significance = sig
		return req
	}
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(mk(0.5)); err != nil {
			t.Fatalf("bulk submit %d: %v", i, err)
		}
	}
	var over *OverloadError
	if _, err := s.Submit(mk(0.5)); !errors.As(err, &over) {
		t.Fatalf("bulk lane full: err = %v, want OverloadError", err)
	}
	if over.RetryAfter <= 0 {
		t.Errorf("bulk overflow RetryAfter = %v, want > 0", over.RetryAfter)
	}

	// The bulk flood is bounced, but premium admission still has its slots.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(mk(0.95)); err != nil {
			t.Fatalf("priority submit %d with bulk lane full: %v", i, err)
		}
	}
	bulk, prio := s.LaneDepths()
	if bulk != 6 || prio != 2 {
		t.Fatalf("lane depths bulk=%d prio=%d, want 6 and 2", bulk, prio)
	}

	// Priority overflow prices only the priority backlog: 2 queued premium
	// requests against a 4-request budget is under one wave.
	var pOver *OverloadError
	if _, err := s.Submit(mk(0.95)); !errors.As(err, &pOver) {
		t.Fatalf("priority lane full: err = %v, want OverloadError", err)
	}
	if pOver.RetryAfter > over.RetryAfter {
		t.Errorf("priority RetryAfter %v above bulk's %v: premium overflow must not price the bulk backlog",
			pOver.RetryAfter, over.RetryAfter)
	}
}

// TestServeWindowedQualityFloor drives a sustained 4x overload whose
// unfloored equilibrium ratio sits far below the floor and checks the
// windowed SLO end to end: every full window's mean provided ratio holds
// the floor (within slack for provided-vs-commanded quantization), while
// individual waves still dip below it — the floor is a long-run average,
// not a per-wave clamp.
func TestServeWindowedQualityFloor(t *testing.T) {
	const window, floor = 8, 0.5
	s := newTestServer(t, 8, func(c *Config) {
		c.QualityFloor = floor
		c.QualityWindow = window
	})
	defer s.Close()
	var served [3]atomic.Int64

	var provided []float64
	for w := 0; w < 60; w++ {
		for i := 0; i < 32; i++ {
			if _, err := s.Submit(request(i, &served)); err != nil && !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
		}
		rep := s.RunWave()
		if rep.Admitted > 0 {
			provided = append(provided, rep.Provided)
		}
	}
	dipped := false
	for i := range provided {
		if provided[i] < floor-1e-9 {
			dipped = true
		}
		if i+1 < window {
			continue
		}
		var sum float64
		for _, p := range provided[i+1-window : i+1] {
			sum += p
		}
		if mean := sum / window; mean < floor-0.05 {
			t.Errorf("window ending at wave %d: mean provided %.3f below floor %.2f", i, mean, floor)
		}
	}
	if !dipped {
		t.Errorf("no wave dipped below the %.2f floor under 4x overload: the window floor is acting per-wave", floor)
	}
}

// TestServeOutcomeConservation drives seeded random Submit/RunWave/deadline
// interleavings and asserts the serving ledger balances at every quiescent
// point: everything submitted is rejected, completed, or still queued; and
// everything completed carries exactly one outcome. preExpired tracks
// Submits rejected already-expired (counted in both Rejected and TimedOut),
// so completed outcomes reconcile against queued timeouts alone.
func TestServeOutcomeConservation(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		s := newTestServer(t, 4, func(c *Config) {
			c.QueueLimit = 16
			c.PriorityAt = 0.7
		})
		var served [3]atomic.Int64
		var preExpired int64

		check := func(when string) {
			t.Helper()
			tot := s.Totals()
			if depth := int64(s.Depth()); tot.Submitted != tot.Rejected+tot.Completed+depth {
				t.Fatalf("seed %d, %s: Submitted %d != Rejected %d + Completed %d + Depth %d",
					seed, when, tot.Submitted, tot.Rejected, tot.Completed, depth)
			}
			queuedTimeouts := tot.TimedOut - preExpired
			if tot.Completed != tot.Accurate+tot.Degraded+tot.Dropped+queuedTimeouts {
				t.Fatalf("seed %d, %s: Completed %d != Accurate %d + Degraded %d + Dropped %d + queued timeouts %d",
					seed, when, tot.Completed, tot.Accurate, tot.Degraded, tot.Dropped, queuedTimeouts)
			}
			if tot.Priority > tot.Completed {
				t.Fatalf("seed %d, %s: Priority %d above Completed %d", seed, when, tot.Priority, tot.Completed)
			}
		}

		for op := 0; op < 400; op++ {
			switch v := rng.Float64(); {
			case v < 0.68: // submit, sometimes with a deadline (sometimes lapsed)
				req := request(rng.Intn(64), &served)
				req.Significance = rng.Float64()
				if d := rng.Float64(); d < 0.1 {
					req.Deadline = time.Now().Add(-time.Millisecond) // dead on arrival
				} else if d < 0.3 {
					req.Deadline = time.Now().Add(time.Duration(1+rng.Intn(10)) * time.Millisecond)
				}
				if _, err := s.Submit(req); errors.Is(err, ErrDeadlineExpired) {
					preExpired++
				}
			case v < 0.72: // let queued deadlines lapse
				time.Sleep(3 * time.Millisecond)
			default:
				s.RunWave()
				check("after wave")
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if depth := s.Depth(); depth != 0 {
			t.Fatalf("seed %d: depth %d after Close", seed, depth)
		}
		check("after Close")
	}
}

// TestServeWriteMetrics scrapes a lane-enabled server and checks the
// Prometheus exposition: the advertised families are present, counters
// agree with Totals, and the per-lane wave-latency histogram accounts for
// every completed request.
func TestServeWriteMetrics(t *testing.T) {
	s := newTestServer(t, 4, func(c *Config) { c.PriorityAt = 0.9 })
	var served [3]atomic.Int64
	for i := 0; i < 10; i++ {
		req := request(i, &served)
		if i%3 == 0 {
			req.Significance = 0.95
		} else {
			req.Significance = 0.5
		}
		if _, err := s.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	s.RunWave()

	var b strings.Builder
	if err := s.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	tot := s.Totals()
	bulkD, prioD := s.LaneDepths()
	for _, want := range []string{
		fmt.Sprintf("sigserve_submitted_total %d\n", tot.Submitted),
		fmt.Sprintf("sigserve_rejected_total %d\n", tot.Rejected),
		fmt.Sprintf("sigserve_completed_total{outcome=\"accurate\"} %d\n", tot.Accurate),
		fmt.Sprintf("sigserve_priority_completed_total %d\n", tot.Priority),
		fmt.Sprintf("sigserve_waves_total %d\n", tot.Waves),
		fmt.Sprintf("sigserve_queue_depth{lane=\"bulk\"} %d\n", bulkD),
		fmt.Sprintf("sigserve_queue_depth{lane=\"priority\"} %d\n", prioD),
		"# TYPE sigserve_wave_latency_waves histogram\n",
		"sigserve_wave_latency_waves_bucket{lane=\"priority\",le=\"1\"}",
		"sigserve_wave_latency_waves_bucket{lane=\"bulk\",le=\"+Inf\"}",
		"sigserve_live_shards 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Histogram conservation: every completed request was recorded in
	// exactly one lane's histogram.
	var counts int64
	for _, lane := range []string{"bulk", "priority"} {
		var n int64
		key := fmt.Sprintf("sigserve_wave_latency_waves_count{lane=%q} ", lane)
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, key) {
				if _, err := fmt.Sscanf(strings.TrimPrefix(line, key), "%d", &n); err != nil {
					t.Fatalf("unparseable count line %q: %v", line, err)
				}
			}
		}
		counts += n
	}
	if counts != tot.Completed {
		t.Errorf("histogram counts sum to %d, want Completed %d", counts, tot.Completed)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

package serve

import (
	"testing"
	"time"
)

// Microbenchmarks for the serving admission hot path: Submit + RunWave with
// trivial bodies and declared costs, so the measured time is the serving
// layer's own overhead (ticket/pending management, wave batch assembly,
// runtime ingest), not request execution. BENCH_sig.json records the
// before/after numbers under the "serve_hotpath" key.

// benchWave is the admitted batch size one benchmark wave carries: the same
// shape as the studies' overload waves (base 8 at 4x).
const benchWave = 32

// newBenchServer sizes a server so a benchWave of declared-cost requests
// exactly fills a wave's budget: every wave admits one full batch, the
// steady-state shape of the overload step. Shared with the hot-path tests.
func newBenchServer(tb testing.TB) *Server {
	tb.Helper()
	s, err := New(Config{
		Workers:    2,
		QueueLimit: 4 * benchWave,
		WaveBudget: benchWave * costAcc,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// benchRequest is the steady-state request shape: declared costs, trivial
// bodies, mid-range significance so the policy genuinely decides it.
func benchRequest() Request {
	return Request{
		Significance: 0.5,
		Handler:      func() {},
		Degraded:     func() {},
		CostAccurate: costAcc,
		CostDegraded: costDeg,
	}
}

// recycleTickets returns the collected tickets of a completed wave to the
// pool and resets the collection slice.
func recycleTickets(tks []*Ticket) []*Ticket {
	for i, tk := range tks {
		tk.Release()
		tks[i] = nil
	}
	return tks[:0]
}

// BenchmarkServeAdmission measures the per-request serving overhead on the
// steady-state path: one benchmark op is one request through Submit, a
// shared RunWave and ticket resolution. This is the headline number of the
// serve_hotpath ledger entry.
func BenchmarkServeAdmission(b *testing.B) {
	s := newBenchServer(b)
	defer s.Close()
	req := benchRequest()
	tks := make([]*Ticket, 0, benchWave)
	// Warm the pools and the controller: a few waves at the steady shape.
	for w := 0; w < 8; w++ {
		for i := 0; i < benchWave; i++ {
			tk, err := s.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			tks = append(tks, tk)
		}
		s.RunWave()
		tks = recycleTickets(tks)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for submitted := 0; submitted < b.N; {
		n := benchWave
		if rem := b.N - submitted; rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			tk, err := s.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			tks = append(tks, tk)
		}
		s.RunWave()
		tks = recycleTickets(tks)
		submitted += n
	}
}

// BenchmarkServeSubmit isolates the caller-side admission overhead: ticket
// and pending setup plus the queue append, with wave execution excluded
// from the timer. This is the per-request cost a client pays to enter the
// server, the number the multicore study sweeps across GOMAXPROCS.
func BenchmarkServeSubmit(b *testing.B) {
	s := newBenchServer(b)
	defer s.Close()
	req := benchRequest()
	limit := 4 * benchWave // the bench server's QueueLimit
	tks := make([]*Ticket, 0, limit)
	for w := 0; w < 8; w++ {
		for i := 0; i < benchWave; i++ {
			tk, err := s.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			tks = append(tks, tk)
		}
		s.RunWave()
		tks = recycleTickets(tks)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for submitted := 0; submitted < b.N; {
		n := limit
		if rem := b.N - submitted; rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			tk, err := s.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			tks = append(tks, tk)
		}
		b.StopTimer()
		for s.Depth() > 0 {
			s.RunWave()
		}
		tks = recycleTickets(tks)
		b.StartTimer()
		submitted += n
	}
}

// BenchmarkServeAdmit isolates the admit pop: Submit a wave's worth outside
// the timer, then time only the batch formation — the []*pending buffer
// reuse regression guard.
func BenchmarkServeAdmit(b *testing.B) {
	s := newBenchServer(b)
	defer s.Close()
	req := benchRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < benchWave; j++ {
			if _, err := s.Submit(req); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		batch := s.admit(time.Now())
		b.StopTimer()
		if len(batch) != benchWave {
			b.Fatalf("admitted %d of %d", len(batch), benchWave)
		}
		b.StartTimer()
	}
}

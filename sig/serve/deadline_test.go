package serve

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/sig"
	"repro/sig/shard"
)

// Deadline, retry-after and autoscale suite. Companion to
// TestServeDroppedRequestsCostZeroJoules: the timed-out outcome is the
// third way a request resolves without running, and like the other two it
// must model zero joules.

// TestServeExpiredAtSubmit: a request already past its deadline is
// rejected before it touches the queue — typed sentinel, timed-out
// accounting, zero modeled joules.
func TestServeExpiredAtSubmit(t *testing.T) {
	s := newTestServer(t, 8, nil)
	defer s.Close()
	var served [3]atomic.Int64

	req := request(0, &served)
	req.Deadline = time.Now().Add(-time.Second)
	tk, err := s.Submit(req)
	if !errors.Is(err, ErrDeadlineExpired) {
		t.Fatalf("expired Submit: got %v, want ErrDeadlineExpired", err)
	}
	if tk != nil {
		t.Fatal("expired Submit returned a ticket")
	}
	rep := s.RunWave()
	if rep.Admitted != 0 || rep.TimedOut != 0 {
		t.Fatalf("rejected request leaked into a wave: %+v", rep)
	}
	tot := s.Totals()
	if tot.Submitted != 1 || tot.Rejected != 1 || tot.TimedOut != 1 || tot.Completed != 0 {
		t.Fatalf("totals %+v, want 1 submitted/rejected/timed-out", tot)
	}
	if served[0].Load()+served[1].Load() != 0 {
		t.Fatal("a handler ran for an expired request")
	}
	if got := s.Energy().Joules; got != 0 {
		t.Fatalf("expired request modeled %v J, want 0", got)
	}
}

// TestServeQueuedDeadlineTimesOut: a request that expires while queued is
// resolved OutcomeTimedOut at the next wave — completion edge, ticket
// lifecycle and zero joules all intact — while fresh requests in the same
// wave are served normally.
func TestServeQueuedDeadlineTimesOut(t *testing.T) {
	s := newTestServer(t, 8, nil)
	defer s.Close()
	var served [3]atomic.Int64

	doomed := request(0, &served)
	doomed.Deadline = time.Now().Add(2 * time.Millisecond)
	dtk, err := s.Submit(doomed)
	if err != nil {
		t.Fatal(err)
	}
	ltk, err := s.Submit(request(1, &served)) // no deadline
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the deadline lapse in-queue

	rep := s.RunWave()
	if rep.TimedOut != 1 {
		t.Fatalf("wave timed out %d requests, want 1 (%+v)", rep.TimedOut, rep)
	}
	if rep.Admitted != 1 {
		t.Fatalf("wave admitted %d, want the one live request", rep.Admitted)
	}
	if got := dtk.Wait(); got != OutcomeTimedOut {
		t.Fatalf("doomed ticket outcome %v, want %v", got, OutcomeTimedOut)
	}
	if got := dtk.WaveLatency(); got != 1 {
		t.Errorf("timed-out ticket wave latency %d, want 1", got)
	}
	if got := ltk.Wait(); got != OutcomeAccurate {
		t.Fatalf("live ticket outcome %v, want accurate", got)
	}
	dtk.Release()
	ltk.Release()

	tot := s.Totals()
	if tot.Submitted != 2 || tot.Completed != 2 || tot.TimedOut != 1 || tot.Rejected != 0 {
		t.Fatalf("totals %+v, want 2 submitted, 2 completed, 1 timed out", tot)
	}
	// Only the surviving request's accurate handler may be charged.
	want := sig.DefaultActiveWatts * costAcc * 1e-9
	if got := s.Energy().Joules; got != want {
		t.Fatalf("joules %v, want %v (timed-out request must cost zero)", got, want)
	}
	if served[0].Load() != 1 || served[1].Load() != 0 {
		t.Fatalf("bodies ran %d/%d, want 1/0", served[0].Load(), served[1].Load())
	}
}

// TestServeOverloadErrorRetryAfter: queue-full rejections carry a backoff
// hint proportional to the backlog and still satisfy
// errors.Is(err, ErrQueueFull).
func TestServeOverloadErrorRetryAfter(t *testing.T) {
	s := newTestServer(t, 2, func(c *Config) { c.QueueLimit = 4 })
	defer s.Close()
	var served [3]atomic.Int64
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(request(i, &served)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Submit(request(4, &served))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Submit: got %v, want ErrQueueFull via errors.Is", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("overflow Submit error %T is not *OverloadError", err)
	}
	// Backlog = 4×costAcc at ratio 1; budget fits 2/0.6 ≈ 3.3 accurate
	// requests per wave → 2 waves to drain.
	if want := 2 * s.cfg.WavePeriod; oe.RetryAfter != want {
		t.Fatalf("RetryAfter %v, want %v", oe.RetryAfter, want)
	}
	if tot := s.Totals(); tot.Rejected != 1 {
		t.Fatalf("rejected %d, want 1", tot.Rejected)
	}
}

// TestServeAutoScale drives a sharded server through a load step and back
// and asserts the fleet followed: growth to MaxShards under sustained
// overload, shrink toward MinShards when idle, wave budget tracking the
// live shard count, and LiveShards reported on every wave.
func TestServeAutoScale(t *testing.T) {
	const base = 8
	s := newTestServer(t, base, func(c *Config) {
		c.Shards = 2
		c.Workers = 1
		// Full-quality contract: degradation cannot absorb the step, so the
		// load signal stays pinned above UpAt until capacity (shards) grows
		// — the regime autoscaling exists for.
		c.MinRatio = 1
		c.AutoScale = &shard.AutoscalerConfig{
			MinShards: 1, MaxShards: 4,
			UpAt: 1.5, DownAt: 0.2,
			UpAfter: 2, DownAfter: 3, Cooldown: 1,
		}
	})
	defer s.Close()
	if s.Fleet() == nil {
		t.Fatal("sharded server has no fleet accessor")
	}
	if got := s.Fleet().Shards(); got != 4 {
		t.Fatalf("slot capacity %d, want MaxShards 4", got)
	}

	var served [3]atomic.Int64
	// Sustained 6x overload: the controller degrades, the load signal
	// stays pinned above UpAt, the scaler grows the fleet to its cap.
	maxLive := 0
	for w := 0; w < 12; w++ {
		for i := 0; i < 6*base; i++ {
			if _, err := s.Submit(request(i, &served)); err != nil {
				t.Fatal(err)
			}
		}
		rep := s.RunWave()
		if rep.LiveShards > maxLive {
			maxLive = rep.LiveShards
		}
	}
	if maxLive != 4 {
		t.Fatalf("overload grew the fleet to %d shards, want 4", maxLive)
	}
	s.mu.Lock()
	budget := s.budget
	s.mu.Unlock()
	if want := s.budgetPerShard * 4; budget != want {
		t.Fatalf("budget %v after growth, want %v (per-shard × live)", budget, want)
	}

	// Idle waves: the scaler shrinks back to MinShards.
	last := 0
	for w := 0; w < 40 && last != 1; w++ {
		last = s.RunWave().LiveShards
	}
	if last != 1 {
		t.Fatalf("idle fleet still at %d shards, want MinShards 1", last)
	}
	s.mu.Lock()
	budget = s.budget
	s.mu.Unlock()
	if budget != s.budgetPerShard {
		t.Fatalf("budget %v after shrink, want per-shard %v", budget, s.budgetPerShard)
	}

	// Conservation across all the scaling: every admitted request resolved.
	tot := s.Totals()
	if tot.Completed != tot.Submitted-tot.Rejected {
		t.Fatalf("conservation: %+v", tot)
	}
}

// TestServeAutoScaleValidation pins the config guardrails.
func TestServeAutoScaleValidation(t *testing.T) {
	if _, err := New(Config{AutoScale: &shard.AutoscalerConfig{}}); err == nil {
		t.Fatal("AutoScale without shards accepted")
	}
	if _, err := New(Config{Shards: 4, AutoScale: &shard.AutoscalerConfig{MaxShards: 2}}); err == nil {
		t.Fatal("AutoScale.MaxShards below Shards accepted")
	}
	s, err := New(Config{Shards: 2, Workers: 1, AutoScale: &shard.AutoscalerConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Fleet().Shards(); got != 4 {
		t.Fatalf("default slot capacity %d, want 2×Shards", got)
	}
	s.Close()
}

// TestOutcomeTimedOutString covers the new outcome's formatting.
func TestOutcomeTimedOutString(t *testing.T) {
	if got := OutcomeTimedOut.String(); got != "timed-out" {
		t.Fatalf("OutcomeTimedOut.String() = %q", got)
	}
}

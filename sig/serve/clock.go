package serve

import (
	"sync/atomic"
	"time"
)

// WaveClock is the serving layer's single seam to real time. Every
// time-derived quantity in the package — Submit's deadline checks, ticket
// latency stamps, the per-wave wall-time measurement behind MeasuredPeriod
// and the pacer — flows through one Now per call site, so swapping the
// implementation swaps the package's entire notion of time at once.
//
// The production implementation (the zero Config) is the monotonic wall
// clock; FakeClock is the deterministic stand-in the replay studies and the
// fuzz/invariant suites inject so closed-loop runs — including the measured
// cadence — replay bit-identically.
type WaveClock interface {
	// Now returns the current time. Implementations must be monotone
	// non-decreasing: the pacer and the latency stamps subtract readings.
	Now() time.Time
}

// wallClock is the production WaveClock. Its Now is the package's one real
// clock read; everything else derives from values that passed through here.
type wallClock struct{}

//siglint:noalloc
func (wallClock) Now() time.Time {
	return time.Now() //siglint:wallclock the serving layer's single real-time read: deadlines, latency stamps and the measured-period EWMA all derive from it, never a policy input; replay injects a FakeClock through the same seam
}

// FakeClock is a deterministic WaveClock: time stands still except for
// explicit Advance calls. Studies give request handlers index-derived
// advances (cost(i) nanoseconds for request i), so a wave's measured wall
// time is the exact sum of the work it admitted — pure index arithmetic,
// independent of scheduling, worker count or host speed — and the whole
// measured-time loop (EWMA, pacer cadence, re-derived budget, RetryAfter)
// replays bit-identically.
//
// The offset is one atomic word: concurrent handler advances commute, so
// even racy wave execution yields the same end-of-wave reading.
type FakeClock struct {
	offset atomic.Int64 // nanoseconds since the fixed epoch
}

// NewFakeClock returns a FakeClock at the fixed epoch (Unix time zero).
func NewFakeClock() *FakeClock { return &FakeClock{} }

// Now returns the fake instant: epoch + the accumulated advances.
//
//siglint:noalloc
func (c *FakeClock) Now() time.Time {
	return time.Unix(0, c.offset.Load())
}

// Advance moves the fake clock forward by d (negative d is ignored — a
// WaveClock must never run backwards).
//
//siglint:noalloc
func (c *FakeClock) Advance(d time.Duration) {
	if d > 0 {
		c.offset.Add(int64(d))
	}
}

package serve

import (
	"sync"
	"testing"
)

// TestServeSubmitAllocs is the zero-alloc gate of the serving admission
// path: once the pools are warm, a full steady-state wave — benchWave
// Submits, one RunWave, ticket reads and Releases — performs no heap
// allocation at all, on any goroutine. It mirrors sig's TestSubmitAllocs
// one layer up: the request path from Submit through slab-coalesced batch
// ingest to ticket resolution.
func TestServeSubmitAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is noisy under -short race runs")
	}
	if raceEnabled {
		// -race defeats every sync.Pool on purpose (Put drops ~25% of
		// items), so the zero-alloc property cannot be observed; the
		// non-race job is the gate, the race job checks reuse safety.
		t.Skip("sync.Pool poisons Puts under -race; zero-alloc not observable")
	}
	s := newBenchServer(t)
	defer s.Close()
	req := benchRequest()
	tks := make([]*Ticket, 0, benchWave)
	wave := func() {
		for i := 0; i < benchWave; i++ {
			tk, err := s.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			tks = append(tks, tk)
		}
		s.RunWave()
		for _, tk := range tks {
			_ = tk.Outcome()
			_ = tk.WaveLatency()
		}
		tks = recycleTickets(tks)
	}
	// Warm every pool and reusable buffer: ticket/pending pools, the
	// wave's slab, admit's batch buffer, the queue's backing array.
	for i := 0; i < 8; i++ {
		wave()
	}
	avg := testing.AllocsPerRun(100, wave)
	if avg > 0.5 {
		t.Errorf("%.2f allocs per steady-state wave of %d requests, want 0", avg, benchWave)
	}
}

// TestTicketReuseSafety: pooled tickets may be read after their wave by a
// holder that already called Release (a bug, but a common one) — every
// accessor must stay race-free while the ticket is recycled and serves a
// new request. The stale reader loops over the full accessor surface while
// the main goroutine recycles the ticket through many reuse cycles; -race
// is the oracle. Properly used tickets must keep resolving correctly
// throughout.
func TestTicketReuseSafety(t *testing.T) {
	s := newBenchServer(t)
	defer s.Close()
	req := benchRequest()

	stale, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	s.RunWave()
	if o := stale.Wait(); o != OutcomeAccurate && o != OutcomeDegraded {
		t.Fatalf("warm-up request resolved %v", o)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Stale reads on a possibly-recycled ticket: values are
			// unspecified, but the reads must be race-free.
			_ = stale.Outcome()
			_ = stale.WaveLatency()
			_ = stale.Latency()
			select {
			case <-stale.Done():
			default:
			}
		}
	}()

	// Recycle the stale ticket and reuse the pool hard: each cycle likely
	// hands the same Ticket object to a new request while the reader above
	// still pokes at it.
	stale.Release()
	for i := 0; i < 200; i++ {
		tk, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		s.RunWave()
		if o := tk.Wait(); o != OutcomeAccurate && o != OutcomeDegraded {
			t.Fatalf("cycle %d resolved %v", i, o)
		}
		if tk.WaveLatency() < 1 {
			t.Fatalf("cycle %d: wave latency %d < 1", i, tk.WaveLatency())
		}
		tk.Release()
	}
	close(stop)
	wg.Wait()
}

// TestTicketReleaseOptional: an unreleased ticket keeps its resolved state
// forever — Release is an optimization, not an obligation.
func TestTicketReleaseOptional(t *testing.T) {
	s := newBenchServer(t)
	req := benchRequest()
	var tks []*Ticket
	for i := 0; i < benchWave; i++ {
		tk, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	s.RunWave()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, tk := range tks {
		if o := tk.Outcome(); o != OutcomeAccurate && o != OutcomeDegraded {
			t.Errorf("request %d resolved %v after Close", i, o)
		}
		select {
		case <-tk.Done():
		default:
			t.Errorf("request %d: Done not closed", i)
		}
	}
}

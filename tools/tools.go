//go:build tools

// Package tools records the repo's build-tool dependencies (the classic
// tools.go pattern). The import below ties staticcheck's module to this
// module's go.mod, where its version is pinned; the "tools" build tag keeps
// the package out of every real build.
package tools

import (
	_ "honnef.co/go/tools/cmd/staticcheck"
)

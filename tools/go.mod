// Tool dependency pins. This module exists so `make vet`, `make lint` and
// CI all install the same staticcheck: the Makefile and the workflow grep
// the version out of the require line below instead of hard-coding it in
// three places. Its own go.mod keeps it out of the main module's `./...`
// (and the main module's build graph) entirely.
//
// Release 2024.1.1 of the tool corresponds to module version v0.5.1 of
// honnef.co/go/tools.
module repro/tools

go 1.22

require honnef.co/go/tools v0.5.1 // staticcheck 2024.1.1

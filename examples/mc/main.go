// MC example: Monte-Carlo PDE boundary estimation with dropped walk batches.
//
// The estimator computes the Laplace solution on a subdomain boundary from
// random walks. Because the boundary condition is harmonic, the analytic
// solution is known, so this example reports both the error versus the
// accurate run (the paper's metric) and the true error — showing that
// dropping half the walk batches barely moves the estimate.
//
// Run with:
//
//	go run ./examples/mc [-points 96] [-walks 600]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/bench/mc"
	"repro/sig"
)

func main() {
	points := flag.Int("points", 96, "estimation points on the subdomain boundary")
	walks := flag.Int("walks", 600, "random walks per batch")
	flag.Parse()

	p := mc.DefaultParams()
	p.Points = *points
	p.WalksPerBatch = *walks
	app := mc.New(p)

	ref := app.Sequential()

	fmt.Printf("%-22s %12s %14s %14s\n", "ratio of batches", "energy", "err vs accurate", "true err")
	for _, ratio := range []float64{1.0, 0.8, 0.5, 0.25} {
		rt, err := sig.New(sig.Config{Policy: sig.PolicyGTB, GTBWindow: 24})
		if err != nil {
			log.Fatal(err)
		}
		est := app.Run(rt, ratio)
		rt.Close()
		rep := rt.Energy()
		fmt.Printf("%-22.2f %11.2fJ %13.4f%% %13.4f%%\n",
			ratio, rep.Joules, app.Quality(ref, est), trueErr(app, est))
	}
}

// trueErr is the mean relative error against the analytic solution.
func trueErr(app *mc.App, est []float64) float64 {
	var sum float64
	for k := range est {
		exact := app.Exact(k)
		sum += math.Abs(est[k]-exact) / math.Abs(exact)
	}
	return 100 * sum / float64(len(est))
}

// Quickstart: the smallest end-to-end use of the significance-aware runtime.
//
// A batch of tasks computes squares of integers. Tasks handling small inputs
// are declared less significant and carry an approximate body (a cheap
// linear estimate); the taskwait ratio asks for 60% of the tasks to run
// accurately. The run prints which tasks ran accurately, the achieved ratio
// and the modeled energy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/sig"
)

func main() {
	rt, err := sig.New(sig.Config{
		Workers: 4,
		Policy:  sig.PolicyGTBMaxBuffer, // buffer all tasks, decide exactly
	})
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	const n = 20
	results := make([]float64, n)
	exact := make([]bool, n)

	// tpc_init_group: group "squares" with 60% of tasks accurate.
	grp := rt.Group("squares", 0.6)

	for i := 0; i < n; i++ {
		i := i
		x := float64(i)
		rt.Submit(
			func() { results[i] = x * x; exact[i] = true }, // accurate body
			sig.WithLabel(grp),
			// Larger inputs contribute more to the final sum, so they
			// are more significant (range 0.1..0.9, avoiding the
			// unconditional special values 0.0 and 1.0).
			sig.WithSignificance(0.1+0.8*float64(i)/float64(n-1)),
			// approxfun: a crude linear estimate.
			sig.WithApprox(func() { results[i] = 2*x - 1 }),
			sig.Out(sig.SliceRange(results, i, i+1)),
		)
	}

	// #pragma omp taskwait label(squares)
	rt.Wait(grp)

	var sum float64
	fmt.Println("task  input  result  accurate?")
	for i, r := range results {
		fmt.Printf("%4d %6d %7.1f  %v\n", i, i, r, exact[i])
		sum += r
	}
	fmt.Printf("\nsum of squares (approximate): %.1f (exact would be %d)\n", sum, (n-1)*n*(2*n-1)/6)

	st := rt.Stats()
	for _, g := range st.Groups {
		if g.Name != "squares" {
			continue
		}
		fmt.Printf("group %q: %d accurate / %d approximate (requested ratio %.0f%%, provided %.0f%%)\n",
			g.Name, g.Accurate, g.Approximate, 100*g.RequestedRatio, 100*g.ProvidedRatio)
	}
	rep := rt.Energy()
	fmt.Printf("modeled energy: %.3f mJ over %v\n", 1000*rep.Joules, rep.Wall.Round(1000))
}

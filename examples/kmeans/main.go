// Kmeans example: exploring the quality/energy trade-off with one knob.
//
// The same clustering problem runs under a sweep of accuracy ratios — the
// single parameter the programming model exposes for quality control — and
// prints time, modeled energy, iterations and clustering-quality error for
// each point of the trade-off space.
//
// Run with:
//
//	go run ./examples/kmeans [-n 32768] [-policy gtb|lqh]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bench/kmeans"
	"repro/sig"
)

func main() {
	n := flag.Int("n", 32768, "number of observations")
	policy := flag.String("policy", "gtb", "accuracy policy: gtb, gtbmax or lqh")
	flag.Parse()

	p := kmeans.DefaultParams()
	p.N = *n
	app := kmeans.New(p)

	fmt.Println("computing accurate reference...")
	ref := app.Sequential()
	fmt.Printf("reference: %d iterations\n\n", ref.Iterations)

	var kind sig.PolicyKind
	switch *policy {
	case "gtb":
		kind = sig.PolicyGTB
	case "gtbmax":
		kind = sig.PolicyGTBMaxBuffer
	case "lqh":
		kind = sig.PolicyLQH
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	fmt.Printf("%-8s %10s %12s %8s %14s\n", "ratio", "time", "energy", "iters", "inertia err %")
	for _, ratio := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
		rt, err := sig.New(sig.Config{Policy: kind})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res := app.Run(rt, ratio)
		wall := time.Since(start)
		rt.Close()
		rep := rt.Energy()
		fmt.Printf("%-8.2f %10v %11.2fJ %8d %14.5f\n",
			ratio, wall.Round(time.Microsecond), rep.Joules, res.Iterations, app.Quality(ref, res))
	}
}

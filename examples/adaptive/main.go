// Adaptive example: closing the quality/energy loop on a streaming
// workload.
//
// The batch examples pick an accuracy ratio by hand and keep it forever.
// A long-running service cannot: the operator cares about "hold PSNR above
// 17 dB with minimum energy", and the right ratio depends on the content —
// which changes mid-stream. This walkthrough runs Sobel edge detection
// over a stream of frames under an adapt.Controller that owns the group's
// ratio:
//
//  1. the stream starts fully accurate; the controller walks the ratio
//     down to the cheapest point that still holds the PSNR setpoint
//     (step response);
//  2. halfway through, the scene switches to one with fine horizontal
//     texture the approximate kernel cannot reproduce; quality crashes,
//     and the controller walks the ratio back up until the setpoint holds
//     again (disturbance rejection).
//
// Run with:
//
//	go run ./examples/adaptive [-size 512] [-setpoint 17] [-waves 24]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench/sobel"
	"repro/internal/imaging"
	"repro/sig"
	"repro/sig/adapt"
)

func main() {
	size := flag.Int("size", 512, "frame edge length in pixels")
	setpoint := flag.Float64("setpoint", 17, "PSNR setpoint in dB")
	waves := flag.Int("waves", 24, "number of frames to stream")
	flag.Parse()

	app := sobel.New(sobel.Params{W: *size, H: *size, Seed: 1})
	ref := app.Sequential()
	out := imaging.NewImage(*size, *size)

	// The controller regulates the "sobel" group: after every wave it
	// reads the quality probe and retunes the group's ratio. TargetQuality
	// treats the setpoint as a floor — it settles at the cheapest ratio
	// keeping the probe at or above it.
	ctl, err := adapt.New(adapt.Config{
		Group:     "sobel",
		Objective: adapt.TargetQuality,
		Setpoint:  *setpoint,
		Probe:     func() float64 { return imaging.PSNR(ref, out) },
	})
	if err != nil {
		log.Fatal(err)
	}

	// Attach the controller through the runtime's Observer hook. Max
	// buffering makes each wave's decisions exact, so the whole run is
	// deterministic and replayable.
	rt, err := sig.New(sig.Config{Policy: sig.PolicyGTBMaxBuffer, Observer: ctl})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	grp := rt.Group("sobel", 1.0) // wave 0 runs fully accurate

	fmt.Printf("streaming %d frames of %dx%d sobel, PSNR setpoint %.1f dB\n\n",
		*waves, *size, *size, *setpoint)
	fmt.Printf("%-5s %-6s %6s %6s %8s %10s\n", "wave", "scene", "req%", "prov%", "PSNR", "energy")
	scene := "A"
	for w := 0; w < *waves; w++ {
		if w == *waves/2 {
			// Mid-stream scene change: heavy horizontal texture. The
			// reference (and thus the probe) tracks the new scene.
			app.SetScene(2, 0.75)
			ref = app.Sequential()
			scene = "B"
		}
		// One frame = one wave: submit the frame's row tasks, then
		// taskwait with telemetry. The controller observes the wave
		// inside WaitPhase and retunes grp's ratio for the next frame.
		app.SubmitFrame(rt, grp, out)
		ws := rt.WaitPhase(grp)
		fmt.Printf("%-5d %-6s %6.1f %6.1f %8.2f %9.4fJ\n",
			w, scene, 100*ws.RequestedRatio, 100*ws.ProvidedRatio,
			imaging.PSNR(ref, out), ws.Joules)
	}

	trace := ctl.Trace()
	held := 0
	for _, s := range trace {
		if s.Held {
			held++
		}
	}
	fmt.Printf("\ncontroller: %d waves observed, %d at steady state, final ratio %.3f\n",
		len(trace), held, ctl.Ratio())
	fmt.Println("rerun it: the trajectory is bit-identical — fixed inputs, modeled costs,")
	fmt.Println("deterministic decisions and a pure-arithmetic control law.")
}

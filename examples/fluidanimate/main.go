// Fluidanimate example: alternating accurate and approximate time steps.
//
// The SPH fluid simulation runs with different accurate-step periods (the
// ratio clause alternated between 1.0 and 0.0 across consecutive time steps,
// as the paper describes), printing position error versus the fully accurate
// run and the modeled energy saving.
//
// Run with:
//
//	go run ./examples/fluidanimate [-n 4096] [-steps 30]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench/fluidanimate"
	"repro/sig"
)

func main() {
	n := flag.Int("n", 4096, "number of particles")
	steps := flag.Int("steps", 30, "simulation time steps")
	flag.Parse()

	p := fluidanimate.DefaultParams()
	p.N = *n
	p.Steps = *steps
	app := fluidanimate.New(p)

	fmt.Println("running fully accurate reference...")
	ref := app.Sequential()

	var baseJoules float64
	fmt.Printf("%-28s %12s %12s %12s\n", "configuration", "energy", "vs accurate", "pos err %")
	for _, cfg := range []struct {
		name  string
		every int
	}{
		{"accurate every step", 1},
		{"every 2nd step (mild)", 2},
		{"every 4th step (medium)", 4},
		{"every 8th step (aggressive)", 8},
	} {
		rt, err := sig.New(sig.Config{Policy: sig.PolicyLQH})
		if err != nil {
			log.Fatal(err)
		}
		st := app.Run(rt, cfg.every)
		rt.Close()
		rep := rt.Energy()
		if cfg.every == 1 {
			baseJoules = rep.Joules
		}
		fmt.Printf("%-28s %11.2fJ %11.2fx %12.4f\n",
			cfg.name, rep.Joules, rep.Joules/baseJoules, app.Quality(ref, st))
	}
	fmt.Println("\nnote: loop perforation cannot express this pattern — dropping the")
	fmt.Println("movement of a subset of particles violates the physics; the ratio")
	fmt.Println("clause alternation expresses it with one parameter.")
}

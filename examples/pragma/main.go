// Pragma example: the compilation-toolchain path of the programming model.
//
// The paper's Listing 1 annotates plain C with #pragma omp task directives
// that a source-to-source compiler lowers to runtime calls. This example
// feeds the Go equivalent — //sig: directive comments — through the sigcc
// translator (package pragma) and prints the code it generates.
//
// Run with:
//
//	go run ./examples/pragma
package main

import (
	"fmt"
	"log"

	"repro/internal/pragma"
)

// annotated is Listing 1's sobel function, written in the directive dialect.
const annotated = `package main

// sobel filters img into res, one task per output row.
func sobel(rt *sig.Runtime, img, res []byte, height int) {
	for i := 1; i < height-1; i++ {
		//sig:task label(sobel) in(img) out(res) significant(float64(i%9+1) / 10) approxfun(sblTaskAppr)
		sblTask(res, img, i)
	}
	//sig:taskwait label(sobel) ratio(0.35)
}
`

func main() {
	out, err := pragma.TransformFile("listing1.go", []byte(annotated), pragma.Options{Runtime: "rt"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- input (directive dialect) ---")
	fmt.Print(annotated)
	fmt.Println("--- output of sigcc ---")
	fmt.Print(string(out))
}

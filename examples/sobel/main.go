// Sobel example: the paper's running example (Listing 1) on the Go API.
//
// An edge-detection filter runs once fully accurately and once per
// approximation level; the outputs are composed into the Figure 1 quadrant
// mosaic (accurate / mild / medium / aggressive) and written as sobel.pgm,
// with PSNR and energy printed per level.
//
// Run with:
//
//	go run ./examples/sobel [-size 1024] [-out sobel.pgm]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench/sobel"
	"repro/internal/imaging"
	"repro/sig"
)

func main() {
	size := flag.Int("size", 1024, "image edge length in pixels")
	out := flag.String("out", "sobel.pgm", "output PGM path")
	flag.Parse()

	app := sobel.New(sobel.Params{W: *size, H: *size, Seed: 1})
	ref := app.Sequential()

	levels := []struct {
		name  string
		ratio float64
	}{
		{"mild (80% accurate)", 0.8},
		{"medium (30% accurate)", 0.3},
		{"aggressive (0% accurate)", 0.0},
	}
	outputs := make([]*imaging.Image, len(levels))
	for i, lv := range levels {
		rt, err := sig.New(sig.Config{Policy: sig.PolicyGTBMaxBuffer})
		if err != nil {
			log.Fatal(err)
		}
		res := app.Run(rt, lv.ratio)
		rt.Close()
		rep := rt.Energy()
		outputs[i] = res
		fmt.Printf("%-26s PSNR %6.2f dB   energy %7.2f J   wall %v\n",
			lv.name, app.PSNR(ref, res), rep.Joules, rep.Wall.Round(100000))
	}

	mosaic, err := imaging.Quadrants(ref, outputs[0], outputs[1], outputs[2])
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := mosaic.WritePGM(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (quadrants: accurate | mild / medium | aggressive)\n", *out)
}

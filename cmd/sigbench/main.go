// Command sigbench regenerates every table and figure of the paper's
// evaluation (section 4) on the Go reproduction of the significance-aware
// runtime.
//
// Usage:
//
//	sigbench table1
//	sigbench fig1   [-out fig1.pgm] [-scale 0.25]
//	sigbench fig2   [-bench Sobel,DCT] [-scale 0.25] [-workers 16] [-reps 3]
//	sigbench fig3   [-out fig3.pgm] [-scale 0.25]
//	sigbench fig4   [-scale 0.25] [-workers 16] [-reps 3]
//	sigbench table2 [-scale 0.25] [-workers 16]
//	sigbench ablate [-scale 0.25] [-workers 16]
//	sigbench adaptive [-scale 0.25] [-setpoint 16] [-waves 24] [-append-bench BENCH_sig.json]
//	sigbench serve  [-scale 0.25] [-workers 16] [-backend sobel|kmeans|all] [-shards 4] [-append-bench BENCH_sig.json]
//	sigbench slo    [-append-bench BENCH_sig.json]
//	sigbench pace   [-append-bench BENCH_sig.json]
//	sigbench shard  [-reps 3] [-append-bench BENCH_sig.json]
//	sigbench fleet  [-append-bench BENCH_sig.json]
//	sigbench multicore [-procs 1,2,4,8] [-reps 3] [-append-bench BENCH_sig.json]
//	sigbench all    [-scale 0.25] [-workers 16]
//
// Scale 1.0 reproduces evaluation-size problems; smaller scales shrink the
// workloads proportionally for quick runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		scale   = fs.Float64("scale", 1.0, "problem scale in (0,1]; 1.0 = evaluation scale")
		workers = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		reps    = fs.Int("reps", 1, "repetitions to average over")
		benches = fs.String("bench", "", "comma-separated benchmark subset (default all)")
		out     = fs.String("out", "", "output PGM path for fig1/fig3")

		setpoint = fs.Float64("setpoint", 0, "adaptive: PSNR setpoint in dB (0 = default 16)")
		waves    = fs.Int("waves", 0, "adaptive: sobel stream length in waves (0 = default 24)")
		appendTo = fs.String("append-bench", "", "adaptive/serve/shard: merge summary numbers into this BENCH json file")
		backend  = fs.String("backend", "sobel", "serve: request backend (sobel, kmeans or all)")
		shards   = fs.Int("shards", 0, "serve: run the sharded fleet scenario with this many runtime shards")
		procs    = fs.String("procs", "", "multicore: comma-separated GOMAXPROCS levels (default 1,2,4,8)")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	// The shared -reps flag defaults to 1 (the fig2/fig4 averaging
	// convention); the shard study's own default is 3 best-of reps, so it
	// only honors the flag when the user actually set it.
	repsSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "reps" {
			repsSet = true
		}
	})
	shardReps := 0
	if repsSet {
		shardReps = *reps
	}
	opt := harness.Options{Scale: *scale, Workers: *workers, Repetitions: *reps}
	if *benches != "" {
		opt.Benches = strings.Split(*benches, ",")
	}
	var err error
	switch cmd {
	case "table1":
		harness.Table1(os.Stdout)
	case "fig1":
		err = runFig1(*out, "fig1.pgm", *scale, *workers, harness.Fig1)
	case "fig3":
		err = runFig1(*out, "fig3.pgm", *scale, *workers, harness.Fig3)
	case "fig2":
		err = runFig2(opt)
	case "fig4":
		err = runFig4(opt)
	case "table2":
		err = runTable2(opt)
	case "ablate":
		err = runAblations(opt)
	case "adaptive":
		err = runAdaptive(*scale, *workers, *setpoint, *waves, *appendTo)
	case "serve":
		err = runServe(*scale, *workers, *shards, *backend, *appendTo)
	case "slo":
		err = runSLO(*appendTo)
	case "pace":
		err = runPace(*appendTo)
	case "shard":
		err = runShard(shardReps, *appendTo)
	case "fleet":
		err = runFleet(*appendTo)
	case "multicore":
		err = runMulticore(*procs, shardReps, *appendTo)
	case "all":
		harness.Table1(os.Stdout)
		fmt.Println()
		if err = runFig1("fig1.pgm", "fig1.pgm", *scale, *workers, harness.Fig1); err != nil {
			break
		}
		if err = runFig1("fig3.pgm", "fig3.pgm", *scale, *workers, harness.Fig3); err != nil {
			break
		}
		if err = runFig2(opt); err != nil {
			break
		}
		fmt.Println()
		if err = runFig4(opt); err != nil {
			break
		}
		fmt.Println()
		if err = runTable2(opt); err != nil {
			break
		}
		fmt.Println()
		if err = runAblations(opt); err != nil {
			break
		}
		if err = runAdaptive(*scale, *workers, *setpoint, *waves, ""); err != nil {
			break
		}
		fmt.Println()
		if err = runServe(*scale, *workers, 0, "all", ""); err != nil {
			break
		}
		fmt.Println()
		if err = runShard(shardReps, ""); err != nil {
			break
		}
		fmt.Println()
		if err = runSLO(""); err != nil {
			break
		}
		fmt.Println()
		if err = runPace(""); err != nil {
			break
		}
		fmt.Println()
		if err = runFleet(""); err != nil {
			break
		}
		fmt.Println()
		err = runMulticore("", shardReps, "")
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sigbench {table1|fig1|fig2|fig3|fig4|table2|ablate|adaptive|serve|slo|pace|shard|fleet|multicore|all} [flags]")
	fmt.Fprintln(os.Stderr, "run 'sigbench <cmd> -h' for per-command flags")
}

func runFig1(out, def string, scale float64, workers int,
	f func(string, float64, int) (map[harness.Degree]float64, error)) error {
	if out == "" {
		out = def
	}
	psnrs, err := f(out, scale, workers)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (quadrants: accurate / Mild / Medium / Aggressive)\n", out)
	for _, d := range []harness.Degree{harness.Mild, harness.Medium, harness.Aggressive} {
		fmt.Printf("  %-7s PSNR = %6.2f dB\n", d, psnrs[d])
	}
	return nil
}

func runFig2(opt harness.Options) error {
	fmt.Println("Figure 2: execution time, energy and quality per benchmark/degree/policy.")
	fmt.Println("Quality: 1/PSNR for Sobel and DCT, relative error (%) otherwise; lower is better.")
	fmt.Println()
	harness.FormatMeasurementHeader(os.Stdout)
	return harness.Fig2(opt, func(m harness.Fig2Row) {
		harness.PrintFig2Row(os.Stdout, m, "")
	})
}

func runFig4(opt harness.Options) error {
	rows, err := harness.Fig4(opt)
	if err != nil {
		return err
	}
	harness.PrintFig4(os.Stdout, rows)
	return nil
}

func runTable2(opt harness.Options) error {
	rows, err := harness.Table2(opt)
	if err != nil {
		return err
	}
	harness.PrintTable2(os.Stdout, rows)
	return nil
}

// runAdaptive executes the adaptive-controller study, prints it, and (when
// appendTo names a BENCH json file) merges the convergence summary into it
// under the "adaptive" key.
func runAdaptive(scale float64, workers int, setpoint float64, waves int, appendTo string) error {
	res, err := harness.AdaptiveStudy(harness.AdaptiveConfig{
		Scale: scale, Workers: workers, Setpoint: setpoint, Waves: waves,
	})
	if err != nil {
		return err
	}
	harness.PrintAdaptiveStudy(os.Stdout, res)
	if appendTo == "" {
		return nil
	}
	return appendBench(appendTo, res)
}

// mergeBenchKey round-trips the BENCH json file through a generic map and
// sets/replaces one top-level entry. Sub-keys the new value does not carry
// are kept from the file, so refreshing one serve backend's numbers never
// erases the other's.
func mergeBenchKey(path, key string, value map[string]any) error {
	doc := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if old, ok := doc[key].(map[string]any); ok {
		for k, v := range old {
			if _, exists := value[k]; !exists {
				value[k] = v
			}
		}
	}
	doc[key] = value
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// appendBench merges the adaptive study's convergence numbers under the
// BENCH json file's "adaptive" key.
func appendBench(path string, res harness.AdaptiveResult) error {
	kmeansFinal := harness.AdaptiveWave{}
	if n := len(res.KmeansRows); n > 0 {
		kmeansFinal = res.KmeansRows[n-1]
	}
	return mergeBenchKey(path, "adaptive", map[string]any{
		"subject":              "sig/adapt controller convergence (harness.AdaptiveStudy)",
		"host":                 hostEntry(),
		"setpoint_db":          res.Setpoint,
		"tolerance":            res.Tolerance,
		"sobel_oracle_ratio":   []float64{res.Segments[0].OracleRatio, res.Segments[1].OracleRatio},
		"sobel_converged_in":   []int{res.Segments[0].ConvergedAfter, res.Segments[1].ConvergedAfter},
		"sobel_steady_ratio":   []float64{res.Segments[0].SteadyRatio, res.Segments[1].SteadyRatio},
		"sobel_steady_psnr_db": []float64{res.Segments[0].SteadyPSNR, res.Segments[1].SteadyPSNR},
		"kmeans_budget_j":      res.KmeansBudget,
		"kmeans_oracle_ratio":  res.KmeansOracleRatio,
		"kmeans_final_ratio":   kmeansFinal.Provided,
		"kmeans_final_joules":  kmeansFinal.Joules,
	})
}

// runServe executes the serving overload study on the selected backends,
// prints it, and (when appendTo names a BENCH json file) merges the
// summary under the "serve" key. With shards ≥ 2 the study runs over the
// sharded fleet and its numbers land under "<backend>@<N>shards".
func runServe(scale float64, workers, shards int, backend, appendTo string) error {
	names := []string{backend}
	if backend == "all" {
		names = []string{"sobel", "kmeans"}
	}
	entry := map[string]any{
		"subject": "sig/serve load-shedding under a 4x overload step (harness.ServeStudy)",
		"host":    hostEntry(),
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		res, err := harness.ServeStudy(harness.ServeConfig{Scale: scale, Workers: workers, Shards: shards, Backend: name})
		if err != nil {
			return err
		}
		harness.PrintServeStudy(os.Stdout, res)
		key := name
		if shards >= 2 {
			key = fmt.Sprintf("%s@%dshards", name, shards)
		}
		entry[key] = map[string]any{
			"shards":                   res.Shards,
			"base_per_wave":            res.BasePerWave,
			"overload":                 res.Overload,
			"pre_step_ratio":           res.PreStepRatio,
			"min_step_ratio":           res.MinStepRatio,
			"recovered_after_waves":    res.RecoveredAfter,
			"latency_waves_p50":        res.P50,
			"latency_waves_p99":        res.P99,
			"rejected":                 res.Rejected,
			"completed":                res.Outcomes.Completed,
			"dropped":                  res.Outcomes.Dropped,
			"total_joules":             res.TotalJoules,
			"closed_loop_clients":      res.Clients,
			"closed_loop_req_per_wave": res.ClosedThroughput,
			"closed_loop_ratio":        res.ClosedRatio,
		}
	}
	if appendTo == "" {
		return nil
	}
	return mergeBenchKey(appendTo, "serve", entry)
}

// runSLO executes the serving-SLO study (measured reactions vs the derived
// secant-law bounds, the windowed quality floor, the priority lane), prints
// it, and (when appendTo names a BENCH json file) merges the summary under
// the "slo" key.
func runSLO(appendTo string) error {
	res, err := harness.SLOStudy(harness.SLOConfig{})
	if err != nil {
		return err
	}
	harness.PrintSLOStudy(os.Stdout, res)
	if appendTo == "" {
		return nil
	}
	reactions := map[string]any{}
	for _, row := range res.Reaction {
		reactions[fmt.Sprintf("%.0fx", row.Overload)] = map[string]any{
			"pre_ratio":     row.PreRatio,
			"shed_waves":    row.ShedWaves,
			"shed_bound":    row.ShedBound,
			"backlog":       row.Backlog,
			"drain_waves":   row.DrainWaves,
			"recover_waves": row.RecoverWaves,
			"recover_bound": row.RecoverBound,
		}
	}
	return mergeBenchKey(appendTo, "slo", map[string]any{
		"subject":           "serving SLOs: measured reactions vs derived secant-law bounds, windowed floor, priority lane (harness.SLOStudy)",
		"host":              hostEntry(),
		"base_per_wave":     res.BasePerWave,
		"utilization":       res.Utilization,
		"reactions":         reactions,
		"all_within_bound":  res.AllWithinBound,
		"floor":             res.Floor,
		"floor_window":      res.Window,
		"min_window_mean":   res.MinWindowMean,
		"min_wave_provided": res.MinProvided,
		"floor_dips":        res.FloorDips,
		"priority_at":       res.PriorityAt,
		"premium_completed": res.PremiumCompleted,
		"prio_p50_waves":    res.PrioP50,
		"prio_p99_waves":    res.PrioP99,
		"bulk_p50_waves":    res.BulkP50,
		"bulk_p99_waves":    res.BulkP99,
	})
}

// runPace executes the measured-time pacing study (cadence convergence to
// the true wave wall, counted overruns, measured-period RetryAfter honesty,
// bit-identical fake-clock replay), prints it, and (when appendTo names a
// BENCH json file) merges the summary under the "pace" key.
func runPace(appendTo string) error {
	res, err := harness.PaceStudy(harness.PaceConfig{})
	if err != nil {
		return err
	}
	harness.PrintPaceStudy(os.Stdout, res)
	if appendTo == "" {
		return nil
	}
	return mergeBenchKey(appendTo, "pace", map[string]any{
		"subject":               "measured-time wave pacing: autotuned cadence, counted overruns, measured-period RetryAfter (harness.PaceStudy)",
		"host":                  hostEntry(),
		"base_per_wave":         res.BasePerWave,
		"waves":                 res.Waves,
		"nominal_period_ms":     res.NominalMs,
		"true_mean_wall_ms":     res.TrueMeanMs,
		"final_pace_ms":         res.FinalPaceMs,
		"measured_period_ms":    res.MeasuredMs,
		"converged":             res.Converged,
		"converged_at_wave":     res.ConvergedAt,
		"overruns":              res.Overruns,
		"waves_run":             res.WavesRun,
		"pace_calls":            res.PaceCalls,
		"retry_after_ms":        res.RetryAfterMs,
		"observed_drain_ms":     res.DrainMs,
		"retry_before_ms":       res.RetryBeforeMs,
		"retry_err_before":      res.RetryErrBefore,
		"retry_err_after":       res.RetryErrAfter,
		"retry_within_one_wave": res.RetryWithinOneWave,
		"shed_bound_ms":         res.ShedBoundMs,
		"shed_bound_nominal_ms": res.ShedBoundNominalMs,
		"recover_bound_ms":      res.RecoverBoundMs,
		"replay_bit_identical":  res.ReplayIdentical,
	})
}

// runShard executes the multi-runtime sharding study, prints it, and (when
// appendTo names a BENCH json file) merges the summary under the "shard"
// key — the home of the headline burst-ingest speedup number.
func runShard(reps int, appendTo string) error {
	res, err := harness.ShardStudy(harness.ShardStudyConfig{Reps: reps})
	if err != nil {
		return err
	}
	harness.PrintShardStudy(os.Stdout, res)
	if appendTo == "" {
		return nil
	}
	tput := map[string]any{}
	for _, row := range res.Rows {
		tput[fmt.Sprintf("%d", row.Shards)] = row.IngestTput
	}
	return mergeBenchKey(appendTo, "shard", map[string]any{
		"subject":              "sig/shard burst submit throughput and energy additivity (harness.ShardStudy)",
		"host":                 hostEntry(),
		"burst_tasks":          res.Burst,
		"workers_per_shard":    res.WorkersPerShard,
		"queue_capacity":       res.QueueCapacity,
		"submit_tput_per_s":    tput,
		"speedup_4_shards":     res.Speedup,
		"joules_bit_identical": res.JoulesAdditive,
		"golden_joules":        res.GoldenJoules,
	})
}

// runFleet executes the elastic-fleet study (rolling replace + autoscale
// step response), prints it, and (when appendTo names a BENCH json file)
// merges the summary under the "fleet" key.
func runFleet(appendTo string) error {
	res, err := harness.FleetStudy(harness.FleetStudyConfig{})
	if err != nil {
		return err
	}
	harness.PrintFleetStudy(os.Stdout, res)
	if appendTo == "" {
		return nil
	}
	return mergeBenchKey(appendTo, "fleet", map[string]any{
		"subject":              "self-healing elastic fleet: rolling replace + autoscale step response (harness.FleetStudy)",
		"host":                 hostEntry(),
		"shards":               res.Replace.Shards,
		"replaced":             res.Replace.Replaced,
		"submitted":            res.Replace.Submitted,
		"lost":                 res.Replace.Lost,
		"degraded_waves":       res.Replace.DegradedWaves,
		"joules_bit_identical": res.Replace.JoulesBitIdentical,
		"merged_joules":        res.Replace.MergedJoules,
		"waves_to_scale_up":    res.Scale.WavesToScaleUp,
		"waves_to_scale_down":  res.Scale.WavesToScaleDown,
		"oscillations":         res.Scale.Oscillations,
		"live_trajectory":      res.Scale.Trajectory,
	})
}

// runMulticore executes the GOMAXPROCS sweep, prints it, and (when
// appendTo names a BENCH json file) merges the rows — host shape included —
// under the "multicore" key.
func runMulticore(procsFlag string, reps int, appendTo string) error {
	var procs []int
	if procsFlag != "" {
		for _, s := range strings.Split(procsFlag, ",") {
			var p int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &p); err != nil || p < 1 {
				return fmt.Errorf("bad -procs entry %q", s)
			}
			procs = append(procs, p)
		}
	}
	res, err := harness.MulticoreStudy(harness.MulticoreConfig{Procs: procs, Reps: reps})
	if err != nil {
		return err
	}
	harness.PrintMulticoreStudy(os.Stdout, res)
	if appendTo == "" {
		return nil
	}
	rows := map[string]any{}
	for _, row := range res.Rows {
		rows[fmt.Sprintf("%d", row.Procs)] = map[string]any{
			"submit_tput_per_s": row.SubmitTput,
			"burst_tput_per_s":  row.BurstTput,
			"admit_ns_per_req":  row.AdmitNsPerReq,
		}
	}
	return mergeBenchKey(appendTo, "multicore", map[string]any{
		"subject":      "GOMAXPROCS sweep: submit throughput, sharded burst ingest, serve admission overhead (harness.MulticoreStudy)",
		"host":         hostEntry(),
		"submit_tasks": res.SubmitTasks,
		"burst_tasks":  res.Burst,
		"serve_waves":  res.ServeWaves,
		"per_wave":     res.PerWave,
		"procs":        rows,
	})
}

// hostEntry is the host-shape object every new BENCH entry carries.
func hostEntry() map[string]any {
	h := harness.Host()
	e := map[string]any{
		"cpus":       h.CPUs,
		"gomaxprocs": h.GoMaxProcs,
		"go":         h.GoVersion,
	}
	if h.Commit != "" {
		e["commit"] = h.Commit
	}
	return e
}

func runAblations(opt harness.Options) error {
	sweep, err := harness.GTBWindowSweep(opt, []int{4, 16, 64, 256, 0})
	if err != nil {
		return err
	}
	harness.PrintWindowSweep(os.Stdout, sweep)
	fmt.Println()
	oracle, err := harness.OracleComparison(opt)
	if err != nil {
		return err
	}
	harness.PrintOracleComparison(os.Stdout, oracle)
	fmt.Println()
	dvfs, err := harness.DVFSStudy(opt)
	if err != nil {
		return err
	}
	harness.PrintDVFSStudy(os.Stdout, dvfs)
	fmt.Println()
	return harness.NTCStudy(os.Stdout)
}

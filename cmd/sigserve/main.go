// Command sigserve is the significance-aware load-shedding service front
// end: an HTTP server that admits each request into the sig/serve wave
// pipeline with a significance derived from its user tier. Under overload
// the admission controller degrades response quality (cheap degraded
// handlers, then drops for best-effort traffic) before it rejects anything.
//
// Usage:
//
//	sigserve [-addr :8080] [-backend sobel|kmeans] [-scale 0.25]
//	         [-workers 0] [-shards 1] [-period 5ms] [-queue 4096]
//	         [-min-period 0] [-max-period 0]
//	         [-minratio 0] [-target-load 1.0] [-deadline 0]
//	         [-autoscale] [-max-shards 0] [-priority-at 0]
//	         [-quality-floor 0] [-quality-window 0]
//
// With -shards N (N ≥ 2) the server runs over a shard.Router fleet of N
// runtime shards (-workers is then the per-shard pool) and the admission
// controller is hierarchical: global load cap over merged waves, per-shard
// ratio trim underneath. -autoscale additionally lets the fleet grow and
// shrink between 1 and -max-shards (default 2×N) live shards with demand.
//
// -deadline D gives every request a default deadline D from arrival
// (0 = none); a request may override it with ?deadline_ms=N. Requests that
// expire before Submit are rejected 504; requests that expire while queued
// resolve as the timed-out outcome, also 504, at zero modeled joules.
// Queue-full rejections are 503 with a Retry-After header carrying the
// server's backlog-drain estimate, priced in measured wave periods.
//
// -period P is the nominal wave cadence; the background pump measures each
// wave's wall time and retimes itself toward the EWMA within [-min-period,
// -max-period] (defaults P/4 and 8×P). Waves that outrun the cadence are
// counted, never dropped — /stats reports overruns and the measured and
// paced periods, /metrics the matching gauges.
//
// -priority-at S (in (0,1]) enables the priority admission lane: requests
// with significance >= S (e.g. tier=gold at 1.0) queue in a reserved slice
// of the limit and are drained ahead of the bulk FIFO each wave.
// -quality-floor F holds the mean provided accuracy ratio over the last
// -quality-window waves (default 16) at or above F — the windowed quality
// SLO; individual waves may still dip below it.
//
// Endpoints:
//
//	GET /work?tier=gold|silver|bronze|batch   serve one request at the
//	    (or ?sig=0.7) [&deadline_ms=50]       tier's significance
//	GET /stats                                serving counters + ratio
//	GET /metrics                              Prometheus text exposition
//	GET /healthz                              liveness
//
// Example:
//
//	sigserve -backend sobel -scale 0.1 &
//	for i in $(seq 64); do curl -s 'localhost:8080/work?tier=bronze' & done
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/sig/serve"
	"repro/sig/shard"
)

// tiers maps user tiers onto significances: gold is the special 1.0
// (never degraded), batch the special 0.0 (always degraded or dropped).
var tiers = map[string]float64{
	"gold":   1.0,
	"silver": 0.7,
	"bronze": 0.3,
	"batch":  0.0,
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		backendSel = flag.String("backend", "sobel", "request backend: sobel or kmeans")
		scale      = flag.Float64("scale", 0.25, "backend problem scale in (0,1]")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); per shard with -shards")
		shards     = flag.Int("shards", 0, "runtime shards behind the router (0/1 = single runtime)")
		period     = flag.Duration("period", serve.DefaultWavePeriod, "nominal wave period (the pacer retimes to the measured wall within the min/max bounds)")
		minPeriod  = flag.Duration("min-period", 0, "pacer cadence floor (0 = period/4)")
		maxPeriod  = flag.Duration("max-period", 0, "pacer cadence ceiling (0 = 8x period)")
		queue      = flag.Int("queue", serve.DefaultQueueLimit, "admission queue limit")
		minRatio   = flag.Float64("minratio", 0, "quality contract: lowest accuracy ratio")
		targetLoad = flag.Float64("target-load", serve.DefaultTargetLoad, "admission controller load cap")
		deadline   = flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
		autoscale  = flag.Bool("autoscale", false, "autoscale the shard fleet with load (needs -shards >= 2)")
		maxShards  = flag.Int("max-shards", 0, "autoscale ceiling (0 = 2x -shards)")
		priorityAt = flag.Float64("priority-at", 0, "priority lane threshold: significance at or above it bypasses the bulk queue (0 = no lane)")
		floor      = flag.Float64("quality-floor", 0, "windowed quality SLO: mean provided ratio over the window stays at or above this (0 = none)")
		floorWin   = flag.Int("quality-window", 0, "quality-floor averaging window in waves (0 = default)")
	)
	flag.Parse()

	// Flag combinations that can only be mistakes fail at parse time with
	// usage, not as a late serve.New error after the backend spin-up.
	if *autoscale && *shards < 2 {
		fmt.Fprintf(os.Stderr, "sigserve: -autoscale requires -shards >= 2 (got -shards %d)\n", *shards)
		flag.Usage()
		os.Exit(2)
	}
	if *floorWin > 0 && *floor == 0 {
		fmt.Fprintln(os.Stderr, "sigserve: -quality-window requires -quality-floor")
		flag.Usage()
		os.Exit(2)
	}

	backend, err := harness.ServeBackendByName(*backendSel, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigserve:", err)
		os.Exit(2)
	}
	cfg := serve.Config{
		Workers:       *workers,
		Shards:        *shards,
		QueueLimit:    *queue,
		WavePeriod:    *period,
		MinPeriod:     *minPeriod,
		MaxPeriod:     *maxPeriod,
		MinRatio:      *minRatio,
		TargetLoad:    *targetLoad,
		PriorityAt:    *priorityAt,
		QualityFloor:  *floor,
		QualityWindow: *floorWin,
	}
	if *autoscale {
		cfg.AutoScale = &shard.AutoscalerConfig{MaxShards: *maxShards}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigserve:", err)
		os.Exit(2)
	}
	srv.Start()

	var seq atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		req := backend.NewRequest(int(seq.Add(1) - 1))
		if sig, ok, err := requestSignificance(r); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		} else if ok {
			req.Significance = sig
		}
		start := time.Now()
		if d, ok, err := requestDeadline(r, *deadline, start); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		} else if ok {
			req.Deadline = d
		}
		tk, err := srv.Submit(req)
		var oe *serve.OverloadError
		switch {
		case errors.Is(err, serve.ErrDeadlineExpired):
			http.Error(w, "deadline expired before admission", http.StatusGatewayTimeout)
			return
		case errors.As(err, &oe):
			w.Header().Set("Retry-After", retryAfterSeconds(oe.RetryAfter))
			http.Error(w, "overloaded: admission queue full", http.StatusServiceUnavailable)
			return
		case errors.Is(err, serve.ErrQueueFull):
			http.Error(w, "overloaded: admission queue full", http.StatusServiceUnavailable)
			return
		case errors.Is(err, serve.ErrClosed):
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		select {
		case <-tk.Done():
		case <-r.Context().Done():
			// The wave still completes the work; only the caller left.
			http.Error(w, "client gave up", http.StatusRequestTimeout)
			return
		}
		if tk.Outcome() == serve.OutcomeTimedOut {
			http.Error(w, "deadline expired in queue", http.StatusGatewayTimeout)
			return
		}
		writeJSON(w, map[string]any{
			"outcome":       tk.Outcome().String(),
			"significance":  req.Significance,
			"wave_latency":  tk.WaveLatency(),
			"latency_ms":    float64(time.Since(start).Microseconds()) / 1000,
			"current_ratio": srv.Ratio(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		tot := srv.Totals()
		live := 1
		if fleet := srv.Fleet(); fleet != nil {
			live = fleet.Live()
		}
		bulkDepth, prioDepth := srv.LaneDepths()
		writeJSON(w, map[string]any{
			"backend":            backend.Name,
			"shards":             max(*shards, 1),
			"live_shards":        live,
			"ratio":              srv.Ratio(),
			"load":               srv.Load(),
			"budget":             srv.Budget(),
			"depth":              srv.Depth(),
			"bulk_depth":         bulkDepth,
			"priority_depth":     prioDepth,
			"waves":              tot.Waves,
			"overruns":           tot.Overruns,
			"measured_period_ms": float64(srv.MeasuredPeriod().Microseconds()) / 1000,
			"pace_period_ms":     float64(srv.PacePeriod().Microseconds()) / 1000,
			"submitted":          tot.Submitted,
			"rejected":           tot.Rejected,
			"completed":          tot.Completed,
			"accurate":           tot.Accurate,
			"degraded":           tot.Degraded,
			"dropped":            tot.Dropped,
			"timedout":           tot.TimedOut,
			"priority":           tot.Priority,
			"joules":             tot.Joules,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = srv.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutCtx)
	}()
	log.Printf("sigserve: %s backend on %s (%d shard(s), period %v, queue %d, minratio %.2f)",
		backend.Name, *addr, max(*shards, 1), *period, *queue, *minRatio)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sigserve:", err)
		os.Exit(1)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sigserve:", err)
		os.Exit(1)
	}
	tot := srv.Totals()
	log.Printf("sigserve: served %d (%d acc / %d deg / %d drop), rejected %d, %.4f J modeled",
		tot.Completed, tot.Accurate, tot.Degraded, tot.Dropped, tot.Rejected, tot.Joules)
}

// requestSignificance resolves ?tier= (named) or ?sig= (numeric) to a
// significance; ok is false when neither is present.
func requestSignificance(r *http.Request) (sig float64, ok bool, err error) {
	if tier := r.URL.Query().Get("tier"); tier != "" {
		s, found := tiers[tier]
		if !found {
			return 0, false, fmt.Errorf("unknown tier %q (want gold, silver, bronze or batch)", tier)
		}
		return s, true, nil
	}
	if raw := r.URL.Query().Get("sig"); raw != "" {
		s, err := strconv.ParseFloat(raw, 64)
		if err != nil || s < 0 || s > 1 {
			return 0, false, fmt.Errorf("sig must be a number in [0,1], got %q", raw)
		}
		return s, true, nil
	}
	return 0, false, nil
}

// requestDeadline resolves the request's deadline: ?deadline_ms=N wins,
// otherwise the server-wide -deadline default applies; ok is false when
// neither is set.
func requestDeadline(r *http.Request, def time.Duration, now time.Time) (time.Time, bool, error) {
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms <= 0 {
			return time.Time{}, false, fmt.Errorf("deadline_ms must be a positive number, got %q", raw)
		}
		return now.Add(time.Duration(ms * float64(time.Millisecond))), true, nil
	}
	if def > 0 {
		return now.Add(def), true, nil
	}
	return time.Time{}, false, nil
}

// retryAfterSeconds renders a backoff hint as the integral seconds the
// Retry-After header requires, rounding sub-second hints up to 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

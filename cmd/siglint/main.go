// Command siglint is the repo's invariant linter: a suite of static
// analyzers that prove, at compile time, the properties the runtime's
// tests can only sample — replay determinism, all-or-nothing atomic field
// access, pool get/put pairing on every path, and a zero-allocation hot
// path.
//
// Run it through the go command (the Makefile's `make lint` does this):
//
//	go build -o siglint.bin ./cmd/siglint
//	go vet -vettool=$PWD/siglint.bin ./...
//
// or standalone during development:
//
//	go run ./cmd/siglint ./...
//
// Configuration lives in source as //siglint: directives; see
// internal/analysis for the vocabulary.
package main

import (
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/poolpair"
)

func main() {
	driver.Main(
		determinism.Analyzer,
		atomicfield.Analyzer,
		poolpair.Analyzer,
		noalloc.Analyzer,
	)
}

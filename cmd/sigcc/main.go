// Command sigcc is the source-to-source translator of the significance-aware
// programming model: it lowers //sig:task and //sig:taskwait directive
// comments in Go source files to calls of the sig runtime API, playing the
// role of the paper's SCOOP-based #pragma compiler.
//
// Usage:
//
//	sigcc [-rt runtimeVar] [-o out.go] input.go
//	sigcc [-rt runtimeVar] -w input.go ...
//
// With -w files are rewritten in place; with -o (single input) the result is
// written to the given path; otherwise it goes to standard output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pragma"
)

func main() {
	var (
		rtVar   = flag.String("rt", "rt", "name of the in-scope *sig.Runtime variable")
		out     = flag.String("o", "", "output file (default stdout; single input only)")
		inPlace = flag.Bool("w", false, "rewrite files in place")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sigcc [-rt var] [-o out.go | -w] input.go ...")
		os.Exit(2)
	}
	if *out != "" && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "sigcc: -o requires exactly one input file")
		os.Exit(2)
	}
	opt := pragma.Options{Runtime: *rtVar}
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fail(err)
		}
		res, err := pragma.TransformFile(name, src, opt)
		if err != nil {
			fail(err)
		}
		switch {
		case *inPlace:
			if err := os.WriteFile(name, res, 0o644); err != nil {
				fail(err)
			}
		case *out != "":
			if err := os.WriteFile(*out, res, 0o644); err != nil {
				fail(err)
			}
		default:
			os.Stdout.Write(res)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sigcc:", err)
	os.Exit(1)
}

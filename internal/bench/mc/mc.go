// Package mc is the paper's Monte Carlo benchmark: estimating a harmonic
// function on interior points of the unit square from random lattice walks.
// Each task runs one batch of walks for one point; early batches are more
// significant, and there is no approximate body — an approximated batch is
// simply dropped, thinning the sample without biasing the estimator.
//
// The boundary condition u(x,y) = x² − y² + 3x + 8 is discrete-harmonic on
// the lattice, so the walk estimator is unbiased and App.Exact gives the
// true solution for free.
package mc

import (
	"math"

	"repro/internal/rng"
	"repro/sig"
)

// Params sizes the problem.
type Params struct {
	// Points is the number of interior estimation points.
	Points int
	// WalksPerBatch is the number of random walks per task.
	WalksPerBatch int
	// Batches is the number of batch tasks per point.
	Batches int
	// GridN is the lattice resolution of the unit square.
	GridN int
	Seed  int64
}

// DefaultParams matches the example defaults.
func DefaultParams() Params {
	return Params{Points: 96, WalksPerBatch: 600, Batches: 8, GridN: 24, Seed: 3}
}

// App is one Monte Carlo instance.
type App struct {
	p  Params
	px []int // lattice coordinates of the estimation points
	py []int
}

// New places Points estimation points on an inner ring of the lattice.
func New(p Params) *App {
	if p.Points < 1 {
		p.Points = 1
	}
	if p.Batches < 1 {
		p.Batches = 1
	}
	if p.GridN < 8 {
		p.GridN = 8
	}
	a := &App{p: p, px: make([]int, p.Points), py: make([]int, p.Points)}
	n := float64(p.GridN)
	for k := 0; k < p.Points; k++ {
		th := 2 * math.Pi * float64(k) / float64(p.Points)
		x := int(math.Round(0.55*n + 0.22*n*math.Cos(th)))
		y := int(math.Round(0.45*n + 0.22*n*math.Sin(th)))
		a.px[k] = min(max(x, 1), p.GridN-1)
		a.py[k] = min(max(y, 1), p.GridN-1)
	}
	return a
}

// Tasks returns the number of tasks one Run submits.
func (a *App) Tasks() int { return a.p.Points * a.p.Batches }

// boundary evaluates the harmonic boundary condition at lattice (i, j).
func (a *App) boundary(i, j int) float64 {
	x := float64(i) / float64(a.p.GridN)
	y := float64(j) / float64(a.p.GridN)
	return x*x - y*y + 3*x + 8
}

// Exact returns the analytic solution at estimation point k.
func (a *App) Exact(k int) float64 { return a.boundary(a.px[k], a.py[k]) }

// batchMean runs one batch of walks from point k and returns the mean
// absorbed boundary value. Seeding is by (point, batch), so the estimate
// under any policy is a deterministic subset of the reference's samples.
func (a *App) batchMean(k, batch int) float64 {
	n := a.p.GridN
	src := rng.Raw(uint64(a.p.Seed)*0x9e3779b97f4a7c15 +
		uint64(k)*0xbf58476d1ce4e5b9 + uint64(batch)*0x94d049bb133111eb + 1)
	var sum float64
	for w := 0; w < a.p.WalksPerBatch; w++ {
		i, j := a.px[k], a.py[k]
		for i > 0 && i < n && j > 0 && j < n {
			// Two bits of the generator pick the direction.
			switch src.Uint64() >> 62 {
			case 0:
				i++
			case 1:
				i--
			case 2:
				j++
			default:
				j--
			}
		}
		sum += a.boundary(i, j)
	}
	return sum / float64(a.p.WalksPerBatch)
}

// Sequential computes the full-sample reference estimate.
func (a *App) Sequential() []float64 {
	est := make([]float64, a.p.Points)
	for k := range est {
		var sum float64
		for b := 0; b < a.p.Batches; b++ {
			sum += a.batchMean(k, b)
		}
		est[k] = sum / float64(a.p.Batches)
	}
	return est
}

// Run estimates all points under the runtime, one task per (point, batch).
func (a *App) Run(rt *sig.Runtime, ratio float64) []float64 {
	nb := a.p.Batches
	means := make([]float64, a.p.Points*nb)
	done := make([]bool, a.p.Points*nb)
	grp := rt.Group("mc", ratio)
	for k := 0; k < a.p.Points; k++ {
		for b := 0; b < nb; b++ {
			k, b := k, b
			slot := k*nb + b
			sigv := 0.9
			if nb > 1 {
				// Early batches matter more: dropping late ones
				// only widens the estimator variance.
				sigv = 0.9 - 0.8*float64(b)/float64(nb-1)
			}
			// Expected walk length from (i,j) is i(n−i)+j(n−j) steps.
			esteps := float64(a.px[k]*(a.p.GridN-a.px[k]) + a.py[k]*(a.p.GridN-a.py[k]))
			rt.Submit(
				func() { means[slot] = a.batchMean(k, b); done[slot] = true },
				sig.WithLabel(grp),
				sig.WithSignificance(sigv),
				sig.WithCost(float64(a.p.WalksPerBatch)*esteps*2, 0),
				sig.Out(sig.SliceRange(means, slot, slot+1)),
			)
		}
	}
	rt.Wait(grp)
	est := make([]float64, a.p.Points)
	for k := 0; k < a.p.Points; k++ {
		var sum float64
		var cnt int
		for b := 0; b < nb; b++ {
			if done[k*nb+b] {
				sum += means[k*nb+b]
				cnt++
			}
		}
		if cnt > 0 {
			est[k] = sum / float64(cnt)
		}
	}
	return est
}

// Quality is the mean relative error (%) of est against the reference.
func (a *App) Quality(ref, est []float64) float64 {
	var sum float64
	for k := range ref {
		sum += math.Abs(est[k]-ref[k]) / math.Abs(ref[k])
	}
	return 100 * sum / float64(len(ref))
}

// Package dct implements the paper's DCT benchmark: an 8×8 blocked forward
// DCT where each task computes one zigzag frequency band for a stripe of
// blocks. Low-frequency bands carry high significance; approximating a band
// leaves its coefficients zero (the JPEG-style degradation), so no explicit
// approximate body is needed — the runtime's task-dropping path models it.
package dct

import (
	"math"

	"repro/internal/imaging"
	"repro/sig"
)

// bands is the number of zigzag coefficient groups (8 coefficients each).
const bands = 8

// Params sizes the problem.
type Params struct {
	W, H int
	Seed int64
}

// DefaultParams matches the evaluation-scale input.
func DefaultParams() Params { return Params{W: 2048, H: 2048, Seed: 2} }

// App is a DCT instance over a fixed synthetic image.
type App struct {
	p        Params
	src      *imaging.Image
	bw, bh   int // blocks per row / column
	cosTab   [8][8]float64
	zigzag   [64][2]int
	bandSize int
}

// New builds the instance; dimensions are trimmed to multiples of 8.
func New(p Params) *App {
	p.W = max(8, p.W-p.W%8)
	p.H = max(8, p.H-p.H%8)
	a := &App{p: p, src: imaging.Synthetic(p.W, p.H, p.Seed), bw: p.W / 8, bh: p.H / 8, bandSize: 64 / bands}
	for x := 0; x < 8; x++ {
		for u := 0; u < 8; u++ {
			a.cosTab[x][u] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
	a.zigzag = zigzagOrder()
	return a
}

// Tasks returns the number of tasks one Run submits.
func (a *App) Tasks() int { return a.bh * bands }

// Sequential computes the fully accurate reference reconstruction.
func (a *App) Sequential() *imaging.Image {
	coeffs := make([]float64, a.bw*a.bh*64)
	for brow := 0; brow < a.bh; brow++ {
		for band := 0; band < bands; band++ {
			a.bandStripe(coeffs, brow, band)
		}
	}
	return a.reconstruct(coeffs)
}

// Run computes the DCT under the runtime: one task per (block-row, band),
// significance decreasing with frequency band. After the taskwait the image
// is reconstructed from whichever coefficients were computed.
func (a *App) Run(rt *sig.Runtime, ratio float64) *imaging.Image {
	coeffs := make([]float64, a.bw*a.bh*64)
	grp := rt.Group("dct", ratio)
	for brow := 0; brow < a.bh; brow++ {
		for band := 0; band < bands; band++ {
			brow, band := brow, band
			lo := (brow*a.bw + 0) * 64
			hi := (brow*a.bw + a.bw) * 64
			rt.Submit(
				func() { a.bandStripe(coeffs, brow, band) },
				sig.WithLabel(grp),
				// Band 0 (DC + lowest AC) at 0.9 down to 0.2 for
				// the highest frequencies, as in the paper's
				// per-coefficient significance assignment.
				sig.WithSignificance(0.9-float64(band)/10),
				// 8 coefficients × 64 pixels × 2 ops per block;
				// an approximated band is dropped outright.
				sig.WithCost(float64(a.bw*8*64*2), 0),
				sig.Out(sig.SliceRange(coeffs, lo, hi)),
			)
		}
	}
	rt.Wait(grp)
	return a.reconstruct(coeffs)
}

// bandStripe computes the 8 zigzag coefficients of one band for every block
// of block-row brow.
func (a *App) bandStripe(coeffs []float64, brow, band int) {
	for bcol := 0; bcol < a.bw; bcol++ {
		base := (brow*a.bw + bcol) * 64
		px, py := bcol*8, brow*8
		for k := band * a.bandSize; k < (band+1)*a.bandSize; k++ {
			u, v := a.zigzag[k][0], a.zigzag[k][1]
			var sum float64
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					sum += float64(a.src.At(px+x, py+y)) * a.cosTab[x][u] * a.cosTab[y][v]
				}
			}
			sum *= alpha(u) * alpha(v) / 4
			coeffs[base+v*8+u] = sum
		}
	}
}

// reconstruct runs the inverse DCT over every block.
func (a *App) reconstruct(coeffs []float64) *imaging.Image {
	out := imaging.NewImage(a.p.W, a.p.H)
	for brow := 0; brow < a.bh; brow++ {
		for bcol := 0; bcol < a.bw; bcol++ {
			base := (brow*a.bw + bcol) * 64
			px, py := bcol*8, brow*8
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					var sum float64
					for v := 0; v < 8; v++ {
						for u := 0; u < 8; u++ {
							c := coeffs[base+v*8+u]
							if c == 0 {
								continue
							}
							sum += alpha(u) * alpha(v) / 4 * c * a.cosTab[x][u] * a.cosTab[y][v]
						}
					}
					if sum < 0 {
						sum = 0
					}
					if sum > 255 {
						sum = 255
					}
					out.Set(px+x, py+y, uint8(sum))
				}
			}
		}
	}
	return out
}

func alpha(u int) float64 {
	if u == 0 {
		return 1 / math.Sqrt2
	}
	return 1
}

// zigzagOrder returns the JPEG zigzag scan as (u, v) pairs.
func zigzagOrder() [64][2]int {
	var order [64][2]int
	i := 0
	for s := 0; s < 15; s++ {
		if s%2 == 0 { // walk up-right
			for v := min(s, 7); v >= 0 && s-v <= 7; v-- {
				order[i] = [2]int{s - v, v}
				i++
			}
		} else { // walk down-left
			for u := min(s, 7); u >= 0 && s-u <= 7; u-- {
				order[i] = [2]int{u, s - u}
				i++
			}
		}
	}
	return order
}

// PSNR returns the PSNR of res against the reference in dB.
func (a *App) PSNR(ref, res *imaging.Image) float64 { return imaging.PSNR(ref, res) }

// Quality is 1/PSNR (lower is better); 0 for identical images.
func (a *App) Quality(ref, res *imaging.Image) float64 {
	p := imaging.PSNR(ref, res)
	if math.IsInf(p, 1) {
		return 0
	}
	return 1 / p
}

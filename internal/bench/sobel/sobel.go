// Package sobel is the paper's running example (Listing 1): Sobel edge
// detection with one task per output row. The approximate task body replaces
// the 3×3 convolution with a two-point horizontal gradient, and dropped rows
// stay black — which is what makes the Figure 1/3 mosaics legible.
package sobel

import (
	"math"

	"repro/internal/imaging"
	"repro/sig"
)

// Params sizes the problem.
type Params struct {
	W, H int
	Seed int64
}

// DefaultParams matches the evaluation-scale input (a 2048² frame).
func DefaultParams() Params { return Params{W: 2048, H: 2048, Seed: 1} }

// App is a Sobel instance over a fixed synthetic input image.
type App struct {
	p   Params
	src *imaging.Image
}

// New builds the instance and renders its input image.
func New(p Params) *App {
	if p.W < 8 {
		p.W = 8
	}
	if p.H < 8 {
		p.H = 8
	}
	return &App{p: p, src: imaging.Synthetic(p.W, p.H, p.Seed)}
}

// Input exposes the source image (for mosaics).
func (a *App) Input() *imaging.Image { return a.src.Clone() }

// Tasks returns the number of tasks one Run submits.
func (a *App) Tasks() int { return a.p.H - 2 }

// Sequential computes the fully accurate reference without the runtime.
func (a *App) Sequential() *imaging.Image {
	out := imaging.NewImage(a.p.W, a.p.H)
	for y := 1; y < a.p.H-1; y++ {
		a.accurateRow(out, y)
	}
	return out
}

// Run executes the filter on rt, one task per row, asking for the given
// accurate ratio. Row significance cycles through nine levels exactly as
// Listing 1's significant((i%9+1)/10) clause.
func (a *App) Run(rt *sig.Runtime, ratio float64) *imaging.Image {
	out := imaging.NewImage(a.p.W, a.p.H)
	grp := rt.Group("sobel", ratio)
	a.SubmitFrame(rt, grp, out)
	rt.Wait(grp)
	return out
}

// SetScene replaces the input image with a new synthetic scene — the
// mid-stream scene change of the streaming/adaptive workload. detail > 0
// adds horizontal texture the 2-point-gradient approximation cannot
// reproduce, raising the accurate ratio a given PSNR costs.
func (a *App) SetScene(seed int64, detail float64) {
	a.src = imaging.SyntheticDetail(a.p.W, a.p.H, seed, detail)
}

// SubmitFrame submits one frame's row tasks on grp without waiting: the
// streaming surface. The caller owns the taskwait (rt.WaitPhase for
// per-wave telemetry) and the group's ratio — SubmitFrame never resets it,
// so an adaptive controller can retune the ratio between frames.
func (a *App) SubmitFrame(rt *sig.Runtime, grp *sig.Group, out *imaging.Image) {
	for y := 1; y < a.p.H-1; y++ {
		y := y
		rt.Submit(
			func() { a.accurateRow(out, y) },
			sig.WithLabel(grp),
			sig.WithSignificance(float64(y%9+1)/10),
			sig.WithApprox(func() { a.approxRow(out, y) }),
			// ~30 ops/pixel for the 3×3 convolution vs ~4 for the
			// 2-point gradient.
			sig.WithCost(30*float64(a.p.W), 4*float64(a.p.W)),
			sig.In(sig.SliceRange(a.src.Pix, (y-1)*a.p.W, (y+2)*a.p.W)),
			sig.Out(sig.SliceRange(out.Pix, y*a.p.W, (y+1)*a.p.W)),
		)
	}
}

// accurateRow applies the full 3×3 Sobel operator to row y.
func (a *App) accurateRow(out *imaging.Image, y int) {
	w := a.p.W
	src := a.src.Pix
	dst := out.Row(y)
	for x := 1; x < w-1; x++ {
		up, mid, down := (y-1)*w+x, y*w+x, (y+1)*w+x
		gx := -int(src[up-1]) + int(src[up+1]) -
			2*int(src[mid-1]) + 2*int(src[mid+1]) -
			int(src[down-1]) + int(src[down+1])
		gy := -int(src[up-1]) - 2*int(src[up]) - int(src[up+1]) +
			int(src[down-1]) + 2*int(src[down]) + int(src[down+1])
		m := math.Sqrt(float64(gx*gx + gy*gy))
		if m > 255 {
			m = 255
		}
		dst[x] = uint8(m)
	}
}

// approxRow is the cheap degraded body: a two-point horizontal gradient.
func (a *App) approxRow(out *imaging.Image, y int) {
	w := a.p.W
	src := a.src.Pix
	dst := out.Row(y)
	for x := 1; x < w-1; x++ {
		d := int(src[y*w+x+1]) - int(src[y*w+x-1])
		if d < 0 {
			d = -d
		}
		d *= 2
		if d > 255 {
			d = 255
		}
		dst[x] = uint8(d)
	}
}

// Thumb renders the frame's full edge map into out with either the
// accurate 3×3 kernel or the degraded 2-point gradient — the per-request
// body of the serving backends (sobel thumbnailing). out must be W×H.
func (a *App) Thumb(out *imaging.Image, accurate bool) {
	for y := 1; y < a.p.H-1; y++ {
		if accurate {
			a.accurateRow(out, y)
		} else {
			a.approxRow(out, y)
		}
	}
}

// ThumbCosts returns the declared cost units (~1ns, see sig.WithCost) of an
// accurate and a degraded Thumb render: the per-row figures SubmitFrame
// declares, summed over the frame.
func (a *App) ThumbCosts() (accurate, degraded float64) {
	rows := float64(a.p.H - 2)
	return 30 * float64(a.p.W) * rows, 4 * float64(a.p.W) * rows
}

// Size returns the frame dimensions.
func (a *App) Size() (w, h int) { return a.p.W, a.p.H }

// PSNR returns the PSNR of res against the reference in dB.
func (a *App) PSNR(ref, res *imaging.Image) float64 { return imaging.PSNR(ref, res) }

// Quality is the paper's "lower is better" metric for Sobel: 1/PSNR.
func (a *App) Quality(ref, res *imaging.Image) float64 {
	p := imaging.PSNR(ref, res)
	if math.IsInf(p, 1) {
		return 0
	}
	return 1 / p
}

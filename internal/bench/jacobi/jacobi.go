// Package jacobi is the paper's iterative-solver benchmark: Jacobi sweeps of
// the Laplace equation on the unit square. Each sweep is decomposed into
// row-block tasks; the approximate body updates every other row and carries
// the rest over from the previous sweep, and block significance follows the
// block's residual from the previous sweep — refining where the solution
// still moves.
package jacobi

import (
	"math"

	"repro/sig"
)

// Params sizes the problem.
type Params struct {
	// N is the grid edge length (including boundary); Sweeps the fixed
	// Jacobi iteration count; Block the rows per task.
	N, Sweeps, Block int
}

// DefaultParams matches the evaluation-scale problem.
func DefaultParams() Params { return Params{N: 512, Sweeps: 100, Block: 16} }

// App is one solver instance.
type App struct {
	p Params
}

// New validates the parameters.
func New(p Params) *App {
	if p.N < 8 {
		p.N = 8
	}
	if p.Block <= 0 {
		p.Block = 16
	}
	if p.Sweeps < 1 {
		p.Sweeps = 1
	}
	return &App{p: p}
}

// Tasks returns the number of tasks one sweep submits.
func (a *App) Tasks() int { return (a.p.N - 2 + a.p.Block - 1) / a.p.Block }

// initGrid builds the start grid: harmonic boundary values, with the
// interior seeded at the boundary mean so the sweeps refine a reasonable
// guess (rather than measuring raw convergence speed from zero).
func (a *App) initGrid() []float64 {
	n := a.p.N
	u := make([]float64, n*n)
	f := func(i, j int) float64 {
		x, y := float64(i)/float64(n-1), float64(j)/float64(n-1)
		return x*x - y*y + 3*x + 8
	}
	var mean float64
	for i := 0; i < n; i++ {
		u[i] = f(i, 0)
		u[(n-1)*n+i] = f(i, n-1)
		u[i*n] = f(0, i)
		u[i*n+n-1] = f(n-1, i)
		mean += u[i] + u[(n-1)*n+i] + u[i*n] + u[i*n+n-1]
	}
	mean /= float64(4 * n)
	for j := 1; j < n-1; j++ {
		for i := 1; i < n-1; i++ {
			u[j*n+i] = mean
		}
	}
	return u
}

// Sequential runs all sweeps fully accurately without the runtime.
func (a *App) Sequential() []float64 {
	n := a.p.N
	u, v := a.initGrid(), a.initGrid()
	for s := 0; s < a.p.Sweeps; s++ {
		for y := 1; y < n-1; y++ {
			sweepRow(u, v, n, y)
		}
		u, v = v, u
	}
	return u
}

// Run executes the solver under the runtime, one task per row block per
// sweep.
func (a *App) Run(rt *sig.Runtime, ratio float64) []float64 {
	n := a.p.N
	u, v := a.initGrid(), a.initGrid()
	nb := a.Tasks()
	delta := make([]float64, nb)
	signif := make([]float64, nb)
	for b := range signif {
		signif[b] = 0.9
	}
	grp := rt.Group("jacobi", ratio)
	for s := 0; s < a.p.Sweeps; s++ {
		uo, vo := u, v
		for b := 0; b < nb; b++ {
			b := b
			lo := 1 + b*a.p.Block
			hi := min(lo+a.p.Block, n-1)
			delta[b] = 0
			rt.Submit(
				func() { // accurate: full stencil on every row
					var dmax float64
					for y := lo; y < hi; y++ {
						d := sweepRow(uo, vo, n, y)
						if d > dmax {
							dmax = d
						}
					}
					delta[b] = dmax
				},
				sig.WithLabel(grp),
				sig.WithSignificance(signif[b]),
				sig.WithApprox(func() { // approximate: every other row
					var dmax float64
					for y := lo; y < hi; y++ {
						if (y-lo)%2 == 0 {
							d := sweepRow(uo, vo, n, y)
							if d > dmax {
								dmax = d
							}
						} else {
							copy(vo[y*n+1:(y+1)*n-1], uo[y*n+1:(y+1)*n-1])
						}
					}
					delta[b] = dmax
				}),
				// Full stencil on all rows vs stencil on half the
				// rows plus copies for the rest.
				sig.WithCost(float64((hi-lo)*n*6), float64((hi-lo)*n*6/2+(hi-lo)*n/2)),
				sig.In(sig.SliceRange(uo, (lo-1)*n, (hi+1)*n)),
				sig.Out(sig.SliceRange(vo, lo*n, hi*n)),
			)
		}
		rt.Wait(grp)
		// Residual-driven significance for the next sweep.
		var dmax float64
		for _, d := range delta {
			if d > dmax {
				dmax = d
			}
		}
		for b := range signif {
			if dmax > 0 {
				signif[b] = 0.1 + 0.8*delta[b]/dmax
			}
		}
		u, v = v, u
	}
	return u
}

// sweepRow applies one Jacobi update to row y, returning the row's max
// absolute change.
func sweepRow(src, dst []float64, n, y int) float64 {
	var dmax float64
	for x := 1; x < n-1; x++ {
		i := y*n + x
		nv := 0.25 * (src[i-1] + src[i+1] + src[i-n] + src[i+n])
		d := math.Abs(nv - src[i])
		if d > dmax {
			dmax = d
		}
		dst[i] = nv
	}
	return dmax
}

// Quality is the relative L2 error (%) of res against the reference grid.
func (a *App) Quality(ref, res []float64) float64 {
	var num, den float64
	for i := range ref {
		d := res[i] - ref[i]
		num += d * d
		den += ref[i] * ref[i]
	}
	if den == 0 {
		return 0
	}
	return 100 * math.Sqrt(num/den)
}

// Package fluidanimate is the paper's SPH benchmark, reduced to a 2D
// smoothed-particle toy: particles under gravity with short-range repulsion
// found through a uniform grid. The approximation pattern is the paper's
// alternating-ratio idiom — the per-step taskwait ratio flips between 1.0
// (full force computation) and 0.0 (gravity-only step) with a configurable
// accurate-step period. Loop perforation cannot express this: dropping the
// movement of a subset of particles would violate the physics.
package fluidanimate

import (
	"math"

	"repro/internal/rng"
	"repro/sig"
)

// Params sizes the problem.
type Params struct {
	// N particles simulated for Steps time steps; Chunk is the task
	// granularity.
	N, Steps, Chunk int
	Seed            int64
}

// DefaultParams matches the example defaults.
func DefaultParams() Params { return Params{N: 4096, Steps: 30, Chunk: 256, Seed: 5} }

// State is the observable outcome of a simulation: particle positions.
type State struct {
	Pos []float64 // x0,y0,x1,y1,...
}

// Physics constants of the toy model.
const (
	dt      = 0.003
	gravity = -1.0
	radius  = 0.03 // interaction radius (also the grid cell size)
	stiff   = 40.0 // repulsion stiffness
	damp    = 0.999
)

// App is one simulation instance.
type App struct {
	p     Params
	cells int
}

// New validates parameters.
func New(p Params) *App {
	if p.N < 16 {
		p.N = 16
	}
	if p.Chunk <= 0 {
		p.Chunk = 256
	}
	if p.Steps < 1 {
		p.Steps = 1
	}
	return &App{p: p, cells: int(math.Ceil(1 / radius))}
}

// Tasks returns the number of tasks one time step submits.
func (a *App) Tasks() int { return (a.p.N + a.p.Chunk - 1) / a.p.Chunk }

// initState seeds particles in a block at the top of the box.
func (a *App) initState() (pos, vel []float64) {
	pos = make([]float64, 2*a.p.N)
	vel = make([]float64, 2*a.p.N)
	src := rng.Raw(uint64(a.p.Seed)*0x9e3779b97f4a7c15 + 17)
	for i := 0; i < a.p.N; i++ {
		pos[2*i] = 0.1 + 0.8*src.Float64()
		pos[2*i+1] = 0.5 + 0.45*src.Float64()
	}
	return pos, vel
}

// grid is a rebuilt-per-step uniform spatial hash.
type grid struct {
	cells int
	start []int32
	items []int32
}

func buildGrid(pos []float64, n, cells int) *grid {
	g := &grid{cells: cells, start: make([]int32, cells*cells+1), items: make([]int32, n)}
	idx := func(i int) int {
		cx := min(int(pos[2*i]*float64(cells)), cells-1)
		cy := min(int(pos[2*i+1]*float64(cells)), cells-1)
		return max(cy, 0)*cells + max(cx, 0)
	}
	for i := 0; i < n; i++ {
		g.start[idx(i)+1]++
	}
	for c := 1; c <= cells*cells; c++ {
		g.start[c] += g.start[c-1]
	}
	fill := make([]int32, cells*cells)
	for i := 0; i < n; i++ {
		c := idx(i)
		g.items[g.start[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return g
}

// forces computes accelerations for particles [lo,hi) from the grid.
func (a *App) forces(pos, acc []float64, g *grid, lo, hi int) {
	for i := lo; i < hi; i++ {
		ax, ay := 0.0, gravity
		xi, yi := pos[2*i], pos[2*i+1]
		cx := min(max(int(xi*float64(g.cells)), 0), g.cells-1)
		cy := min(max(int(yi*float64(g.cells)), 0), g.cells-1)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= g.cells || ny >= g.cells {
					continue
				}
				c := ny*g.cells + nx
				for k := g.start[c]; k < g.start[c+1]; k++ {
					j := int(g.items[k])
					if j == i {
						continue
					}
					ddx, ddy := xi-pos[2*j], yi-pos[2*j+1]
					d2 := ddx*ddx + ddy*ddy
					if d2 >= radius*radius || d2 == 0 {
						continue
					}
					d := math.Sqrt(d2)
					f := stiff * (radius - d) / d
					ax += f * ddx
					ay += f * ddy
				}
			}
		}
		acc[2*i] = ax
		acc[2*i+1] = ay
	}
}

// gravityOnly is the approximate force body.
func gravityOnly(acc []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		acc[2*i] = 0
		acc[2*i+1] = gravity
	}
}

// integrate advances particles and bounces them off the walls.
func integrate(pos, vel, acc []float64, n int) {
	for i := 0; i < n; i++ {
		vel[2*i] = damp*vel[2*i] + dt*acc[2*i]
		vel[2*i+1] = damp*vel[2*i+1] + dt*acc[2*i+1]
		pos[2*i] += dt * vel[2*i]
		pos[2*i+1] += dt * vel[2*i+1]
		for d := 0; d < 2; d++ {
			if pos[2*i+d] < 0 {
				pos[2*i+d] = -pos[2*i+d]
				vel[2*i+d] = -0.5 * vel[2*i+d]
			}
			if pos[2*i+d] > 1 {
				pos[2*i+d] = 2 - pos[2*i+d]
				vel[2*i+d] = -0.5 * vel[2*i+d]
			}
		}
	}
}

// Sequential runs the fully accurate simulation without the runtime.
func (a *App) Sequential() State {
	pos, vel := a.initState()
	acc := make([]float64, 2*a.p.N)
	for s := 0; s < a.p.Steps; s++ {
		g := buildGrid(pos, a.p.N, a.cells)
		a.forces(pos, acc, g, 0, a.p.N)
		integrate(pos, vel, acc, a.p.N)
	}
	return State{Pos: pos}
}

// Run simulates with an accurate force step every `every` steps; the steps
// in between run with the per-step taskwait ratio set to 0.0, which makes
// every force task take its approximate (gravity-only) body. This is the
// paper's alternating ratio clause expressed on the Go API.
func (a *App) Run(rt *sig.Runtime, every int) State {
	if every < 1 {
		every = 1
	}
	pos, vel := a.initState()
	acc := make([]float64, 2*a.p.N)
	for s := 0; s < a.p.Steps; s++ {
		ratio := 0.0
		if s%every == 0 {
			ratio = 1.0
		}
		grp := rt.Group("fluidanimate", ratio)
		var g *grid
		if ratio > 0 {
			g = buildGrid(pos, a.p.N, a.cells)
		}
		for c := 0; c < a.Tasks(); c++ {
			lo := c * a.p.Chunk
			hi := min(lo+a.p.Chunk, a.p.N)
			rt.Submit(
				func() { a.forces(pos, acc, g, lo, hi) },
				sig.WithLabel(grp),
				sig.WithSignificance(0.5),
				sig.WithApprox(func() { gravityOnly(acc, lo, hi) }),
				// Neighborhood force evaluation vs a constant
				// store per particle.
				sig.WithCost(float64((hi-lo)*160), float64((hi-lo)*4)),
				sig.Out(sig.SliceRange(acc, 2*lo, 2*hi)),
			)
		}
		rt.Wait(grp)
		integrate(pos, vel, acc, a.p.N)
	}
	return State{Pos: pos}
}

// RunRatio adapts the harness's single accuracy-ratio knob to the
// accurate-step period: ratio 0.5 runs every 2nd step accurately, 0.25
// every 4th, and so on.
func (a *App) RunRatio(rt *sig.Runtime, ratio float64) State {
	every := a.p.Steps
	if ratio >= 1 {
		every = 1
	} else if ratio > 0 {
		every = min(int(math.Round(1/ratio)), a.p.Steps)
	}
	return a.Run(rt, every)
}

// Quality is the mean particle displacement versus the reference, as a
// percentage of the box diagonal.
func (a *App) Quality(ref, res State) float64 {
	var sum float64
	n := len(ref.Pos) / 2
	for i := 0; i < n; i++ {
		dx := res.Pos[2*i] - ref.Pos[2*i]
		dy := res.Pos[2*i+1] - ref.Pos[2*i+1]
		sum += math.Sqrt(dx*dx + dy*dy)
	}
	return 100 * sum / float64(n) / math.Sqrt2
}

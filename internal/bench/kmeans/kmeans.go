// Package kmeans is the paper's iterative-clustering benchmark. Each Lloyd
// iteration is decomposed into per-chunk assignment tasks; the approximate
// body restricts each point's search to its current cluster and that
// cluster's few nearest centroids (ignoring distant clusters), cutting the
// distance-computation cost to ~(1+neighbors)/K while keeping convergence
// intact, and chunk significance tracks how much the chunk moved in the
// previous iteration.
package kmeans

import (
	"math"
	"sort"

	"repro/internal/rng"
	"repro/sig"
)

// Params sizes the problem.
type Params struct {
	// N observations of dimension D, clustered into K groups.
	N, K, D int
	// MaxIter bounds the Lloyd iterations; Chunk is the task granularity.
	MaxIter, Chunk int
	Seed           int64
}

// DefaultParams matches the example defaults.
func DefaultParams() Params {
	return Params{N: 32768, K: 16, D: 4, MaxIter: 30, Chunk: 512, Seed: 4}
}

// Result is the outcome of one clustering run.
type Result struct {
	// Iterations actually executed before convergence or MaxIter.
	Iterations int
	// Inertia is the exact sum of squared distances to the final
	// centroids (computed sequentially, so it is comparable across
	// policies).
	Inertia float64
	// Centroids is the K×D centroid matrix, row-major.
	Centroids []float64
}

// App is one clustering instance over a fixed synthetic data set.
type App struct {
	p    Params
	data []float64 // N×D row-major
	init []float64 // initial centroids, K×D
}

// New generates the data set: K well-separated hidden centers plus uniform
// noise, deterministic in Seed.
func New(p Params) *App {
	if p.N < p.K {
		p.N = p.K
	}
	if p.Chunk <= 0 {
		p.Chunk = 512
	}
	a := &App{p: p, data: make([]float64, p.N*p.D), init: make([]float64, p.K*p.D)}
	src := rng.Raw(uint64(p.Seed)*0x9e3779b97f4a7c15 + 11)
	centers := make([]float64, p.K*p.D)
	for i := range centers {
		centers[i] = 10 * src.Float64()
	}
	for i := 0; i < p.N; i++ {
		c := i % p.K
		for d := 0; d < p.D; d++ {
			// Noise wide enough that clusters overlap: the
			// restricted candidate search then loses measurable
			// (but graceful) quality.
			a.data[i*p.D+d] = centers[c*p.D+d] + 4*src.Float64() - 2
		}
	}
	// Initial centroids: the first K observations (deterministic and
	// identical for every policy).
	copy(a.init, a.data[:p.K*p.D])
	return a
}

// Tasks returns the number of tasks one iteration submits.
func (a *App) Tasks() int { return (a.p.N + a.p.Chunk - 1) / a.p.Chunk }

// WaveCosts returns the total declared cost units (~1ns each, see
// sig.WithCost) one Lloyd wave submits when every chunk runs accurately
// and when every chunk runs approximately. Wave energy is linear between
// the two in the accurate fraction; the adaptive harness derives its
// analytic energy budget and oracle ratio from these instead of mirroring
// the kernel's cost model.
func (a *App) WaveCosts() (accurate, approx float64) {
	candidates := 1 + min(approxNeighbors, a.p.K-1)
	return float64(a.p.N * a.p.K * a.p.D * 3), float64(a.p.N * candidates * a.p.D * 3)
}

func (a *App) nearest(cent []float64, i int) (int, float64) {
	best, bestD := 0, math.MaxFloat64
	for c := 0; c < a.p.K; c++ {
		d2 := a.dist2(cent, i, c)
		if d2 < bestD {
			best, bestD = c, d2
		}
	}
	return best, bestD
}

// nearestAmong classifies observation i considering only the candidate
// clusters.
func (a *App) nearestAmong(cent []float64, i int, candidates []int16) (int, float64) {
	best, bestD := int(candidates[0]), math.MaxFloat64
	for _, c := range candidates {
		d2 := a.dist2(cent, i, int(c))
		if d2 < bestD {
			best, bestD = int(c), d2
		}
	}
	return best, bestD
}

func (a *App) dist2(cent []float64, i, c int) float64 {
	var d2 float64
	for d := 0; d < a.p.D; d++ {
		diff := a.data[i*a.p.D+d] - cent[c*a.p.D+d]
		d2 += diff * diff
	}
	return d2
}

// approxNeighbors is the candidate-set size of the approximate assignment:
// the point's current cluster plus its nearest other centroids.
const approxNeighbors = 4

// neighborTable returns, per cluster, the cluster itself followed by its
// approxNeighbors nearest other centroids.
func (a *App) neighborTable(cent []float64) [][]int16 {
	k := a.p.K
	nn := min(approxNeighbors, k-1)
	table := make([][]int16, k)
	for c := 0; c < k; c++ {
		type cd struct {
			c int
			d float64
		}
		others := make([]cd, 0, k-1)
		for o := 0; o < k; o++ {
			if o == c {
				continue
			}
			var d2 float64
			for d := 0; d < a.p.D; d++ {
				diff := cent[c*a.p.D+d] - cent[o*a.p.D+d]
				d2 += diff * diff
			}
			others = append(others, cd{o, d2})
		}
		sort.Slice(others, func(i, j int) bool { return others[i].d < others[j].d })
		row := make([]int16, 0, nn+1)
		row = append(row, int16(c))
		for _, o := range others[:nn] {
			row = append(row, int16(o.c))
		}
		table[c] = row
	}
	return table
}

// Scorer classifies observations against a fixed trained centroid set —
// the request body of the serving backends (kmeans scoring). The
// restricted search's neighbor table depends only on the centroids, so it
// is computed once here rather than per request.
type Scorer struct {
	a     *App
	cent  []float64
	table [][]int16
}

// NewScorer builds a Scorer over the given centroids (K×D row-major).
func (a *App) NewScorer(cent []float64) *Scorer {
	return &Scorer{a: a, cent: cent, table: a.neighborTable(cent)}
}

// Score classifies the observation chunk [lo,hi) and returns its
// assignments. Restricted mode reuses the approximate kernel's candidate
// search, seeding each point with its generator-assigned cluster (i % K)
// instead of a running assignment.
func (s *Scorer) Score(lo, hi int, restricted bool) []int32 {
	a := s.a
	out := make([]int32, hi-lo)
	for i := lo; i < hi; i++ {
		var k int
		if restricted {
			k, _ = a.nearestAmong(s.cent, i, s.table[i%a.p.K])
		} else {
			k, _ = a.nearest(s.cent, i)
		}
		out[i-lo] = int32(k)
	}
	return out
}

// ScoreCosts returns the declared cost units of scoring an n-point chunk
// accurately (all K centroids per point) and restricted (the candidate
// set), matching the kernel's WithCost model. The restricted search's
// neighbor table is excluded: it is built once per Scorer, not per chunk.
func (a *App) ScoreCosts(n int) (accurate, degraded float64) {
	candidates := 1 + min(approxNeighbors, a.p.K-1)
	return float64(n * a.p.K * a.p.D * 3), float64(n * candidates * a.p.D * 3)
}

// Len returns the number of observations.
func (a *App) Len() int { return a.p.N }

// Sequential runs exact Lloyd iterations to convergence (or MaxIter).
func (a *App) Sequential() Result {
	cent := append([]float64(nil), a.init...)
	assign := make([]int32, a.p.N)
	for i := range assign {
		assign[i] = -1
	}
	iters := 0
	for it := 0; it < a.p.MaxIter; it++ {
		iters++
		changed := 0
		for i := 0; i < a.p.N; i++ {
			c, _ := a.nearest(cent, i)
			if int32(c) != assign[i] {
				assign[i] = int32(c)
				changed++
			}
		}
		a.updateCentroids(cent, assign)
		if converged(changed, a.p.N) {
			break
		}
	}
	return Result{Iterations: iters, Inertia: a.inertia(cent), Centroids: cent}
}

// lloydState is the mutable state of a running Lloyd loop: centroids,
// assignments and the per-chunk partials and significances shared by the
// batch (Run) and streaming (RunStream) drivers.
type lloydState struct {
	cent    []float64
	assign  []int32
	counts  [][]int64
	sums    [][]float64
	changed []int
	signif  []float64
}

func (a *App) newLloydState() *lloydState {
	p := a.p
	s := &lloydState{
		cent:    append([]float64(nil), a.init...),
		assign:  make([]int32, p.N),
		counts:  make([][]int64, a.Tasks()),
		sums:    make([][]float64, a.Tasks()),
		changed: make([]int, a.Tasks()),
		signif:  make([]float64, a.Tasks()),
	}
	for i := range s.assign {
		s.assign[i] = -1
	}
	for c := range s.counts {
		s.counts[c] = make([]int64, p.K)
		s.sums[c] = make([]float64, p.K*p.D)
		s.signif[c] = 0.9
	}
	return s
}

// runWave executes one Lloyd iteration as one wave on grp: submit a task
// per chunk, taskwait (through WaitPhase, so observers see the wave),
// reduce the partials into new centroids and reassign significances. It
// returns the number of points that moved and the wave's telemetry.
func (a *App) runWave(rt *sig.Runtime, grp *sig.Group, s *lloydState) (int, sig.WaveStats) {
	p := a.p
	nchunks := a.Tasks()
	neighbors := a.neighborTable(s.cent)
	candidates := 1 + min(approxNeighbors, p.K-1)
	for c := 0; c < nchunks; c++ {
		c := c
		lo, hi := c*p.Chunk, min((c+1)*p.Chunk, p.N)
		for i := range s.counts[c] {
			s.counts[c][i] = 0
		}
		for i := range s.sums[c] {
			s.sums[c][i] = 0
		}
		s.changed[c] = 0
		reassign := func(restricted bool) {
			ch := 0
			for i := lo; i < hi; i++ {
				var k int
				if restricted && s.assign[i] >= 0 {
					k, _ = a.nearestAmong(s.cent, i, neighbors[s.assign[i]])
				} else {
					k, _ = a.nearest(s.cent, i)
				}
				if int32(k) != s.assign[i] {
					s.assign[i] = int32(k)
					ch++
				}
				s.counts[c][k]++
				for d := 0; d < p.D; d++ {
					s.sums[c][k*p.D+d] += a.data[i*p.D+d]
				}
			}
			s.changed[c] = ch
		}
		rt.Submit(
			func() { reassign(false) },
			sig.WithLabel(grp),
			sig.WithSignificance(s.signif[c]),
			sig.WithApprox(func() { reassign(true) }),
			// Distance computations dominate: all K clusters
			// per point vs the restricted candidate set.
			sig.WithCost(float64((hi-lo)*p.K*p.D*3), float64((hi-lo)*candidates*p.D*3)),
			sig.Out(sig.SliceRange(s.assign, lo, hi)),
		)
	}
	ws := rt.WaitPhase(grp)
	// Reduce partials into new centroids.
	total := make([]int64, p.K)
	vec := make([]float64, p.K*p.D)
	for c := 0; c < nchunks; c++ {
		for k := 0; k < p.K; k++ {
			total[k] += s.counts[c][k]
			for d := 0; d < p.D; d++ {
				vec[k*p.D+d] += s.sums[c][k*p.D+d]
			}
		}
	}
	for k := 0; k < p.K; k++ {
		if total[k] == 0 {
			continue // keep the old centroid for empty clusters
		}
		for d := 0; d < p.D; d++ {
			s.cent[k*p.D+d] = vec[k*p.D+d] / float64(total[k])
		}
	}
	// Next-iteration significance: chunks that moved matter more.
	moved := 0
	for c := 0; c < nchunks; c++ {
		moved += s.changed[c]
		frac := float64(s.changed[c]) / float64(min((c+1)*p.Chunk, p.N)-c*p.Chunk)
		s.signif[c] = 0.15 + 0.75*math.Min(1, 4*frac)
	}
	return moved, ws
}

// Run executes clustering under the runtime with per-chunk tasks.
func (a *App) Run(rt *sig.Runtime, ratio float64) Result {
	grp := rt.Group("kmeans", ratio)
	s := a.newLloydState()
	iters := 0
	for it := 0; it < a.p.MaxIter; it++ {
		iters++
		moved, _ := a.runWave(rt, grp, s)
		if converged(moved, a.p.N) {
			break
		}
	}
	return Result{Iterations: iters, Inertia: a.inertia(s.cent), Centroids: s.cent}
}

// RunStream is the streaming mode: exactly waves Lloyd iterations, each a
// phased wave on grp. The group is created by the caller so an adaptive
// controller (attached via sig.Config.Observer) can own its ratio between
// waves; onWave (optional) receives each wave's telemetry. Unlike Run it
// never stops early — a streaming service keeps processing its input.
func (a *App) RunStream(rt *sig.Runtime, grp *sig.Group, waves int, onWave func(ws sig.WaveStats)) Result {
	s := a.newLloydState()
	for it := 0; it < waves; it++ {
		_, ws := a.runWave(rt, grp, s)
		if onWave != nil {
			onWave(ws)
		}
	}
	return Result{Iterations: waves, Inertia: a.inertia(s.cent), Centroids: s.cent}
}

// converged reports whether an iteration moved few enough points (≤0.1%)
// to stop: with overlapping clusters, boundary points jitter indefinitely,
// so an exact zero-movement test would never trigger.
func converged(moved, n int) bool { return moved*1000 <= n }

func (a *App) updateCentroids(cent []float64, assign []int32) {
	p := a.p
	total := make([]int64, p.K)
	vec := make([]float64, p.K*p.D)
	for i := 0; i < p.N; i++ {
		k := assign[i]
		total[k]++
		for d := 0; d < p.D; d++ {
			vec[int(k)*p.D+d] += a.data[i*p.D+d]
		}
	}
	for k := 0; k < p.K; k++ {
		if total[k] == 0 {
			continue
		}
		for d := 0; d < p.D; d++ {
			cent[k*p.D+d] = vec[k*p.D+d] / float64(total[k])
		}
	}
}

// inertia exactly evaluates the clustering objective for cent.
func (a *App) inertia(cent []float64) float64 {
	var sum float64
	for i := 0; i < a.p.N; i++ {
		_, d2 := a.nearest(cent, i)
		sum += d2
	}
	return sum
}

// Quality is the relative inertia error (%) of res against the reference.
func (a *App) Quality(ref, res Result) float64 {
	if ref.Inertia == 0 {
		return 0
	}
	return 100 * math.Abs(res.Inertia-ref.Inertia) / ref.Inertia
}

package imaging

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestPGMRoundTrip: ReadPGM must reproduce exactly what WritePGM emitted —
// it is the read-back path for the mosaics sigbench writes.
func TestPGMRoundTrip(t *testing.T) {
	im := Synthetic(37, 21, 7) // odd sizes on purpose
	var buf bytes.Buffer
	if err := im.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("round-trip size %dx%d, want %dx%d", got.W, got.H, im.W, im.H)
	}
	if !bytes.Equal(got.Pix, im.Pix) {
		t.Error("round-trip pixels differ")
	}
	if p := PSNR(im, got); !math.IsInf(p, 1) {
		t.Errorf("round-trip PSNR = %v, want +Inf", p)
	}
}

func TestReadPGMRejectsGarbage(t *testing.T) {
	for name, src := range map[string]string{
		"magic":     "P2\n2 2\n255\n....",
		"maxval":    "P5\n2 2\n65535\n....",
		"truncated": "P5\n4 4\n255\nab",
	} {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestQuadrantsSizeMismatch(t *testing.T) {
	a := NewImage(8, 8)
	b := NewImage(4, 8)
	if _, err := Quadrants(a, b, a, a); err == nil {
		t.Error("expected size-mismatch error")
	}
	m, err := Quadrants(a, a, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.W != 16 || m.H != 16 {
		t.Errorf("mosaic size %dx%d, want 16x16", m.W, m.H)
	}
}

// Package imaging provides the grayscale image plumbing shared by the
// image-processing benchmarks and the figure generators: PGM I/O, PSNR, the
// Figure 1/3 quadrant mosaics and a deterministic synthetic test image.
package imaging

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// Image is an 8-bit grayscale image in row-major order.
type Image struct {
	W, H int
	Pix  []uint8
}

// NewImage allocates a zeroed W×H image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("imaging: non-positive image dimensions")
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y) without bounds checking beyond the slice's.
func (im *Image) At(x, y int) uint8 { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, v uint8) { im.Pix[y*im.W+x] = v }

// Row returns the y-th row as a sub-slice.
func (im *Image) Row(y int) []uint8 { return im.Pix[y*im.W : (y+1)*im.W] }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// WritePGM writes the image in binary PGM (P5) format.
func (im *Image) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPGM reads a binary PGM (P5) image with maxval 255.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("imaging: reading PGM magic: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imaging: unsupported PGM magic %q", magic)
	}
	var w, h, maxval int
	if _, err := fmt.Fscan(br, &w, &h, &maxval); err != nil {
		return nil, fmt.Errorf("imaging: reading PGM header: %w", err)
	}
	if w <= 0 || h <= 0 || maxval != 255 {
		return nil, fmt.Errorf("imaging: unsupported PGM geometry %dx%d maxval %d", w, h, maxval)
	}
	if _, err := br.ReadByte(); err != nil { // single whitespace after maxval
		return nil, err
	}
	im := NewImage(w, h)
	if _, err := io.ReadFull(br, im.Pix); err != nil {
		return nil, fmt.Errorf("imaging: reading PGM pixels: %w", err)
	}
	return im, nil
}

// PSNR returns the peak signal-to-noise ratio of b against reference a in
// dB; identical images yield +Inf.
func PSNR(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("imaging: PSNR of differently sized images")
	}
	var se float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		se += d * d
	}
	if se == 0 {
		return math.Inf(1)
	}
	mse := se / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse)
}

// Quadrants composes four equally sized images into one 2W×2H mosaic:
// top-left a, top-right b, bottom-left c, bottom-right d. It is the layout
// of the paper's Figure 1 (accurate / mild / medium / aggressive).
func Quadrants(a, b, c, d *Image) (*Image, error) {
	for _, im := range []*Image{b, c, d} {
		if im.W != a.W || im.H != a.H {
			return nil, fmt.Errorf("imaging: quadrant size mismatch: %dx%d vs %dx%d", im.W, im.H, a.W, a.H)
		}
	}
	out := NewImage(2*a.W, 2*a.H)
	blit := func(im *Image, ox, oy int) {
		for y := 0; y < im.H; y++ {
			copy(out.Pix[(oy+y)*out.W+ox:(oy+y)*out.W+ox+im.W], im.Row(y))
		}
	}
	blit(a, 0, 0)
	blit(b, a.W, 0)
	blit(c, 0, a.H)
	blit(d, a.W, a.H)
	return out, nil
}

// Synthetic renders a deterministic grayscale test scene — gradient
// background, circles, bars and pseudo-random speckle — with enough edges
// and texture to exercise Sobel and DCT meaningfully.
func Synthetic(w, h int, seed int64) *Image {
	return SyntheticDetail(w, h, seed, 0)
}

// SyntheticDetail renders the Synthetic scene with a tunable amount of
// extra texture: detail > 0 overlays horizontal stripes (strong vertical
// gradients) and amplifies the speckle proportionally. Sobel's degraded
// body is a horizontal-only gradient, so higher detail makes approximation
// visibly worse — which is what gives the adaptive study a real
// disturbance: switching scenes shifts the whole quality-vs-ratio curve.
// detail == 0 reproduces Synthetic exactly.
func SyntheticDetail(w, h int, seed int64, detail float64) *Image {
	im := NewImage(w, h)
	rng := uint64(seed)*2862933555777941757 + 3037000493
	stripe := max(4, h/32)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Diagonal gradient background.
			v := 32 + 160*(float64(x)+float64(y))/float64(w+h)
			// Concentric circles centered off-middle.
			dx, dy := float64(x)-0.6*float64(w), float64(y)-0.4*float64(h)
			r := math.Sqrt(dx*dx + dy*dy)
			if int(r/float64(max(8, w/16)))%2 == 0 {
				v += 40
			}
			// Vertical bars on the left third.
			if x < w/3 && (x/max(4, w/32))%2 == 0 {
				v -= 35
			}
			// Horizontal stripes: edges only a vertical gradient sees.
			if detail > 0 && (y/stripe)%2 == 0 {
				v += 30 * detail
			}
			// Deterministic speckle noise.
			rng = rng*6364136223846793005 + 1442695040888963407
			v += (1 + detail) * float64(int8(rng>>56)) / 16
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Set(x, y, uint8(v))
		}
	}
	return im
}

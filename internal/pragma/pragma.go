// Package pragma is the source-to-source translator of the programming
// model: the Go analogue of the paper's SCOOP-based #pragma compiler. It
// lowers directive comments
//
//	//sig:task label(L) in(a,b) out(c) significant(expr) approxfun(f)
//	//sig:taskwait label(L) ratio(expr)
//
// to sig runtime calls: the statement following a //sig:task directive is
// wrapped into rt.Submit with the clauses mapped onto functional options,
// and a //sig:taskwait becomes rt.Wait. Translation is two-pass, so the
// ratio declared at a taskwait is propagated to the group handle used by the
// submissions that textually precede it — mirroring how the paper's runtime
// learns the ratio only at the synchronization point.
package pragma

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Options configures the translation.
type Options struct {
	// Runtime is the name of the in-scope *sig.Runtime variable
	// (default "rt").
	Runtime string
}

const (
	taskDirective     = "//sig:task"
	taskwaitDirective = "//sig:taskwait"
)

// directive is one parsed //sig: comment.
type directive struct {
	wait    bool
	clauses map[string][]string // clause name -> raw argument texts
	pos     token.Pos           // start of the comment
	end     token.Pos           // end of the comment
}

// edit replaces source bytes [start,end) with text.
type edit struct {
	start, end int
	text       string
}

// TransformFile lowers every //sig: directive in src and returns the
// gofmt-formatted result. name is used for error positions only.
func TransformFile(name string, src []byte, opt Options) ([]byte, error) {
	rt := opt.Runtime
	if rt == "" {
		rt = "rt"
	}
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("pragma: parsing %s: %w", name, err)
	}
	offset := func(p token.Pos) int { return fset.Position(p).Offset }

	var dirs []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok, err := parseDirective(c)
			if err != nil {
				return nil, fmt.Errorf("pragma: %s: %w", fset.Position(c.Pos()), err)
			}
			if ok {
				dirs = append(dirs, d)
			}
		}
	}
	if len(dirs) == 0 {
		return format.Source(src)
	}

	// Pass 1: resolve each label's ratio from its taskwait clause.
	ratios := make(map[string]string)
	for _, d := range dirs {
		if !d.wait {
			continue
		}
		label := d.clause("label")
		if ratio := d.clause("ratio"); ratio != "" {
			ratios[label] = ratio
		}
	}
	groupExpr := func(label string) string {
		ratio := ratios[label]
		if ratio == "" {
			ratio = "1.0"
		}
		return fmt.Sprintf("%s.Group(%s, %s)", rt, strconv.Quote(label), ratio)
	}

	// Collect every statement for directive→statement attachment.
	var stmts []ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			if _, isBlock := s.(*ast.BlockStmt); !isBlock {
				stmts = append(stmts, s)
			}
		}
		return true
	})
	sort.Slice(stmts, func(i, j int) bool { return stmts[i].Pos() < stmts[j].Pos() })

	// Pass 2: build the edits.
	var edits []edit
	for di, d := range dirs {
		if d.wait {
			label := d.clause("label")
			var repl string
			if label == "" && ratios[""] == "" {
				repl = fmt.Sprintf("%s.WaitAll()", rt)
			} else {
				// An unlabeled taskwait with a ratio clause waits
				// on the default ("") group so the ratio applies.
				repl = fmt.Sprintf("%s.Wait(%s)", rt, groupExpr(label))
			}
			edits = append(edits, edit{offset(d.pos), offset(d.end), repl})
			continue
		}
		stmt := nextStmt(stmts, d.end)
		if stmt == nil {
			return nil, fmt.Errorf("pragma: %s: //sig:task directive with no following statement",
				fset.Position(d.pos))
		}
		// Each //sig:task needs a statement of its own, and no other
		// directive may live inside that statement: stacked or nested
		// directives would make the rewrites overlap.
		if di+1 < len(dirs) && dirs[di+1].pos < stmt.End() {
			return nil, fmt.Errorf("pragma: %s: //sig:task directive overlapping the directive at %s (stacked or nested directives are not supported)",
				fset.Position(d.pos), fset.Position(dirs[di+1].pos))
		}
		stmtText := strings.TrimSpace(string(src[offset(stmt.Pos()):offset(stmt.End())]))
		var opts []string
		if label := d.clause("label"); label != "" || ratios[""] != "" {
			// Unlabeled tasks still need an explicit group handle
			// when an unlabeled taskwait declared a ratio for the
			// default group.
			opts = append(opts, fmt.Sprintf("sig.WithLabel(%s)", groupExpr(label)))
		}
		if s := d.clause("significant"); s != "" {
			opts = append(opts, fmt.Sprintf("sig.WithSignificance(%s)", s))
		}
		if fn := d.clause("approxfun"); fn != "" {
			call, err := approxCall(fset, src, stmt, fn)
			if err != nil {
				return nil, fmt.Errorf("pragma: %s: %w", fset.Position(d.pos), err)
			}
			opts = append(opts, fmt.Sprintf("sig.WithApprox(func() { %s })", call))
		}
		if rs := rangeArgs(d.clauses["in"], d.clauses["inout"]); rs != "" {
			opts = append(opts, fmt.Sprintf("sig.In(%s)", rs))
		}
		if rs := rangeArgs(d.clauses["out"], d.clauses["inout"]); rs != "" {
			opts = append(opts, fmt.Sprintf("sig.Out(%s)", rs))
		}
		repl := fmt.Sprintf("%s.Submit(func() { %s }", rt, stmtText)
		for _, o := range opts {
			repl += ",\n" + o
		}
		repl += ")"
		edits = append(edits, edit{offset(d.pos), offset(stmt.End()), repl})
	}

	// Make sure the sig package is imported.
	if !importsSig(file) {
		at := offset(file.Name.End())
		edits = append(edits, edit{at, at, "\n\nimport \"repro/sig\""})
	}

	out := applyEdits(src, edits)
	formatted, err := format.Source(out)
	if err != nil {
		return nil, fmt.Errorf("pragma: generated code does not parse: %w\n%s", err, out)
	}
	return formatted, nil
}

// parseDirective recognizes and parses a //sig: comment.
func parseDirective(c *ast.Comment) (directive, bool, error) {
	text := c.Text
	var rest string
	var wait bool
	switch {
	case strings.HasPrefix(text, taskwaitDirective):
		rest, wait = text[len(taskwaitDirective):], true
	case strings.HasPrefix(text, taskDirective) && !strings.HasPrefix(text, taskwaitDirective):
		rest = text[len(taskDirective):]
	default:
		return directive{}, false, nil
	}
	clauses, err := parseClauses(rest)
	if err != nil {
		return directive{}, false, err
	}
	return directive{wait: wait, clauses: clauses, pos: c.Pos(), end: c.End()}, true, nil
}

// clause returns the single argument of a clause ("" when absent).
func (d directive) clause(name string) string {
	args := d.clauses[name]
	if len(args) == 0 {
		return ""
	}
	return strings.TrimSpace(strings.Join(args, ","))
}

// parseClauses scans "name(args) name(args) ..." with balanced parentheses.
func parseClauses(s string) (map[string][]string, error) {
	clauses := make(map[string][]string)
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		j := i
		for j < len(s) && s[j] != '(' && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		name := s[i:j]
		if j >= len(s) || s[j] != '(' {
			return nil, fmt.Errorf("clause %q without parenthesized argument", name)
		}
		depth, k := 0, j
		for ; k < len(s); k++ {
			if s[k] == '(' {
				depth++
			} else if s[k] == ')' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		if depth != 0 {
			return nil, fmt.Errorf("unbalanced parentheses in clause %q", name)
		}
		clauses[name] = append(clauses[name], splitTopLevel(s[j+1:k])...)
		i = k + 1
	}
	return clauses, nil
}

// splitTopLevel splits on commas not nested in parentheses or brackets.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

// nextStmt returns the first statement starting after pos.
func nextStmt(stmts []ast.Stmt, pos token.Pos) ast.Stmt {
	for _, s := range stmts {
		if s.Pos() >= pos {
			return s
		}
	}
	return nil
}

// approxCall rebuilds the task's call with the approximate function name,
// mirroring the paper's requirement that approxfun share the task
// function's signature.
func approxCall(fset *token.FileSet, src []byte, stmt ast.Stmt, fn string) (string, error) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", fmt.Errorf("approxfun requires the task statement to be a function call")
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", fmt.Errorf("approxfun requires the task statement to be a function call")
	}
	lp := fset.Position(call.Lparen).Offset
	rp := fset.Position(call.Rparen).Offset
	return fn + string(src[lp:rp+1]), nil
}

// rangeArgs maps in/out/inout clause arguments (slices, per the directive
// dialect) to sig.SliceRange footprints.
func rangeArgs(groups ...[]string) string {
	var parts []string
	for _, args := range groups {
		for _, a := range args {
			parts = append(parts, fmt.Sprintf("sig.SliceRange(%s, 0, len(%s))", a, a))
		}
	}
	return strings.Join(parts, ", ")
}

func importsSig(file *ast.File) bool {
	for _, im := range file.Imports {
		if im.Path.Value == `"repro/sig"` {
			return true
		}
	}
	return false
}

// applyEdits splices the edits (which must not overlap) into src.
func applyEdits(src []byte, edits []edit) []byte {
	sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
	out := append([]byte(nil), src...)
	for _, e := range edits {
		out = append(out[:e.start], append([]byte(e.text), out[e.end:]...)...)
	}
	return out
}

package pragma

import (
	"strings"
	"testing"
)

// listing1 is the paper's Listing 1 sobel kernel in the directive dialect,
// exactly as examples/pragma feeds it to the translator.
const listing1 = `package main

// sobel filters img into res, one task per output row.
func sobel(rt *sig.Runtime, img, res []byte, height int) {
	for i := 1; i < height-1; i++ {
		//sig:task label(sobel) in(img) out(res) significant(float64(i%9+1) / 10) approxfun(sblTaskAppr)
		sblTask(res, img, i)
	}
	//sig:taskwait label(sobel) ratio(0.35)
}
`

// listing1Lowered is the golden translator output: the task directive
// becomes rt.Submit with the clauses mapped to functional options, the
// taskwait becomes rt.Wait, and the taskwait's ratio clause is propagated
// backward onto the group handle of the submissions.
const listing1Lowered = `package main

import "repro/sig"

// sobel filters img into res, one task per output row.
func sobel(rt *sig.Runtime, img, res []byte, height int) {
	for i := 1; i < height-1; i++ {
		rt.Submit(func() { sblTask(res, img, i) },
			sig.WithLabel(rt.Group("sobel", 0.35)),
			sig.WithSignificance(float64(i%9+1)/10),
			sig.WithApprox(func() { sblTaskAppr(res, img, i) }),
			sig.In(sig.SliceRange(img, 0, len(img))),
			sig.Out(sig.SliceRange(res, 0, len(res))))
	}
	rt.Wait(rt.Group("sobel", 0.35))
}
`

func TestTransformListing1Golden(t *testing.T) {
	out, err := TransformFile("listing1.go", []byte(listing1), Options{Runtime: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != listing1Lowered {
		t.Errorf("translator output diverges from golden.\n--- got ---\n%s\n--- want ---\n%s",
			out, listing1Lowered)
	}
}

func TestTransformCustomRuntimeVar(t *testing.T) {
	out, err := TransformFile("listing1.go", []byte(listing1), Options{Runtime: "runtime"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `runtime.Submit(`) ||
		!strings.Contains(string(out), `runtime.Wait(runtime.Group("sobel", 0.35))`) {
		t.Errorf("custom runtime variable not honored:\n%s", out)
	}
}

func TestTransformNoDirectivesPassesThrough(t *testing.T) {
	src := "package x\n\nfunc f() int { return 1 }\n"
	out, err := TransformFile("x.go", []byte(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "func f() int") {
		t.Errorf("directive-free file mangled:\n%s", out)
	}
	if strings.Contains(string(out), "repro/sig") {
		t.Errorf("sig import added to a file with no directives:\n%s", out)
	}
}

func TestTransformTaskwaitWithoutLabel(t *testing.T) {
	src := `package x

func f(rt *sig.Runtime) {
	//sig:task significant(0.5)
	work()
	//sig:taskwait
}
`
	out, err := TransformFile("x.go", []byte(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "rt.WaitAll()") {
		t.Errorf("label-free taskwait should lower to WaitAll:\n%s", out)
	}
}

func TestTransformUnlabeledTaskwaitWithRatio(t *testing.T) {
	src := `package x

func f(rt *sig.Runtime) {
	//sig:task significant(0.5)
	work()
	//sig:taskwait ratio(0.35)
}
`
	out, err := TransformFile("x.go", []byte(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The ratio must reach both the submission and the wait via the
	// default ("") group, not be silently dropped.
	if !strings.Contains(string(out), `sig.WithLabel(rt.Group("", 0.35))`) ||
		!strings.Contains(string(out), `rt.Wait(rt.Group("", 0.35))`) {
		t.Errorf("unlabeled taskwait ratio not propagated:\n%s", out)
	}
}

func TestTransformDefaultRatio(t *testing.T) {
	src := `package x

func f(rt *sig.Runtime) {
	//sig:task label(g) significant(0.5)
	work()
	//sig:taskwait label(g)
}
`
	out, err := TransformFile("x.go", []byte(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `rt.Group("g", 1.0)`) {
		t.Errorf("taskwait without ratio should default the group ratio to 1.0:\n%s", out)
	}
}

func TestTransformErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unbalanced-parens", "package x\n\nfunc f() {\n\t//sig:task label(g significant(0.5)\n\twork()\n}\n"},
		{"approxfun-non-call", "package x\n\nfunc f() {\n\t//sig:task approxfun(g)\n\tx := 1\n\t_ = x\n}\n"},
		{"dangling-task", "package x\n\nfunc f() {\n}\n\n//sig:task label(g)\n"},
		{"stacked-task-directives", "package x\n\nfunc f() {\n\t//sig:task label(a)\n\t//sig:task label(b)\n\twork()\n}\n"},
		{"nested-task-directive", "package x\n\nfunc f() {\n\t//sig:task label(outer)\n\tfor i := 0; i < 3; i++ {\n\t\t//sig:task label(inner) significant(0.5)\n\t\twork()\n\t}\n}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := TransformFile("x.go", []byte(tc.src), Options{}); err == nil {
				t.Errorf("expected an error for %s", tc.name)
			}
		})
	}
}

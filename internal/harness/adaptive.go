package harness

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/bench/kmeans"
	"repro/internal/bench/sobel"
	"repro/internal/imaging"
	"repro/sig"
	"repro/sig/adapt"
)

// AdaptiveConfig parameterizes AdaptiveStudy. Zero fields take defaults.
type AdaptiveConfig struct {
	// Scale in (0,1]: 1.0 is evaluation-scale frames.
	Scale float64
	// Workers for the runtimes (0 = GOMAXPROCS).
	Workers int
	// Setpoint is the PSNR target in dB for the streaming-sobel loop
	// (0 = 16 dB).
	Setpoint float64
	// Waves is the total sobel stream length (0 = 24); ChangeAt the wave
	// at which the scene switches (0 = Waves/2).
	Waves    int
	ChangeAt int
	// KmeansWaves is the length of the energy-capped kmeans stream
	// (0 = 12).
	KmeansWaves int
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.Setpoint <= 0 {
		c.Setpoint = 16
	}
	if c.Waves <= 0 {
		c.Waves = 24
	}
	if c.ChangeAt <= 0 || c.ChangeAt >= c.Waves {
		c.ChangeAt = c.Waves / 2
	}
	if c.KmeansWaves <= 0 {
		c.KmeansWaves = 12
	}
	return c
}

// AdaptiveWave is one wave of an adaptive stream's recorded trajectory.
type AdaptiveWave struct {
	Wave  int
	Scene int
	// Ratio was in effect while the wave ran; NextRatio is what the
	// controller commanded afterwards.
	Ratio     float64
	NextRatio float64
	// Provided is the wave-local provided ratio; PSNR the frame quality
	// (sobel stream only); Joules the wave's modeled energy.
	Provided float64
	PSNR     float64
	Joules   float64
	Dropped  int
}

// AdaptiveSegment summarizes one steady scene of the sobel stream.
type AdaptiveSegment struct {
	Scene     int
	StartWave int
	// OracleRatio is the lowest static ratio whose PSNR meets the
	// setpoint on this scene (offline bisection).
	OracleRatio float64
	// ConvergedAfter is how many waves after the segment began the
	// provided ratio entered — and stayed within — ±Tolerance of the
	// oracle; -1 means it never settled.
	ConvergedAfter int
	// SteadyRatio and SteadyPSNR are the segment's final-wave provided
	// ratio and quality.
	SteadyRatio float64
	SteadyPSNR  float64
}

// AdaptiveResult is the outcome of the adaptive-controller study.
type AdaptiveResult struct {
	// Sobel step-response + disturbance-rejection stream (TargetQuality).
	Setpoint  float64
	Tolerance float64
	Rows      []AdaptiveWave
	Segments  [2]AdaptiveSegment

	// Kmeans energy-capped stream (TargetEnergy).
	KmeansBudget float64
	// KmeansOracleRatio is the analytic ratio at which the wave energy
	// (linear in the accurate fraction under declared costs) meets the
	// budget exactly.
	KmeansOracleRatio float64
	KmeansRows        []AdaptiveWave
}

// adaptiveTolerance is the steady-state band around the oracle static
// ratio the study scores convergence against.
const adaptiveTolerance = 0.05

// AdaptiveStudy runs the closed-loop evaluation of sig/adapt:
//
//   - A streaming sobel workload under a TargetQuality controller. The
//     stream starts fully accurate, the controller walks the ratio down to
//     the cheapest point holding the PSNR setpoint (step response), and at
//     ChangeAt the scene switches to one with texture the approximation
//     cannot reproduce — the controller must re-converge onto the new
//     scene's oracle ratio (disturbance rejection).
//   - A streaming kmeans workload under a TargetEnergy controller capping
//     modeled joules per wave while maximizing the ratio.
//
// Everything is deterministic: GTB max-buffering decisions, declared task
// costs and a pure-arithmetic control law.
func AdaptiveStudy(cfg AdaptiveConfig) (AdaptiveResult, error) {
	cfg = cfg.withDefaults()
	res := AdaptiveResult{Setpoint: cfg.Setpoint, Tolerance: adaptiveTolerance}

	if err := adaptiveSobel(cfg, &res); err != nil {
		return res, err
	}
	if err := adaptiveKmeans(cfg, &res); err != nil {
		return res, err
	}
	return res, nil
}

// sobelScenes defines the stream's two scenes: the default synthetic scene,
// then a high-detail one (horizontal texture + stronger speckle) whose
// quality-vs-ratio curve sits well below the first.
var sobelScenes = [2]struct {
	seed   int64
	detail float64
}{{1, 0}, {2, 0.75}}

func adaptiveSobel(cfg AdaptiveConfig, res *AdaptiveResult) error {
	p := sobel.DefaultParams()
	p.W, p.H = scaled(p.W, cfg.Scale, 64), scaled(p.H, cfg.Scale, 64)
	app := sobel.New(p)
	app.SetScene(sobelScenes[0].seed, sobelScenes[0].detail)
	ref := app.Sequential()

	oracle, err := sobelOracleRatio(app, ref, cfg.Setpoint, cfg.Workers)
	if err != nil {
		return err
	}
	res.Segments[0] = AdaptiveSegment{Scene: 0, StartWave: 0, OracleRatio: oracle}

	out := imaging.NewImage(p.W, p.H)
	// The probe caches its last value so the per-wave row below does not
	// pay a second full-frame PSNR pass over the identical ref/out pair.
	var lastPSNR float64
	ctl, err := adapt.New(adapt.Config{
		Group:     "sobel",
		Objective: adapt.TargetQuality,
		Setpoint:  cfg.Setpoint,
		Probe: func() float64 {
			lastPSNR = imaging.PSNR(ref, out)
			return lastPSNR
		},
	})
	if err != nil {
		return err
	}
	rt, err := sig.New(sig.Config{Workers: cfg.Workers, Policy: sig.PolicyGTBMaxBuffer, Observer: ctl})
	if err != nil {
		return err
	}
	defer rt.Close()
	grp := rt.Group("sobel", 1.0) // step response: start fully accurate

	scene := 0
	for w := 0; w < cfg.Waves; w++ {
		if w == cfg.ChangeAt {
			scene = 1
			app.SetScene(sobelScenes[1].seed, sobelScenes[1].detail)
			ref = app.Sequential()
			oracle, err := sobelOracleRatio(app, ref, cfg.Setpoint, cfg.Workers)
			if err != nil {
				return err
			}
			res.Segments[1] = AdaptiveSegment{Scene: 1, StartWave: w, OracleRatio: oracle}
		}
		app.SubmitFrame(rt, grp, out)
		ws := rt.WaitPhase(grp)
		res.Rows = append(res.Rows, AdaptiveWave{
			Wave:      w,
			Scene:     scene,
			Ratio:     ws.RequestedRatio,
			NextRatio: grp.Ratio(),
			Provided:  ws.ProvidedRatio,
			PSNR:      lastPSNR,
			Joules:    ws.Joules,
			Dropped:   ws.Dropped,
		})
	}

	scoreSegment(&res.Segments[0], res.Rows[:cfg.ChangeAt], res.Tolerance)
	scoreSegment(&res.Segments[1], res.Rows[cfg.ChangeAt:], res.Tolerance)
	return nil
}

// sobelOracleRatio bisects for the lowest static ratio whose PSNR against
// ref meets the setpoint on the app's current scene. PSNR is monotone in
// the ratio under max buffering (larger ratios only grow the accurate set),
// so bisection is exact to the returned precision.
func sobelOracleRatio(app *sobel.App, ref *imaging.Image, setpoint float64, workers int) (float64, error) {
	meets := func(ratio float64) (bool, error) {
		rt, err := sig.New(sig.Config{Workers: workers, Policy: sig.PolicyGTBMaxBuffer})
		if err != nil {
			return false, err
		}
		defer rt.Close()
		out := app.Run(rt, ratio)
		return imaging.PSNR(ref, out) >= setpoint, nil
	}
	lo, hi := 0.0, 1.0 // PSNR(1.0) = +Inf always meets
	for i := 0; i < 20; i++ {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// scoreSegment fills the convergence metrics: the first wave from which the
// provided ratio stays within tol of the oracle through the segment's end.
func scoreSegment(seg *AdaptiveSegment, rows []AdaptiveWave, tol float64) {
	if len(rows) == 0 {
		seg.ConvergedAfter = -1
		return
	}
	seg.SteadyRatio = rows[len(rows)-1].Provided
	seg.SteadyPSNR = rows[len(rows)-1].PSNR
	converged := -1
	for i := len(rows) - 1; i >= 0; i-- {
		if math.Abs(rows[i].Provided-seg.OracleRatio) > tol {
			break
		}
		converged = i
	}
	seg.ConvergedAfter = converged
}

func adaptiveKmeans(cfg AdaptiveConfig, res *AdaptiveResult) error {
	p := kmeans.DefaultParams()
	p.N = scaled(p.N, cfg.Scale, p.K*16)
	p.Chunk = max(p.N/64, 64)
	app := kmeans.New(p)

	// Wave energy under declared costs is linear in the accurate fraction
	// between the kernel's all-approximate and all-accurate wave costs.
	// Cap the budget 45% of the way up, so the analytic oracle ratio is
	// 0.45.
	const targetFraction = 0.45
	costAcc, costApx := app.WaveCosts()
	jAcc := sig.DefaultActiveWatts * costAcc * 1e-9
	jApx := sig.DefaultActiveWatts * costApx * 1e-9
	res.KmeansBudget = jApx + targetFraction*(jAcc-jApx)
	res.KmeansOracleRatio = targetFraction

	ctl, err := adapt.New(adapt.Config{
		Group:     "kmeans",
		Objective: adapt.TargetEnergy,
		Budget:    res.KmeansBudget,
	})
	if err != nil {
		return err
	}
	rt, err := sig.New(sig.Config{Workers: cfg.Workers, Policy: sig.PolicyGTBMaxBuffer, Observer: ctl})
	if err != nil {
		return err
	}
	defer rt.Close()
	grp := rt.Group("kmeans", 1.0)
	app.RunStream(rt, grp, cfg.KmeansWaves, func(ws sig.WaveStats) {
		res.KmeansRows = append(res.KmeansRows, AdaptiveWave{
			Wave:      ws.Wave,
			Ratio:     ws.RequestedRatio,
			NextRatio: grp.Ratio(),
			Provided:  ws.ProvidedRatio,
			Joules:    ws.Joules,
			Dropped:   ws.Dropped,
		})
	})
	return nil
}

// PrintAdaptiveStudy renders the study: the wave-by-wave tables, an ASCII
// step-response plot of the ratio trajectory and the convergence summary.
func PrintAdaptiveStudy(w io.Writer, r AdaptiveResult) {
	fmt.Fprintf(w, "Adaptive study: streaming sobel under a TargetQuality controller (setpoint %.1f dB)\n", r.Setpoint)
	fmt.Fprintf(w, "%-5s %-6s %6s %6s %8s %10s %8s\n", "wave", "scene", "req%", "prov%", "PSNR", "energy", "next%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-5d %-6d %6.1f %6.1f %8.2f %9.4fJ %8.1f\n",
			row.Wave, row.Scene, 100*row.Ratio, 100*row.Provided, row.PSNR, row.Joules, 100*row.NextRatio)
	}
	fmt.Fprintln(w)
	plotRatioTrajectory(w, r)
	fmt.Fprintln(w)
	for _, seg := range r.Segments {
		conv := "never"
		if seg.ConvergedAfter >= 0 {
			conv = fmt.Sprintf("%d waves", seg.ConvergedAfter)
		}
		fmt.Fprintf(w, "scene %d: oracle static ratio %.3f, converged within +/-%.2f after %s, steady prov %.3f at %.2f dB\n",
			seg.Scene, seg.OracleRatio, r.Tolerance, conv, seg.SteadyRatio, seg.SteadyPSNR)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Adaptive study: streaming kmeans under a TargetEnergy controller (budget %.4f J/wave, oracle ratio %.2f)\n",
		r.KmeansBudget, r.KmeansOracleRatio)
	fmt.Fprintf(w, "%-5s %6s %6s %10s %8s\n", "wave", "req%", "prov%", "energy", "next%")
	for _, row := range r.KmeansRows {
		fmt.Fprintf(w, "%-5d %6.1f %6.1f %9.4fJ %8.1f\n",
			row.Wave, 100*row.Ratio, 100*row.Provided, row.Joules, 100*row.NextRatio)
	}
}

// plotRatioTrajectory draws the provided-ratio step response as a small
// ASCII chart (rows = ratio bins, columns = waves), with the per-segment
// oracle ratio marked '-' and the scene change '|'.
func plotRatioTrajectory(w io.Writer, r AdaptiveResult) {
	const levels = 10
	fmt.Fprintln(w, "provided ratio vs wave ('*' trajectory, '-' oracle, '|' scene change):")
	for lvl := levels; lvl >= 0; lvl-- {
		ratio := float64(lvl) / levels
		var b strings.Builder
		fmt.Fprintf(&b, "%4.1f ", ratio)
		for i, row := range r.Rows {
			seg := r.Segments[row.Scene]
			ch := byte(' ')
			if i == seg.StartWave && row.Scene == 1 {
				ch = '|'
			}
			if math.Abs(seg.OracleRatio-ratio) <= 0.5/levels {
				ch = '-'
			}
			if math.Abs(row.Provided-ratio) <= 0.5/levels {
				ch = '*'
			}
			b.WriteByte(ch)
		}
		fmt.Fprintln(w, b.String())
	}
}

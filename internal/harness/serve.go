package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/bench/kmeans"
	"repro/internal/bench/sobel"
	"repro/internal/imaging"
	"repro/sig/serve"
)

// ServeBackend is a deterministic request source over a benchmark kernel:
// the pluggable workload behind cmd/sigserve and ServeStudy.
type ServeBackend struct {
	Name string
	// CostAccurate/CostDegraded are the per-request declared costs.
	CostAccurate, CostDegraded float64
	// NewRequest builds the i-th request of the stream (significance tier,
	// handlers, declared costs). Requests are independent: concurrent
	// bodies never share mutable state.
	NewRequest func(i int) serve.Request
}

// serveTier maps the request index onto its significance: nine cycling
// user tiers, every tenth request premium (the special 1.0 — always
// accurate).
func serveTier(i int) float64 {
	if i%10 == 9 {
		return 1.0
	}
	return float64(i%9+1) / 10
}

// SobelServeBackend is the sobel-thumbnailing service: each request renders
// one frame's edge map — the accurate 3×3 kernel, or the 2-point-gradient
// degradation under load.
func SobelServeBackend(scale float64) *ServeBackend {
	p := sobel.DefaultParams()
	// Thumbnail-sized frames: one request ≈ one thumbnail render.
	p.W, p.H = scaled(p.W/8, scale, 32), scaled(p.H/8, scale, 32)
	app := sobel.New(p)
	w, h := app.Size()
	costAcc, costDeg := app.ThumbCosts()
	return &ServeBackend{
		Name:         "sobel",
		CostAccurate: costAcc,
		CostDegraded: costDeg,
		NewRequest: func(i int) serve.Request {
			out := imaging.NewImage(w, h)
			req := serve.Request{
				Significance: serveTier(i),
				Handler:      func() { app.Thumb(out, true) },
				CostAccurate: costAcc,
				CostDegraded: costDeg,
			}
			req.Degraded = func() { app.Thumb(out, false) }
			return req
		},
	}
}

// KmeansServeBackend is the kmeans-scoring service: each request classifies
// a chunk of observations against trained centroids — all K centroids, or
// the restricted candidate search under load.
func KmeansServeBackend(scale float64) *ServeBackend {
	p := kmeans.DefaultParams()
	p.N = scaled(p.N/4, scale, p.K*16)
	p.Chunk = max(p.N/16, 64)
	app := kmeans.New(p)
	scorer := app.NewScorer(app.Sequential().Centroids)
	chunks := app.Len() / p.Chunk
	costAcc, costDeg := app.ScoreCosts(p.Chunk)
	return &ServeBackend{
		Name:         "kmeans",
		CostAccurate: costAcc,
		CostDegraded: costDeg,
		NewRequest: func(i int) serve.Request {
			lo := (i % chunks) * p.Chunk
			hi := lo + p.Chunk
			req := serve.Request{
				Significance: serveTier(i),
				Handler:      func() { scorer.Score(lo, hi, false) },
				CostAccurate: costAcc,
				CostDegraded: costDeg,
			}
			req.Degraded = func() { scorer.Score(lo, hi, true) }
			return req
		},
	}
}

// ServeBackendByName resolves a -backend flag onto a request source.
func ServeBackendByName(name string, scale float64) (*ServeBackend, error) {
	switch strings.ToLower(name) {
	case "", "sobel":
		return SobelServeBackend(scale), nil
	case "kmeans":
		return KmeansServeBackend(scale), nil
	}
	return nil, fmt.Errorf("harness: unknown serve backend %q (want sobel or kmeans)", name)
}

// ServeConfig parameterizes ServeStudy. Zero fields take defaults.
type ServeConfig struct {
	// Scale in (0,1] sizes the backend's per-request work.
	Scale float64
	// Workers for the serving runtime (0 = GOMAXPROCS); per shard when
	// Shards ≥ 2.
	Workers int
	// Shards ≥ 2 runs the server over a shard.Router fleet: the sharded
	// overload scenario, with the hierarchical admission controller
	// (global TargetLoad over merged waves, per-shard trim below).
	Shards int
	// Backend is "sobel" (default) or "kmeans".
	Backend string
	// Waves is the open-loop stream length (default 28); the overload
	// step spans [StepAt, StepEnd) (defaults 8, 16) at Overload times the
	// base arrival rate (default 4).
	Waves, StepAt, StepEnd int
	Overload               float64
	// BasePerWave is the light-load arrival rate in requests per wave
	// (default 8); the server's wave budget is sized so that rate fills
	// 60% of capacity at full quality.
	BasePerWave int
	// Clients sizes the closed-loop segment (default 3x the full-quality
	// per-wave capacity); ClosedWaves is its length (default 12).
	Clients, ClosedWaves int
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.Waves <= 0 {
		c.Waves = 28
	}
	// The step must start inside the stream (StepAt in [1, Waves-1]) and
	// end after it starts, at the latest when the stream does — whatever
	// combination the caller asked for.
	c.Waves = max(c.Waves, 4)
	if c.StepAt <= 0 {
		c.StepAt = 8
	}
	c.StepAt = min(c.StepAt, c.Waves-1)
	if c.StepEnd <= c.StepAt || c.StepEnd > c.Waves {
		c.StepEnd = min(c.StepAt+8, c.Waves)
	}
	if c.Overload <= 1 {
		c.Overload = 4
	}
	if c.BasePerWave <= 0 {
		c.BasePerWave = 8
	}
	if c.ClosedWaves <= 0 {
		c.ClosedWaves = 12
	}
	return c
}

// serveUtilization is the light-load utilization the study sizes the wave
// budget for: BasePerWave accurate requests fill this fraction of a wave.
const serveUtilization = 0.6

// studyRequest builds the i-th request of the study's streams: the
// backend's request at the stream's tier, with every 16th request made
// drop-only (its degraded body stripped) so the studies exercise the
// zero-joule drop path. Live traffic (cmd/sigserve) uses the backend
// directly and always keeps the degraded handler.
func studyRequest(b *ServeBackend, i int) serve.Request {
	req := b.NewRequest(i)
	if i%16 == 15 {
		req.Degraded = nil
	}
	return req
}

// ServeWaveRow is one wave of the open-loop overload study.
type ServeWaveRow struct {
	Wave     int
	Offered  int
	Admitted int
	Depth    int
	Load     float64
	// Ratio ran the wave, NextRatio is the controller's command for the
	// next, Provided the wave's accurate fraction.
	Ratio, NextRatio, Provided  float64
	Accurate, Degraded, Dropped int
	Joules                      float64
}

// ServeResult is the outcome of the serving study.
type ServeResult struct {
	Backend     string
	Shards      int // 0/1 = single runtime; ≥ 2 = sharded fleet
	BasePerWave int
	Overload    float64
	StepAt      int
	StepEnd     int

	// Open-loop overload step.
	Rows []ServeWaveRow
	// P50/P99 are request latency percentiles in waves over every
	// completed request of the open-loop stream.
	P50, P99 int
	Rejected int64
	// PreStepRatio is the commanded ratio just before the step;
	// MinStepRatio the lowest command during it; RecoveredAfter how many
	// waves past StepEnd the command climbed back within 0.05 of the
	// pre-step ratio (-1 = never).
	PreStepRatio   float64
	MinStepRatio   float64
	RecoveredAfter int
	// TotalJoules is the server's cumulative modeled energy, and
	// Outcomes the cumulative accounting, both after the drain.
	TotalJoules float64
	Outcomes    serve.Totals

	// Closed-loop segment: Clients concurrent callers, each submitting
	// its next request as the previous completes.
	Clients          int
	ClosedThroughput float64 // completed requests per wave
	ClosedRatio      float64 // final commanded ratio
	ClosedP99        int     // latency p99 in waves
}

// newStudyServer builds the study's server: budget sized for BasePerWave at
// serveUtilization, a queue deep enough that the step sheds quality rather
// than requests.
func newStudyServer(cfg ServeConfig, b *ServeBackend) (*serve.Server, error) {
	return serve.New(serve.Config{
		Workers:    cfg.Workers,
		Shards:     cfg.Shards,
		WaveBudget: float64(cfg.BasePerWave) * b.CostAccurate / serveUtilization,
		QueueLimit: 64 * cfg.BasePerWave,
	})
}

// ServeStudy runs the serving-layer evaluation: an open-loop request
// stream with an overload step (offered load jumps Overload-fold for
// [StepAt, StepEnd) waves), then a closed-loop segment with a fixed client
// population. Declared request costs, the deterministic max-buffering
// policy and a deterministic arrival order make the whole study — ratio
// trajectory, outcomes, modeled joules — bit-identical across runs.
func ServeStudy(cfg ServeConfig) (ServeResult, error) {
	cfg = cfg.withDefaults()
	backend, err := ServeBackendByName(cfg.Backend, cfg.Scale)
	if err != nil {
		return ServeResult{}, err
	}
	res := ServeResult{
		Backend:     backend.Name,
		Shards:      cfg.Shards,
		BasePerWave: cfg.BasePerWave,
		Overload:    cfg.Overload,
		StepAt:      cfg.StepAt,
		StepEnd:     cfg.StepEnd,
	}
	if err := serveOpenLoop(cfg, backend, &res); err != nil {
		return res, err
	}
	if err := serveClosedLoop(cfg, backend, &res); err != nil {
		return res, err
	}
	return res, nil
}

func serveOpenLoop(cfg ServeConfig, backend *ServeBackend, res *ServeResult) error {
	s, err := newStudyServer(cfg, backend)
	if err != nil {
		return err
	}
	var tickets []*serve.Ticket
	seq := 0
	for w := 0; w < cfg.Waves; w++ {
		offered := cfg.BasePerWave
		if w >= cfg.StepAt && w < cfg.StepEnd {
			offered = int(float64(offered) * cfg.Overload)
		}
		for i := 0; i < offered; i++ {
			tk, err := s.Submit(studyRequest(backend, seq))
			seq++
			if err != nil {
				continue // counted by the server's Rejected total
			}
			tickets = append(tickets, tk)
		}
		rep := s.RunWave()
		res.Rows = append(res.Rows, ServeWaveRow{
			Wave:     rep.Wave,
			Offered:  offered,
			Admitted: rep.Admitted,
			Depth:    rep.Depth,
			Load:     rep.Load,
			Ratio:    rep.Ratio, NextRatio: rep.NextRatio, Provided: rep.Provided,
			Accurate: rep.Accurate, Degraded: rep.Degraded, Dropped: rep.Dropped,
			Joules: rep.Joules,
		})
	}
	if err := s.Close(); err != nil { // drains the remaining backlog
		return err
	}

	lats := make([]int, 0, len(tickets))
	for _, tk := range tickets {
		lats = append(lats, tk.WaveLatency())
		tk.Release() // Close resolved every accepted ticket
	}
	sort.Ints(lats)
	if len(lats) > 0 {
		res.P50 = lats[len(lats)*50/100]
		res.P99 = lats[len(lats)*99/100]
	}
	res.Outcomes = s.Totals()
	res.Rejected = res.Outcomes.Rejected
	res.TotalJoules = res.Outcomes.Joules

	res.PreStepRatio = res.Rows[cfg.StepAt-1].NextRatio
	res.MinStepRatio = 1
	for _, r := range res.Rows[cfg.StepAt:cfg.StepEnd] {
		res.MinStepRatio = math.Min(res.MinStepRatio, r.NextRatio)
	}
	res.RecoveredAfter = -1
	for w := cfg.StepEnd; w < len(res.Rows); w++ {
		if res.Rows[w].NextRatio >= res.PreStepRatio-0.05 {
			res.RecoveredAfter = w - cfg.StepEnd
			break
		}
	}
	return nil
}

func serveClosedLoop(cfg ServeConfig, backend *ServeBackend, res *ServeResult) error {
	s, err := newStudyServer(cfg, backend)
	if err != nil {
		return err
	}
	clients := cfg.Clients
	if clients <= 0 {
		// 3x the requests a full-quality wave can serve: saturating, but
		// absorbable by degradation.
		clients = 3 * int(float64(cfg.BasePerWave)/serveUtilization)
	}
	res.Clients = clients

	outstanding := make([]*serve.Ticket, 0, clients)
	var lats []int
	completedTotal := 0
	seq := 0
	submit := func() {
		tk, err := s.Submit(studyRequest(backend, seq))
		seq++
		if err == nil {
			outstanding = append(outstanding, tk)
		}
	}
	for i := 0; i < clients; i++ {
		submit()
	}
	var lastRatio float64
	for w := 0; w < cfg.ClosedWaves; w++ {
		rep := s.RunWave()
		lastRatio = rep.NextRatio
		// Each completed client immediately submits its next request.
		still := outstanding[:0]
		completed := 0
		for _, tk := range outstanding {
			select {
			case <-tk.Done():
				lats = append(lats, tk.WaveLatency())
				tk.Release()
				completed++
			default:
				still = append(still, tk)
			}
		}
		outstanding = still
		completedTotal += completed
		for i := 0; i < completed; i++ {
			submit()
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	for _, tk := range outstanding {
		tk.Release() // Close resolved the remaining in-flight requests
	}
	res.ClosedThroughput = float64(completedTotal) / float64(cfg.ClosedWaves)
	res.ClosedRatio = lastRatio
	sort.Ints(lats)
	if len(lats) > 0 {
		res.ClosedP99 = lats[len(lats)*99/100]
	}
	return nil
}

// PrintServeStudy renders the study: the per-wave table, an ASCII plot of
// the commanded ratio across the overload step, and the summary lines the
// smoke test and BENCH json consume.
func PrintServeStudy(w io.Writer, r ServeResult) {
	engine := ""
	if r.Shards >= 2 {
		engine = fmt.Sprintf(", %d shards", r.Shards)
	}
	fmt.Fprintf(w, "Serve study (%s backend%s): open-loop %.0fx overload step over waves [%d,%d)\n",
		r.Backend, engine, r.Overload, r.StepAt, r.StepEnd)
	fmt.Fprintf(w, "%-5s %7s %7s %6s %6s %6s %6s %6s %5s/%-5s/%-4s %10s\n",
		"wave", "offered", "admit", "depth", "load", "req%", "prov%", "next%", "acc", "deg", "drop", "energy")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-5d %7d %7d %6d %6.2f %6.1f %6.1f %6.1f %5d/%-5d/%-4d %9.4fJ\n",
			row.Wave, row.Offered, row.Admitted, row.Depth, row.Load,
			100*row.Ratio, 100*row.Provided, 100*row.NextRatio,
			row.Accurate, row.Degraded, row.Dropped, row.Joules)
	}
	fmt.Fprintln(w)
	plotServeRatio(w, r)
	fmt.Fprintln(w)
	rec := "never"
	if r.RecoveredAfter >= 0 {
		rec = fmt.Sprintf("%d waves", r.RecoveredAfter)
	}
	fmt.Fprintf(w, "open loop: ratio %.3f -> min %.3f under the step, recovered within 0.05 after %s\n",
		r.PreStepRatio, r.MinStepRatio, rec)
	fmt.Fprintf(w, "open loop: latency p50 %d / p99 %d waves, %d rejected, %.4f J total (%d acc / %d deg / %d drop)\n",
		r.P50, r.P99, r.Rejected, r.TotalJoules,
		r.Outcomes.Accurate, r.Outcomes.Degraded, r.Outcomes.Dropped)
	fmt.Fprintf(w, "closed loop: %d clients -> %.1f req/wave at ratio %.3f, latency p99 %d waves\n",
		r.Clients, r.ClosedThroughput, r.ClosedRatio, r.ClosedP99)
}

// plotServeRatio draws the commanded-ratio trajectory ('*') with the
// overload step bracketed by '|' columns.
func plotServeRatio(w io.Writer, r ServeResult) {
	const levels = 10
	fmt.Fprintln(w, "commanded ratio vs wave ('*' trajectory, '|' overload step bounds):")
	for lvl := levels; lvl >= 0; lvl-- {
		ratio := float64(lvl) / levels
		var b strings.Builder
		fmt.Fprintf(&b, "%4.1f ", ratio)
		for i, row := range r.Rows {
			ch := byte(' ')
			if i == r.StepAt || i == r.StepEnd {
				ch = '|'
			}
			if math.Abs(row.NextRatio-ratio) <= 0.5/levels {
				ch = '*'
			}
			b.WriteByte(ch)
		}
		fmt.Fprintln(w, b.String())
	}
}

package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/sig"
	"repro/sig/shard"
)

// ShardStudy measures what multi-runtime sharding buys: each shard is one
// fixed-size sig.Runtime (its worker pool and bounded run queues are the
// "NUMA-ish" resource slice of the ROADMAP), and the router multiplies
// those resources. The headline metric is burst submit throughput — how
// fast a producer can hand an overload burst to the scheduler. The burst
// is sized to the aggregate queue capacity of the reference fleet
// (SpeedupShards shards): a single shard must drain-while-ingesting, its
// producer stalling on backpressure behind every queue slot, while the
// sharded fleet absorbs the same burst across its queues at memory speed.
// That contrast is capacity-bound, not core-bound, so the scaling is
// visible even on a single-CPU host (and under -race).
//
// The study also pins the merged energy account: every row executes the
// identical task stream with declared costs, so the router's merged joules
// must be bit-identical across shard counts and to a plain single-runtime
// golden — the exact-integer busy-nanosecond summation at work.
//
// A second table sweeps the placement policies at the reference fleet size
// under GTB(max) at ratio 0.5, reporting the per-shard spread and the
// merged provided ratio (the cross-shard ratio floor, observed rather than
// asserted — the invariant suite in sig/shard asserts it).

// SpeedupShards is the reference fleet size the burst is sized against and
// the speedup is quoted at.
const SpeedupShards = 4

// ShardStudyConfig parameterizes ShardStudy. Zero fields take defaults.
type ShardStudyConfig struct {
	// ShardCounts are the fleet sizes to measure (default 1, 2, 4, 8).
	ShardCounts []int
	// WorkersPerShard sizes each shard's pool (default 1).
	WorkersPerShard int
	// QueueCapacity is each worker's bounded run-queue (default 64).
	QueueCapacity int
	// Burst is the number of tasks per measured burst (default 85% of the
	// reference fleet's aggregate queue capacity).
	Burst int
	// SpinIters is the busy work per task body (default 30_000 iterations,
	// ~tens of µs); it is also the task's declared cost.
	SpinIters int
	// Reps is how many times each burst is measured; the fastest rep is
	// kept (default 3), shedding scheduler preemption outliers like the
	// Fig4 baseline does.
	Reps int
	// Chunk is the SubmitBatch granularity (default 32).
	Chunk int
}

func (c ShardStudyConfig) withDefaults() ShardStudyConfig {
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 2, 4, 8}
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 1
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.SpinIters <= 0 {
		c.SpinIters = 30_000
	}
	if c.Burst <= 0 {
		c.Burst = SpeedupShards * c.WorkersPerShard * c.QueueCapacity * 85 / 100
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Chunk <= 0 {
		c.Chunk = 32
	}
	return c
}

// spinSink defeats dead-code elimination of the spin bodies.
var spinSink atomic.Uint64

// spin burns ~n iterations of register arithmetic: deterministic work with
// no memory traffic, so declared costs model it faithfully.
func spin(n int) {
	x := uint64(n)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	spinSink.Store(x)
}

// ShardRow is one fleet size's measurement.
type ShardRow struct {
	Shards int
	// Capacity is the fleet's aggregate queue slots.
	Capacity int
	// Ingest is the best-of-reps wall time from first to last Submit of
	// the burst; IngestTput the corresponding tasks/s.
	Ingest     time.Duration
	IngestTput float64
	// Drain is the taskwait wall time after ingest; TotalTput the burst
	// over ingest+drain (work-bound: flat across fleet sizes on one CPU).
	Drain     time.Duration
	TotalTput float64
	// Joules is the merged modeled energy of the burst.
	Joules float64
}

// ShardPlacementRow is one placement policy's behavior at the reference
// fleet size.
type ShardPlacementRow struct {
	Placement shard.PlacementKind
	// MinShare/MaxShare are the smallest and largest per-shard task
	// shares of the stream.
	MinShare, MaxShare int
	// Requested/Provided are the merged ratio command and delivery.
	Requested, Provided float64
}

// ShardResult is the outcome of the sharding study.
type ShardResult struct {
	Burst           int
	WorkersPerShard int
	QueueCapacity   int
	SpinIters       int
	Rows            []ShardRow
	// Speedup is IngestTput at SpeedupShards over IngestTput at 1 shard.
	Speedup float64
	// GoldenJoules is a plain (router-free) sig.Runtime executing the
	// burst; JoulesAdditive reports whether every row's merged joules are
	// bit-identical to it.
	GoldenJoules   float64
	JoulesAdditive bool
	Placements     []ShardPlacementRow
}

// burstSpecs builds the study's task stream: identical declared-cost spin
// tasks (every one accurate — the study measures scheduling, not
// shedding).
func burstSpecs(cfg ShardStudyConfig) []sig.TaskSpec {
	specs := make([]sig.TaskSpec, cfg.Burst)
	for i := range specs {
		specs[i] = sig.TaskSpec{
			Fn:      func() { spin(cfg.SpinIters) },
			HasCost: true, CostAccurate: float64(cfg.SpinIters), CostApprox: 0,
		}
	}
	return specs
}

// measureBurst runs one fleet size: Reps bursts, keeping the full timings
// of the fastest-ingest rep (ingest and drain must come from the same run,
// or the derived total throughput corresponds to no run at all).
func measureBurst(cfg ShardStudyConfig, shards int) (ShardRow, error) {
	row := ShardRow{
		Shards:   shards,
		Capacity: shards * cfg.WorkersPerShard * cfg.QueueCapacity,
		Ingest:   time.Duration(math.MaxInt64),
	}
	specs := burstSpecs(cfg)
	for rep := 0; rep < cfg.Reps; rep++ {
		r, err := shard.New(shard.Config{
			Shards: shards,
			Runtime: sig.Config{
				Workers:       cfg.WorkersPerShard,
				Policy:        sig.PolicyAccurate,
				QueueCapacity: cfg.QueueCapacity,
			},
		})
		if err != nil {
			return row, err
		}
		g := r.Group("burst", 1.0)
		runtime.Gosched() // start the clock with a fresh scheduler slice
		start := time.Now()
		for lo := 0; lo < len(specs); lo += cfg.Chunk {
			r.SubmitBatch(g, specs[lo:min(lo+cfg.Chunk, len(specs))])
		}
		ingest := time.Since(start)
		r.Wait(g)
		drain := time.Since(start) - ingest
		if err := r.Close(); err != nil {
			return row, err
		}
		if ingest < row.Ingest {
			row.Ingest = ingest
			row.Drain = drain
			row.Joules = r.Energy().Joules
		}
	}
	row.IngestTput = float64(cfg.Burst) / row.Ingest.Seconds()
	row.TotalTput = float64(cfg.Burst) / (row.Ingest + row.Drain).Seconds()
	return row, nil
}

// placementSweep exercises each placement policy at the reference fleet
// size under GTB(max) at ratio 0.5 on a nine-tier stream with two cost
// classes.
func placementSweep(cfg ShardStudyConfig) ([]ShardPlacementRow, error) {
	const n = 1800
	var rows []ShardPlacementRow
	for _, placement := range []shard.PlacementKind{shard.PlaceRoundRobin, shard.PlaceLeastLoad, shard.PlaceCostAffinity} {
		r, err := shard.New(shard.Config{
			Shards:    SpeedupShards,
			Placement: placement,
			Runtime:   sig.Config{Workers: cfg.WorkersPerShard, Policy: sig.PolicyGTBMaxBuffer},
		})
		if err != nil {
			return nil, err
		}
		g := r.Group("place", 0.5)
		specs := make([]sig.TaskSpec, n)
		for i := range specs {
			cost := 1000.0
			if i%3 == 0 {
				cost = 30000.0 // distinct cost class: exercises affinity and load skew
			}
			specs[i] = sig.TaskSpec{
				Fn:           func() {},
				Approx:       func() {},
				Significance: float64(i%9+1) / 10,
				HasCost:      true, CostAccurate: cost, CostApprox: cost / 8,
			}
		}
		r.SubmitBatch(g, specs)
		r.Wait(g)
		row := ShardPlacementRow{Placement: placement, Requested: 0.5, MinShare: n}
		row.Provided = g.Stats().ProvidedRatio
		for i := 0; i < SpeedupShards; i++ {
			share := int(g.Part(i).Stats().Submitted)
			row.MinShare = min(row.MinShare, share)
			row.MaxShare = max(row.MaxShare, share)
		}
		if err := r.Close(); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ShardStudy runs the multi-runtime sharding evaluation.
func ShardStudy(cfg ShardStudyConfig) (ShardResult, error) {
	cfg = cfg.withDefaults()
	res := ShardResult{
		Burst:           cfg.Burst,
		WorkersPerShard: cfg.WorkersPerShard,
		QueueCapacity:   cfg.QueueCapacity,
		SpinIters:       cfg.SpinIters,
	}

	// Router-free golden for the energy-additivity check.
	rt, err := sig.New(sig.Config{
		Workers:       cfg.WorkersPerShard,
		Policy:        sig.PolicyAccurate,
		QueueCapacity: cfg.QueueCapacity,
	})
	if err != nil {
		return res, err
	}
	rt.SubmitBatch(nil, burstSpecs(cfg))
	rt.Wait(nil)
	rt.Close()
	res.GoldenJoules = rt.Energy().Joules
	res.JoulesAdditive = true

	for _, shards := range cfg.ShardCounts {
		row, err := measureBurst(cfg, shards)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
		if math.Float64bits(row.Joules) != math.Float64bits(res.GoldenJoules) {
			res.JoulesAdditive = false
		}
	}
	// The headline ratio needs both endpoints, wherever (and in whatever
	// order) they appear in ShardCounts; 0 means "not measured".
	var tput1, tputRef float64
	for _, row := range res.Rows {
		switch row.Shards {
		case 1:
			tput1 = row.IngestTput
		case SpeedupShards:
			tputRef = row.IngestTput
		}
	}
	if tput1 > 0 && tputRef > 0 {
		res.Speedup = tputRef / tput1
	}

	res.Placements, err = placementSweep(cfg)
	return res, err
}

// PrintShardStudy renders the study.
func PrintShardStudy(w io.Writer, r ShardResult) {
	fmt.Fprintf(w, "Shard study: %d-task burst over fixed shards (%d worker(s)/shard, queue %d, %d-iter bodies)\n",
		r.Burst, r.WorkersPerShard, r.QueueCapacity, r.SpinIters)
	fmt.Fprintf(w, "%-7s %9s %12s %12s %12s %12s %12s\n",
		"shards", "capacity", "ingest", "ktasks/s", "drain", "total kt/s", "energy")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-7d %9d %12v %12.1f %12v %12.1f %11.4fJ\n",
			row.Shards, row.Capacity, row.Ingest.Round(time.Microsecond), row.IngestTput/1e3,
			row.Drain.Round(time.Microsecond), row.TotalTput/1e3, row.Joules)
	}
	additive := "bit-identical across fleet sizes and to the runtime golden"
	if !r.JoulesAdditive {
		additive = "NOT additive — energy merge broken"
	}
	speedup := fmt.Sprintf("%.2fx", r.Speedup)
	if r.Speedup == 0 {
		speedup = fmt.Sprintf("n/a (needs the 1- and %d-shard rows)", SpeedupShards)
	}
	fmt.Fprintf(w, "burst ingest speedup at %d shards: %s; merged joules %s (golden %.4fJ)\n",
		SpeedupShards, speedup, additive, r.GoldenJoules)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "placement sweep at %d shards (GTB(max), ratio 0.50, two cost classes):\n", SpeedupShards)
	fmt.Fprintf(w, "%-14s %12s %8s %8s\n", "placement", "share", "req%", "prov%")
	for _, p := range r.Placements {
		fmt.Fprintf(w, "%-14s %5d..%-6d %8.1f %8.1f\n",
			p.Placement, p.MinShare, p.MaxShare, 100*p.Requested, 100*p.Provided)
	}
}

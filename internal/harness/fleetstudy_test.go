package harness

import (
	"strings"
	"testing"
)

// TestFleetStudyGates is the elastic-fleet acceptance gate: rolling
// replacement loses nothing and keeps the energy account bit-exact, and
// the autoscaler's step response is bounded and oscillation-free.
func TestFleetStudyGates(t *testing.T) {
	res, err := FleetStudy(FleetStudyConfig{})
	if err != nil {
		t.Fatal(err)
	}

	a := res.Replace
	if a.Replaced != a.Shards {
		t.Errorf("replaced %d shards, want all %d", a.Replaced, a.Shards)
	}
	if a.Lost != 0 {
		t.Errorf("rolling replace lost %d of %d requests", a.Lost, a.Submitted)
	}
	if a.DegradedWaves != 0 {
		t.Errorf("%d waves ran below nominal capacity; surge-then-drain should keep it at 0", a.DegradedWaves)
	}
	if !a.JoulesBitIdentical {
		t.Errorf("merged energy %.9g != golden %.9g (bit-exactness broken by replacement)",
			a.MergedJoules, a.GoldenJoules)
	}

	b := res.Scale
	if b.WavesToScaleUp < 0 || b.WavesToScaleUp > 12 {
		t.Errorf("scale-up to max took %d waves, want within 12", b.WavesToScaleUp)
	}
	if b.WavesToScaleDown < 0 || b.WavesToScaleDown > 60 {
		t.Errorf("scale-down to min took %d waves, want within 60", b.WavesToScaleDown)
	}
	if b.Oscillations != 0 {
		t.Errorf("%d oscillations in the live-shard trajectory %v, want 0", b.Oscillations, b.Trajectory)
	}

	var sb strings.Builder
	PrintFleetStudy(&sb, res)
	out := sb.String()
	for _, want := range []string{"rolling replace", "bit-identical", "step response", "oscillations"} {
		if !strings.Contains(out, want) {
			t.Errorf("study output missing %q:\n%s", want, out)
		}
	}
}

// TestFleetStudyDeterministic: the whole study — trajectories, counters,
// energy bits — replays identically. Both controllers are pure arithmetic
// over declared costs; nothing may leak wall-clock into the results.
func TestFleetStudyDeterministic(t *testing.T) {
	cfg := FleetStudyConfig{Shards: 2, PerWave: 64, HighWaves: 12}
	r1, err := FleetStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FleetStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Replace != r2.Replace {
		t.Errorf("replace results differ:\n%+v\n%+v", r1.Replace, r2.Replace)
	}
	if len(r1.Scale.Trajectory) != len(r2.Scale.Trajectory) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(r1.Scale.Trajectory), len(r2.Scale.Trajectory))
	}
	for i := range r1.Scale.Trajectory {
		if r1.Scale.Trajectory[i] != r2.Scale.Trajectory[i] {
			t.Fatalf("trajectories diverge at wave %d:\n%v\n%v", i, r1.Scale.Trajectory, r2.Scale.Trajectory)
		}
	}
	if r1.Scale.WavesToScaleUp != r2.Scale.WavesToScaleUp ||
		r1.Scale.WavesToScaleDown != r2.Scale.WavesToScaleDown ||
		r1.Scale.Oscillations != r2.Scale.Oscillations ||
		r1.Scale.Rejected != r2.Scale.Rejected {
		t.Errorf("scale results differ:\n%+v\n%+v", r1.Scale, r2.Scale)
	}
}

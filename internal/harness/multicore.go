package harness

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/sig"
	"repro/sig/serve"
)

// MulticoreStudy sweeps GOMAXPROCS over the three parallel hot paths the
// bench ledger's single-core history could never exercise: multi-producer
// scalar Submit into one runtime (the lock-free submit path), the sharded
// burst ingest of ShardStudy at the reference fleet size, and the serving
// layer's per-request admission overhead under the ServeStudy overload
// step's wave shape. Every row records the same workload at a different
// GOMAXPROCS, and the result carries the host shape (runtime.NumCPU,
// GOMAXPROCS levels, go version, vcs commit) so a BENCH_sig.json entry
// states what hardware produced it instead of implying it.

// HostShape identifies the machine and toolchain a measurement ran on.
type HostShape struct {
	CPUs       int    `json:"cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go"`
	Commit     string `json:"commit,omitempty"`
}

// Host captures the current process's host shape. The commit is the build's
// vcs.revision when the binary was built inside a git checkout.
func Host() HostShape {
	h := HostShape{
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				h.Commit = s.Value
				if len(h.Commit) > 12 {
					h.Commit = h.Commit[:12]
				}
			}
		}
	}
	return h
}

// MulticoreConfig parameterizes MulticoreStudy. Zero fields take defaults.
type MulticoreConfig struct {
	// Procs are the GOMAXPROCS levels to sweep (default 1, 2, 4, 8).
	Procs []int
	// SubmitTasks is the total task count of the multi-producer submit
	// measurement (default 32768), split across one producer goroutine per
	// GOMAXPROCS.
	SubmitTasks int
	// Reps is the best-of repetition count per measurement (default 3).
	Reps int
	// Shard configures the burst-ingest leg; the sweep measures the
	// reference fleet size (SpeedupShards) at each GOMAXPROCS level.
	Shard ShardStudyConfig
	// ServeWaves is the length of the admission-overhead stream (default
	// 24); each wave offers BasePerWave x Overload requests — the ServeStudy
	// overload step held for the whole stream.
	ServeWaves  int
	BasePerWave int
	Overload    float64
}

func (c MulticoreConfig) withDefaults() MulticoreConfig {
	if len(c.Procs) == 0 {
		c.Procs = []int{1, 2, 4, 8}
	}
	if c.SubmitTasks <= 0 {
		c.SubmitTasks = 32768
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	c.Shard = c.Shard.withDefaults()
	if c.ServeWaves <= 0 {
		c.ServeWaves = 24
	}
	if c.BasePerWave <= 0 {
		c.BasePerWave = 8
	}
	if c.Overload <= 1 {
		c.Overload = 4
	}
	return c
}

// MulticoreRow is one GOMAXPROCS level's measurements.
type MulticoreRow struct {
	Procs int `json:"procs"`
	// SubmitTput is multi-producer scalar Submit throughput in tasks/s
	// (Procs producers into one runtime).
	SubmitTput float64 `json:"submit_tput"`
	// BurstTput is the sharded burst ingest throughput in tasks/s at the
	// reference fleet size.
	BurstTput float64 `json:"burst_tput"`
	// AdmitNsPerReq is the serving layer's per-request overhead in
	// nanoseconds — submit through wave resolution with trivial bodies —
	// under the overload step's wave shape.
	AdmitNsPerReq float64 `json:"admit_ns_per_req"`
}

// MulticoreResult is the outcome of the GOMAXPROCS sweep.
type MulticoreResult struct {
	Host        HostShape      `json:"host"`
	SubmitTasks int            `json:"submit_tasks"`
	Burst       int            `json:"burst"`
	ServeWaves  int            `json:"serve_waves"`
	PerWave     int            `json:"per_wave"`
	Rows        []MulticoreRow `json:"rows"`
}

// measureSubmitTput times producers goroutines submitting total scalar
// tasks into one max-buffering runtime: pure ingest, no execution in the
// timed window (the policy buffers until the final Wait).
func measureSubmitTput(producers, total, reps int) (float64, error) {
	if producers < 1 {
		producers = 1
	}
	per := total / producers
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		rt, err := sig.New(sig.Config{Workers: 1, Policy: sig.PolicyGTBMaxBuffer})
		if err != nil {
			return 0, err
		}
		g := rt.Group("mc", 1.0)
		opts := []sig.TaskOption{sig.WithLabel(g), sig.WithSignificance(0.5), sig.WithCost(100, 10)}
		var wg sync.WaitGroup
		start := time.Now()
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					rt.Submit(func() {}, opts...)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		rt.Wait(g)
		if err := rt.Close(); err != nil {
			return 0, err
		}
		if tput := float64(per*producers) / elapsed.Seconds(); tput > best {
			best = tput
		}
	}
	return best, nil
}

// measureServeAdmit drives the overload step's wave shape — perWave
// declared-cost requests offered per wave against a budget sized for
// base-at-60% — with trivial bodies, so the measured wall time is the
// serving layer's own per-request overhead: ticket and pending management,
// admission, slab coalescing, batch ingest, wave resolution.
func measureServeAdmit(waves, base int, overload float64, reps int) (float64, error) {
	const costAcc, costDeg = 30_000.0, 4_000.0
	perWave := int(float64(base) * overload)
	best := 0.0
	var bestNs float64
	for rep := 0; rep < reps; rep++ {
		s, err := serve.New(serve.Config{
			Workers:    2,
			WaveBudget: float64(base) * costAcc / serveUtilization,
			QueueLimit: 64 * base,
		})
		if err != nil {
			return 0, err
		}
		req := serve.Request{
			Significance: 0.5,
			Handler:      func() {},
			Degraded:     func() {},
			CostAccurate: costAcc,
			CostDegraded: costDeg,
		}
		outstanding := make([]*serve.Ticket, 0, waves*perWave)
		start := time.Now()
		for w := 0; w < waves; w++ {
			for i := 0; i < perWave; i++ {
				tk, err := s.Submit(req)
				if err != nil {
					continue // rejected: counted by the server
				}
				outstanding = append(outstanding, tk)
			}
			s.RunWave()
			// Recycle resolved tickets as a real caller would.
			still := outstanding[:0]
			for _, tk := range outstanding {
				select {
				case <-tk.Done():
					tk.Release()
				default:
					still = append(still, tk)
				}
			}
			outstanding = still
		}
		if err := s.Close(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		for _, tk := range outstanding {
			tk.Release() // Close resolved the backlog
		}
		completed := s.Totals().Completed
		if completed == 0 {
			return 0, fmt.Errorf("harness: admission measurement completed no requests")
		}
		ns := float64(elapsed.Nanoseconds()) / float64(completed)
		if tput := float64(completed) / elapsed.Seconds(); tput > best {
			best = tput
			bestNs = ns
		}
	}
	return bestNs, nil
}

// MulticoreStudy runs the GOMAXPROCS sweep. It temporarily overrides the
// process's GOMAXPROCS per row and restores it before returning.
func MulticoreStudy(cfg MulticoreConfig) (MulticoreResult, error) {
	cfg = cfg.withDefaults()
	res := MulticoreResult{
		Host:        Host(),
		SubmitTasks: cfg.SubmitTasks,
		Burst:       cfg.Shard.Burst,
		ServeWaves:  cfg.ServeWaves,
		PerWave:     int(float64(cfg.BasePerWave) * cfg.Overload),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range cfg.Procs {
		if procs < 1 {
			continue
		}
		runtime.GOMAXPROCS(procs)
		row := MulticoreRow{Procs: procs}
		var err error
		if row.SubmitTput, err = measureSubmitTput(procs, cfg.SubmitTasks, cfg.Reps); err != nil {
			return res, err
		}
		burst, err := measureBurst(cfg.Shard, SpeedupShards)
		if err != nil {
			return res, err
		}
		row.BurstTput = burst.IngestTput
		if row.AdmitNsPerReq, err = measureServeAdmit(cfg.ServeWaves, cfg.BasePerWave, cfg.Overload, cfg.Reps); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// PrintMulticoreStudy renders the sweep.
func PrintMulticoreStudy(w io.Writer, r MulticoreResult) {
	commit := r.Host.Commit
	if commit == "" {
		commit = "unknown"
	}
	fmt.Fprintf(w, "Multicore study: host %d CPU(s), %s, commit %s\n",
		r.Host.CPUs, r.Host.GoVersion, commit)
	fmt.Fprintf(w, "sweep: %d-task multi-producer submit, %d-task burst at %d shards, %d overload waves x %d requests\n",
		r.SubmitTasks, r.Burst, SpeedupShards, r.ServeWaves, r.PerWave)
	fmt.Fprintf(w, "%-10s %16s %16s %14s\n", "gomaxprocs", "submit ktasks/s", "ingest ktasks/s", "admit ns/req")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10d %16.1f %16.1f %14.1f\n",
			row.Procs, row.SubmitTput/1e3, row.BurstTput/1e3, row.AdmitNsPerReq)
	}
	if len(r.Rows) >= 2 {
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		if first.SubmitTput > 0 && first.Procs == 1 {
			fmt.Fprintf(w, "submit scaling at %d procs: %.2fx; burst ingest: %.2fx\n",
				last.Procs, last.SubmitTput/first.SubmitTput, last.BurstTput/first.BurstTput)
		}
	}
}

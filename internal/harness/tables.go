package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/sig"
)

// Table1 renders the benchmark catalog (the paper's Table 1) to w. The
// output is deterministic and covered by a golden test.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: benchmark catalog")
	fmt.Fprintf(w, "%-13s %-25s %-45s %-38s %s\n",
		"Benchmark", "Domain", "Task decomposition", "Degradation", "Quality metric")
	for _, s := range specs() {
		fmt.Fprintf(w, "%-13s %-25s %-45s %-38s %s\n",
			s.Name, s.Domain, s.TaskDecomposition, s.Degradation, s.QualityMetric)
	}
}

// Table2Row reports, for one benchmark at the Medium degree, how precisely
// each significance-aware policy honored the requested ratio and how often
// it inverted the significance order (ran a less significant task accurately
// at the expense of a more significant one).
type Table2Row struct {
	Bench string
	// Requested is the Medium-degree target accurate ratio.
	Requested float64
	// ProvidedPct is the delivered accurate percentage per mode.
	ProvidedPct map[Mode]float64
	// InversionPct is the percentage of accurate-execution slots spent
	// on tasks outside the top-Requested significance set.
	InversionPct map[Mode]float64
}

// table2Modes are the significance-aware policies Table 2 audits.
func table2Modes() []Mode { return []Mode{ModeGTB, ModeGTBMax, ModeLQH} }

// Table2 runs the policy-accuracy experiment.
func Table2(opt Options) ([]Table2Row, error) {
	benches, err := subset(opt)
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, 0, len(benches))
	for _, spec := range benches {
		inst := spec.Make(opt.scale())
		ref := inst.Reference()
		row := Table2Row{
			Bench:        spec.Name,
			Requested:    spec.Ratios[Medium],
			ProvidedPct:  make(map[Mode]float64),
			InversionPct: make(map[Mode]float64),
		}
		for _, mode := range table2Modes() {
			m, err := Execute(spec, inst, ref, mode, Medium,
				RunOptions{Workers: opt.Workers, RecordDecisions: true})
			if err != nil {
				return nil, err
			}
			row.ProvidedPct[mode] = 100 * m.ProvidedRatio
			row.InversionPct[mode] = inversionPct(m.Decisions)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// inversionPct measures how far the accurate set strays from the
// significance oracle: with k accurate executions in a taskwait wave, the
// oracle spends all k slots on the wave's k most significant tasks; every
// accurate task strictly below that cutoff is an inversion. Waves are
// scored independently — iterative benchmarks reassign significance each
// wave, so cross-wave comparisons would be meaningless — and aggregated
// over the total accurate count.
func inversionPct(recs []sig.DecisionRecord) float64 {
	waves := make(map[int][]sig.DecisionRecord)
	for _, r := range recs {
		waves[r.Wave] = append(waves[r.Wave], r)
	}
	totalInv, totalK := 0, 0
	for _, wave := range waves {
		k := 0
		for _, r := range wave {
			if r.Accurate {
				k++
			}
		}
		if k == 0 {
			continue
		}
		sigs := make([]float64, len(wave))
		for i, r := range wave {
			sigs[i] = r.Significance
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(sigs)))
		cutoff := sigs[k-1]
		for _, r := range wave {
			if r.Accurate && r.Significance < cutoff {
				totalInv++
			}
		}
		totalK += k
	}
	if totalK == 0 {
		return 0
	}
	return 100 * float64(totalInv) / float64(totalK)
}

package harness

import (
	"fmt"
	"io"
	"time"
)

// FormatMeasurementHeader writes the column header matching PrintFig2Row.
func FormatMeasurementHeader(w io.Writer) {
	fmt.Fprintf(w, "%-13s %-10s %-12s %12s %11s %10s %6s %6s %10s\n",
		"benchmark", "degree", "policy", "time", "energy", "quality", "req%", "prov%", "ktasks/s")
}

// PrintFig2Row writes one Figure 2 measurement, prefixed by prefix.
func PrintFig2Row(w io.Writer, m Fig2Row, prefix string) {
	if !m.Applicable {
		fmt.Fprintf(w, "%s%-13s %-10s %-12s %12s\n", prefix, m.Bench, m.Degree, m.Mode, "n/a")
		return
	}
	fmt.Fprintf(w, "%s%-13s %-10s %-12s %12v %10.4fJ %10.5f %6.1f %6.1f %10.1f\n",
		prefix, m.Bench, m.Degree, m.Mode, m.Wall.Round(time.Microsecond),
		m.Joules, m.Quality, 100*m.RequestedRatio, 100*m.ProvidedRatio,
		m.TasksPerSec/1e3)
}

// PrintFig4 writes the runtime-overhead rows of Figure 4.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4: all-accurate runtime execution time normalized to sequential")
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-13s %12s", "benchmark", "sequential")
	for _, wk := range rows[0].Workers {
		fmt.Fprintf(w, " %9dw", wk)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %12v", r.Bench, r.SequentialWall.Round(time.Microsecond))
		for _, v := range r.Normalized {
			fmt.Fprintf(w, " %9.2fx", v)
		}
		fmt.Fprintln(w)
	}
}

// PrintTable2 writes the policy-accuracy rows of Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: requested vs provided accurate ratio and significance inversions (Medium)")
	fmt.Fprintf(w, "%-13s %6s", "benchmark", "req%")
	for _, m := range table2Modes() {
		fmt.Fprintf(w, " %9s-prov%% %9s-inv%%", m, m)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %6.1f", r.Bench, 100*r.Requested)
		for _, m := range table2Modes() {
			fmt.Fprintf(w, " %15.1f %14.1f", r.ProvidedPct[m], r.InversionPct[m])
		}
		fmt.Fprintln(w)
	}
}

// PrintWindowSweep writes the GTB window ablation.
func PrintWindowSweep(w io.Writer, rows []WindowRow) {
	fmt.Fprintln(w, "Ablation: GTB buffer-window sweep (first benchmark, Medium degree)")
	fmt.Fprintf(w, "%-8s %11s %10s %6s\n", "window", "energy", "quality", "prov%")
	for _, r := range rows {
		win := fmt.Sprintf("%d", r.Window)
		if r.Window == 0 {
			win = "max"
		}
		fmt.Fprintf(w, "%-8s %10.4fJ %10.5f %6.1f\n", win, r.Joules, r.Quality, r.ProvidedPct)
	}
}

// PrintOracleComparison writes the online-policy vs max-buffering oracle
// ablation.
func PrintOracleComparison(w io.Writer, rows []OracleRow) {
	fmt.Fprintln(w, "Ablation: online policies vs max-buffering oracle (Medium degree)")
	fmt.Fprintf(w, "%-13s %-8s %11s %11s %10s %10s\n",
		"benchmark", "policy", "energy", "oracle-E", "quality", "oracle-Q")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %-8s %10.4fJ %10.4fJ %10.5f %10.5f\n",
			r.Bench, r.Mode, r.Joules, r.OracleJoules, r.Quality, r.OracleQuality)
	}
}

// PrintDVFSStudy writes the DVFS-interaction ablation.
func PrintDVFSStudy(w io.Writer, rows []DVFSRow) {
	fmt.Fprintln(w, "Ablation: modeled DVFS interaction (first benchmark, Medium degree)")
	fmt.Fprintf(w, "%-6s %12s %12s %9s\n", "freq", "accurate", "GTB", "saving")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6.2f %11.4fJ %11.4fJ %8.1f%%\n", r.Freq, r.AccurateJ, r.ApproxJ, r.SavingPct)
	}
}

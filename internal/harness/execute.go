package harness

import (
	"time"

	"repro/sig"
)

// RunOptions configures a single Execute call.
type RunOptions struct {
	// Workers for the runtime (0 = GOMAXPROCS).
	Workers int
	// GTBWindow overrides the GTB buffer window (0 = runtime default).
	GTBWindow int
	// RecordDecisions collects the per-task decision log into the
	// Measurement (needed by the Table 2 analysis).
	RecordDecisions bool
}

// Measurement is the outcome of executing one (benchmark, mode, degree)
// cell of the evaluation.
type Measurement struct {
	Bench  string
	Mode   Mode
	Degree Degree
	// Applicable is false when the mode cannot express the benchmark's
	// approximation pattern (perforation on Kmeans and Fluidanimate).
	Applicable bool
	// Wall is the measured execution time, Joules the modeled energy and
	// Quality the benchmark's lower-is-better metric versus the
	// reference output.
	Wall    time.Duration
	Joules  float64
	Quality float64
	// TasksPerSec is the submitted-task throughput of the run
	// (submitted tasks / wall time), the scheduler-side speed metric.
	TasksPerSec float64
	// RequestedRatio is the ratio asked of the runtime; ProvidedRatio
	// the accurate fraction it delivered.
	RequestedRatio float64
	ProvidedRatio  float64
	// Report is the full modeled-energy report of the run.
	Report sig.Report
	// Decisions is the ordered decision log, populated only when
	// RunOptions.RecordDecisions is set.
	Decisions []sig.DecisionRecord
}

// Execute runs one cell of the evaluation: inst under the given mode and
// degree, measured against the precomputed reference output ref.
func Execute(spec Spec, inst Instance, ref any, mode Mode, degree Degree, opt RunOptions) (Measurement, error) {
	m := Measurement{Bench: spec.Name, Mode: mode, Degree: degree, Applicable: true}
	if mode == ModePerforation && !spec.Perforatable {
		m.Applicable = false
		return m, nil
	}
	kind, err := mode.PolicyKind()
	if err != nil {
		return m, err
	}
	ratio := 1.0
	if mode != ModeAccurate {
		ratio = spec.Ratios[degree]
	}
	rt, err := sig.New(sig.Config{
		Workers:         opt.Workers,
		Policy:          kind,
		GTBWindow:       opt.GTBWindow,
		RecordDecisions: opt.RecordDecisions,
	})
	if err != nil {
		return m, err
	}
	start := time.Now()
	out := inst.Run(rt, ratio)
	m.Wall = time.Since(start)
	if err := rt.Close(); err != nil {
		return m, err
	}
	rep := rt.Energy()
	st := rt.Stats()
	m.Joules = rep.Joules
	m.Report = rep
	m.Quality = inst.Quality(ref, out)
	m.RequestedRatio = ratio
	decided := st.Accurate + st.Approximate + st.Dropped
	if decided > 0 {
		m.ProvidedRatio = float64(st.Accurate) / float64(decided)
	}
	if m.Wall > 0 {
		m.TasksPerSec = float64(st.Submitted) / m.Wall.Seconds()
	}
	if opt.RecordDecisions {
		for _, g := range st.Groups {
			m.Decisions = append(m.Decisions, g.Decisions...)
		}
	}
	return m, nil
}

// executeAveraged repeats Execute reps times and averages the numeric
// fields, including the energy report's busy/wall profile (so downstream
// analytic studies rescale averaged measurements, not a single run);
// remaining fields come from the first repetition.
func executeAveraged(spec Spec, inst Instance, ref any, mode Mode, degree Degree, opt RunOptions, reps int) (Measurement, error) {
	var acc Measurement
	for i := 0; i < reps; i++ {
		m, err := Execute(spec, inst, ref, mode, degree, opt)
		if err != nil {
			return m, err
		}
		if !m.Applicable {
			return m, nil
		}
		if i == 0 {
			acc = m
			continue
		}
		acc.Wall += m.Wall
		acc.Joules += m.Joules
		acc.Quality += m.Quality
		acc.ProvidedRatio += m.ProvidedRatio
		acc.TasksPerSec += m.TasksPerSec
		acc.Report.Joules += m.Report.Joules
		acc.Report.Wall += m.Report.Wall
		acc.Report.Busy += m.Report.Busy
	}
	if reps > 1 {
		acc.Wall /= time.Duration(reps)
		acc.Joules /= float64(reps)
		acc.Quality /= float64(reps)
		acc.ProvidedRatio /= float64(reps)
		acc.TasksPerSec /= float64(reps)
		acc.Report.Joules /= float64(reps)
		acc.Report.Wall /= time.Duration(reps)
		acc.Report.Busy /= time.Duration(reps)
	}
	return acc, nil
}

package harness

import (
	"strings"
	"testing"
)

// TestPaceStudyGates pins the measured-time pacing acceptance gates: under a
// 4x cost-variance workload the cadence converges to within 25% of the true
// mean wave wall time in at most 16 waves, overruns are counted rather than
// ticks dropped, the RetryAfter hint lands within one measured wave of the
// observed fake-clock drain, and the whole study replays bit-identically.
func TestPaceStudyGates(t *testing.T) {
	res, err := PaceStudy(PaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("cadence did not converge by wave 16: ConvergedAt=%d final pace %.4g ms vs true mean %.4g ms",
			res.ConvergedAt, res.FinalPaceMs, res.TrueMeanMs)
	}
	if res.Overruns != res.OverrunsSeen {
		t.Fatalf("overrun totals %d disagree with per-report flags %d", res.Overruns, res.OverrunsSeen)
	}
	if res.Overruns == 0 {
		t.Fatal("study never overran — the nominal period was supposed to be half the true wall time")
	}
	if res.WavesRun != res.PaceCalls {
		t.Fatalf("waves run %d != pace calls %d: a tick was silently dropped", res.WavesRun, res.PaceCalls)
	}
	if !res.RetryWithinOneWave {
		t.Fatalf("RetryAfter %.4g ms not within one measured wave (%.4g ms) of drain %.4g ms",
			res.RetryAfterMs, res.MeasuredMs, res.DrainMs)
	}
	if res.RetryErrAfter >= res.RetryErrBefore {
		t.Fatalf("measured-period pricing error %.3f not better than configured-period error %.3f",
			res.RetryErrAfter, res.RetryErrBefore)
	}
	if res.ShedBoundMs <= res.ShedBoundNominalMs {
		t.Fatalf("measured-period shed bound %.4g ms should exceed the nominal-period one %.4g ms under overrun",
			res.ShedBoundMs, res.ShedBoundNominalMs)
	}
	if !res.ReplayIdentical {
		t.Fatal("fake-clock replay was not bit-identical")
	}
}

// TestPrintPaceStudy pins the artifact lines the CI grep gate consumes.
func TestPrintPaceStudy(t *testing.T) {
	res, err := PaceStudy(PaceConfig{Waves: 8})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintPaceStudy(&sb, res)
	out := sb.String()
	for _, want := range []string{
		"cadence converged: ",
		"overruns: ",
		"retry-after: ",
		"replay: bit-identical: ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("study output missing %q:\n%s", want, out)
		}
	}
}

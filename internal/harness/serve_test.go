package harness

import (
	"math"
	"strings"
	"testing"
)

// TestServeStudyShedsQualityUnderOverload gates the serving tentpole on
// the acceptance criteria: under the 4x overload step the admission
// controller degrades the provided ratio instead of queueing unboundedly
// (latency p99 bounded, nothing rejected), recovers within 8 waves after
// the step ends, and the modeled joules are bit-identical across runs.
func TestServeStudyShedsQualityUnderOverload(t *testing.T) {
	for _, backend := range []string{"sobel", "kmeans"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			cfg := ServeConfig{Scale: 0.1, Workers: 4, Backend: backend}
			res, err := ServeStudy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rejected != 0 {
				t.Errorf("%d requests rejected: overload must shed quality before requests", res.Rejected)
			}
			if res.PreStepRatio < 0.95 {
				t.Errorf("pre-step ratio %.3f, want ~1 under light load", res.PreStepRatio)
			}
			if res.MinStepRatio > res.PreStepRatio-0.3 {
				t.Errorf("ratio only fell to %.3f during the step (pre-step %.3f)", res.MinStepRatio, res.PreStepRatio)
			}
			if res.P99 > 6 {
				t.Errorf("open-loop p99 latency %d waves, want <= 6 (queue must stay bounded)", res.P99)
			}
			if res.RecoveredAfter < 0 || res.RecoveredAfter > 8 {
				t.Errorf("recovered after %d waves, want within 8 of the step ending", res.RecoveredAfter)
			}
			maxDepth := 0
			for _, row := range res.Rows {
				maxDepth = max(maxDepth, row.Depth)
			}
			if limit := 8 * res.BasePerWave; maxDepth > limit {
				t.Errorf("queue depth peaked at %d (> %d): shedding did not bound the backlog", maxDepth, limit)
			}
			// The stream's drop-only requests (no degraded body) must show
			// up as drops — charged zero modeled joules by the runtime.
			if res.Outcomes.Dropped == 0 {
				t.Error("no dropped outcomes: the drop-only tier was not exercised")
			}
			if res.Outcomes.Accurate+res.Outcomes.Degraded+res.Outcomes.Dropped != res.Outcomes.Completed {
				t.Errorf("outcome conservation broken: %+v", res.Outcomes)
			}
			// Closed loop: a saturating client population is served at a
			// degraded ratio with bounded latency.
			if res.ClosedRatio > 0.9 {
				t.Errorf("closed-loop ratio %.3f: %d clients should saturate the budget", res.ClosedRatio, res.Clients)
			}
			if res.ClosedP99 > 6 {
				t.Errorf("closed-loop p99 %d waves, want <= 6", res.ClosedP99)
			}

			// Bit-identical replay: the modeled joules of every wave and the
			// ratio trajectory are pure functions of the declared costs.
			res2, err := ServeStudy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(res.TotalJoules) != math.Float64bits(res2.TotalJoules) {
				t.Fatalf("total joules diverged across identical runs: %v vs %v", res.TotalJoules, res2.TotalJoules)
			}
			for w := range res.Rows {
				a, b := res.Rows[w], res2.Rows[w]
				if math.Float64bits(a.Joules) != math.Float64bits(b.Joules) || a.NextRatio != b.NextRatio || a.Admitted != b.Admitted {
					t.Fatalf("wave %d diverged: %+v vs %+v", w, a, b)
				}
			}
		})
	}
}

// TestServeStudyClampsDegenerateWindows: short streams and out-of-range
// step bounds must be clamped into the stream, never panic.
func TestServeStudyClampsDegenerateWindows(t *testing.T) {
	for _, cfg := range []ServeConfig{
		{Scale: 0.05, Workers: 1, Waves: 6, ClosedWaves: 2},                         // Waves < default StepAt
		{Scale: 0.05, Workers: 1, Waves: 1, ClosedWaves: 2},                         // degenerate stream
		{Scale: 0.05, Workers: 1, Waves: 10, StepAt: 20, ClosedWaves: 2},            // StepAt past the end
		{Scale: 0.05, Workers: 1, Waves: 10, StepAt: 4, StepEnd: 3, ClosedWaves: 2}, // inverted step
	} {
		res, err := ServeStudy(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.StepAt < 1 || res.StepAt >= len(res.Rows) || res.StepEnd <= res.StepAt || res.StepEnd > len(res.Rows) {
			t.Errorf("%+v: step [%d,%d) outside the %d-wave stream", cfg, res.StepAt, res.StepEnd, len(res.Rows))
		}
	}
}

// TestServeStudyPrinterAndBackends covers the flag-facing surface: backend
// resolution and the printer's summary lines.
func TestServeStudyPrinterAndBackends(t *testing.T) {
	if _, err := ServeBackendByName("nope", 1); err == nil {
		t.Error("unknown backend accepted")
	}
	res, err := ServeStudy(ServeConfig{Scale: 0.05, Workers: 2, Waves: 10, StepAt: 3, StepEnd: 6, ClosedWaves: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	PrintServeStudy(&sb, res)
	out := sb.String()
	for _, want := range []string{"Serve study (sobel backend)", "open loop:", "closed loop:", "commanded ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q:\n%s", want, out)
		}
	}
}

package harness

import (
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"time"

	"repro/sig/adapt"
	"repro/sig/serve"
)

// PaceStudy measures the serving layer's measured-time loop against its
// contracts: the pacer's cadence converges to the true mean wave wall time
// (not the configured guess), every overrun is counted (the wave count
// tracks pace calls exactly — no silently coalesced ticks), the wave
// budget is re-derived from the measured period, and the queue-full
// RetryAfter hint — priced in measured-period units — lands within one
// wave of the observed fake-clock drain time. The whole study runs on a
// serve.FakeClock: request handlers advance it by their declared cost
// (index arithmetic), so wall time is exactly the work admitted and two
// runs are bit-identical.

// paceCosts are the four declared cost classes (nanoseconds of work) the
// study's traffic cycles through — a 4x cost variance, the regime the
// paper's variable-cost kernels put the server in.
var paceCosts = [4]float64{50_000, 100_000, 150_000, 200_000}

// paceOverhead is the fixed per-wave wall overhead (ns) the declared costs
// don't capture — the task-launch/teardown time every wave pays regardless
// of its batch. It is what pushes the true wave wall above the sum of
// declared work, so a pacer trusting the configured period alone is wrong
// by a constant factor; the measured budget settles at offered+overhead,
// which is also what keeps the admission queue bounded.
const paceOverhead = 250 * time.Microsecond

// PaceConfig parameterizes PaceStudy. Zero fields take defaults.
type PaceConfig struct {
	// BasePerWave is the per-wave arrival count (default 8).
	BasePerWave int
	// Waves is the cadence phase length (default 24).
	Waves int
	// WavePeriod is the deliberately wrong configured period the pacer
	// must correct away from (default 500µs — half the true mean wall).
	WavePeriod time.Duration
}

func (c PaceConfig) withDefaults() PaceConfig {
	if c.BasePerWave <= 0 {
		c.BasePerWave = 8
	}
	if c.Waves <= 0 {
		c.Waves = 24
	}
	if c.WavePeriod <= 0 {
		c.WavePeriod = 500 * time.Microsecond
	}
	return c
}

// PaceWaveRow is one paced wave's trajectory sample.
type PaceWaveRow struct {
	Wave     int
	Admitted int
	Depth    int
	WallMs   float64
	PaceMs   float64
	BudgetK  float64 // modeled capacity after the wave, in kilo-cost-units
	Overrun  bool
}

// PaceResult is the outcome of the pace study.
type PaceResult struct {
	BasePerWave int
	Waves       int
	NominalMs   float64 // the configured (wrong) WavePeriod
	TrueMeanMs  float64 // mean offered work per wave — the honest cadence
	Rows        []PaceWaveRow

	// Cadence section: ConvergedAt is the first wave (1-based) from which
	// the cadence stays within 25% of TrueMeanMs for the rest of the
	// phase (-1 = never); Converged additionally demands ConvergedAt <= 16.
	ConvergedAt int
	Converged   bool
	FinalPaceMs float64
	MeasuredMs  float64 // MeasuredPeriod at the end of the study

	// Overrun accounting: Overruns (Totals) must equal OverrunsSeen
	// (per-report flags) and WavesRun must equal PaceCalls — every late
	// wave counted, none dropped.
	Overruns     int64
	OverrunsSeen int64
	WavesRun     int64
	PaceCalls    int64

	// Seconds-true SLO bounds: the secant-law reaction bounds (full
	// commanded range, default gains) priced at the measured period vs the
	// configured one — the factor the nominal-period "seconds" were off by.
	ShedBoundMs        float64
	ShedBoundNominalMs float64
	RecoverBoundMs     float64

	// RetryAfter honesty: the measured-period hint vs the observed
	// fake-clock drain of the backlog it priced, and the configured-period
	// price pre-fix code would have returned for the same waves.
	RetryAfterMs       float64
	DrainMs            float64
	RetryBeforeMs      float64
	RetryErrAfter      float64 // |RetryAfter−Drain|/Drain
	RetryErrBefore     float64
	RetryWithinOneWave bool

	// ReplayIdentical: the whole study, re-run from scratch on a fresh
	// fake clock, reproduced every number above bit-identically.
	ReplayIdentical bool
}

// paceClass picks request i's cost class: a multiplicative hash over the
// request index, so the per-wave class mix varies wave to wave (the cost
// variance the pacer must average over) while staying pure index
// arithmetic.
func paceClass(i int) int {
	return int((uint32(i) * 2654435761) >> 30)
}

// paceRequest is the i-th study request: premium significance (quality
// shedding is the other studies' subject — here outcomes must not change
// the work), declared cost by class, and a handler advancing the fake
// clock by exactly that cost.
func paceRequest(fc *serve.FakeClock, i int) serve.Request {
	cost := paceCosts[paceClass(i)]
	return serve.Request{
		Significance: 1.0,
		Handler:      func() { fc.Advance(time.Duration(cost)) },
		CostAccurate: cost,
	}
}

// PaceStudy runs the measured-time pacing study twice and verifies the
// second run reproduces the first bit-identically (ReplayIdentical).
func PaceStudy(cfg PaceConfig) (PaceResult, error) {
	cfg = cfg.withDefaults()
	res, err := cfg.run()
	if err != nil {
		return res, err
	}
	replay, err := cfg.run()
	if err != nil {
		return res, err
	}
	res.ReplayIdentical = reflect.DeepEqual(res, replay)
	return res, nil
}

func (cfg PaceConfig) run() (PaceResult, error) {
	fc := serve.NewFakeClock()
	s, err := serve.New(serve.Config{
		Workers:    1, // one worker: measured period × workers = admitted work, exactly
		MinRatio:   1, // no quality shedding: backlog pricing is exact at ratio 1
		QueueLimit: 4 * cfg.BasePerWave,
		WavePeriod: cfg.WavePeriod,
		WaveBudget: 4 * float64(cfg.WavePeriod), // the configured guess the pacer must outgrow
		Clock:      fc,
	})
	if err != nil {
		return PaceResult{}, err
	}
	defer s.Close()

	res := PaceResult{
		BasePerWave: cfg.BasePerWave,
		Waves:       cfg.Waves,
		NominalMs:   durMs(cfg.WavePeriod),
	}
	seq := 0
	wave := func(arrivals int) (serve.WaveReport, error) {
		// The per-wave overhead probe: near-zero declared cost, fixed wall
		// advance. When the queue is at its limit (the burst phase) the
		// probe is shed and that wave simply runs without its overhead —
		// a fixed-cost loss well inside the one-wave honesty gate.
		var oe *serve.OverloadError
		if _, err := s.Submit(serve.Request{
			Significance: 1.0,
			Handler:      func() { fc.Advance(paceOverhead) },
			CostAccurate: 1000,
		}); err != nil && !errors.As(err, &oe) {
			return serve.WaveReport{}, fmt.Errorf("pace study overhead probe: %w", err)
		}
		for i := 0; i < arrivals; i++ {
			if _, err := s.Submit(paceRequest(fc, seq)); err != nil {
				return serve.WaveReport{}, fmt.Errorf("pace study submit %d: %w", seq, err)
			}
			seq++
		}
		rep, delay := s.PaceWave()
		fc.Advance(delay) // the pump's sleep, in fake time
		res.PaceCalls++
		if rep.Overrun {
			res.OverrunsSeen++
		}
		return rep, nil
	}

	// Cadence phase: BasePerWave arrivals per wave; the wave's true wall is
	// their declared cost plus the fixed overhead the probe injects.
	var offered float64
	for w := 0; w < cfg.Waves; w++ {
		offered += float64(paceOverhead)
		for i := 0; i < cfg.BasePerWave; i++ {
			offered += paceCosts[paceClass(seq+i)]
		}
		rep, err := wave(cfg.BasePerWave)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, PaceWaveRow{
			Wave:     w + 1,
			Admitted: rep.Admitted,
			Depth:    rep.Depth,
			WallMs:   durMs(rep.WallTime),
			PaceMs:   durMs(s.PacePeriod()),
			BudgetK:  rep.Budget / 1000,
			Overrun:  rep.Overrun,
		})
	}
	res.TrueMeanMs = offered / float64(cfg.Waves) / 1e6
	res.ConvergedAt = -1
	for w := len(res.Rows) - 1; w >= 0; w-- {
		if math.Abs(res.Rows[w].PaceMs-res.TrueMeanMs) > 0.25*res.TrueMeanMs {
			break
		}
		res.ConvergedAt = w + 1
	}
	res.Converged = res.ConvergedAt > 0 && res.ConvergedAt <= 16

	// Drain the cadence phase's leftovers so the burst below is the whole
	// backlog the RetryAfter hint prices.
	for s.Depth() > 0 {
		if _, err := wave(0); err != nil {
			return res, err
		}
	}

	// RetryAfter honesty phase: fill the queue to rejection, then measure
	// how long the backlog actually takes to drain in fake time.
	var oe *serve.OverloadError
	for i := 0; ; i++ {
		_, err := s.Submit(paceRequest(fc, seq))
		if err == nil {
			seq++
			continue
		}
		if !errors.As(err, &oe) {
			return res, fmt.Errorf("pace study burst: want OverloadError, got %w", err)
		}
		break
	}
	effective := s.MeasuredPeriod()
	if p := s.PacePeriod(); p > effective {
		effective = p
	}
	// The hint is waves × effective period; the same waves at the
	// configured period is what pre-fix code told clients.
	pricedWaves := int64(oe.RetryAfter / effective)
	res.RetryAfterMs = durMs(oe.RetryAfter)
	res.RetryBeforeMs = durMs(time.Duration(pricedWaves) * cfg.WavePeriod)
	oneWave := s.MeasuredPeriod()
	start := fc.Now()
	for s.Depth() > 0 {
		if _, err := wave(0); err != nil {
			return res, err
		}
	}
	drain := fc.Now().Sub(start)
	res.DrainMs = durMs(drain)
	res.RetryErrAfter = math.Abs(res.RetryAfterMs-res.DrainMs) / res.DrainMs
	res.RetryErrBefore = math.Abs(res.RetryBeforeMs-res.DrainMs) / res.DrainMs
	if diff := oe.RetryAfter - drain; diff <= oneWave && -diff <= oneWave {
		res.RetryWithinOneWave = true
	}

	res.FinalPaceMs = durMs(s.PacePeriod())
	res.MeasuredMs = durMs(s.MeasuredPeriod())
	res.ShedBoundMs = durMs(adapt.ShedBoundSeconds(1.0, adapt.DefaultMaxStep, s.MeasuredPeriod()))
	res.ShedBoundNominalMs = durMs(adapt.ShedBoundSeconds(1.0, adapt.DefaultMaxStep, cfg.WavePeriod))
	res.RecoverBoundMs = durMs(adapt.RecoverBoundSeconds(1.0, adapt.DefaultGain, adapt.DefaultMaxStep, 0.4, s.MeasuredPeriod()))
	tot := s.Totals()
	res.Overruns = tot.Overruns
	res.WavesRun = tot.Waves
	return res, nil
}

// durMs renders a duration in fractional milliseconds.
func durMs(d time.Duration) float64 { return float64(d) / 1e6 }

// PrintPaceStudy renders the study: the per-wave cadence trajectory and the
// summary lines the CI gate and BENCH json consume.
func PrintPaceStudy(w io.Writer, r PaceResult) {
	fmt.Fprintf(w, "pace study (base %d req/wave, 4x cost variance, nominal period %.3g ms, true mean wall %.4g ms)\n",
		r.BasePerWave, r.NominalMs, r.TrueMeanMs)
	fmt.Fprintf(w, "%-5s %5s %6s %8s %8s %9s %8s\n", "wave", "adm", "depth", "wall ms", "pace ms", "budget k", "overrun")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-5d %5d %6d %8.3f %8.3f %9.1f %8v\n",
			row.Wave, row.Admitted, row.Depth, row.WallMs, row.PaceMs, row.BudgetK, row.Overrun)
	}
	fmt.Fprintf(w, "cadence converged: %v (wave %d, final pace %.4g ms vs true mean %.4g ms, measured EWMA %.4g ms)\n",
		r.Converged, r.ConvergedAt, r.FinalPaceMs, r.TrueMeanMs, r.MeasuredMs)
	fmt.Fprintf(w, "overruns: %d counted (%d flagged in reports), waves run %d of %d pace calls — 0 dropped ticks\n",
		r.Overruns, r.OverrunsSeen, r.WavesRun, r.PaceCalls)
	fmt.Fprintf(w, "retry-after: measured-period price %.4g ms vs observed drain %.4g ms (within one wave: %v); configured-period price %.4g ms (error %.0f%% -> %.0f%%)\n",
		r.RetryAfterMs, r.DrainMs, r.RetryWithinOneWave, r.RetryBeforeMs, 100*r.RetryErrBefore, 100*r.RetryErrAfter)
	fmt.Fprintf(w, "seconds-true bounds: shed %.4g ms at the measured period (%.4g ms at nominal), recover %.4g ms\n",
		r.ShedBoundMs, r.ShedBoundNominalMs, r.RecoverBoundMs)
	fmt.Fprintf(w, "replay: bit-identical: %v\n", r.ReplayIdentical)
}

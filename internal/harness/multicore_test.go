package harness

import (
	"runtime"
	"strings"
	"testing"
)

// TestMulticoreStudy runs a miniature GOMAXPROCS sweep: every row must
// produce live numbers for all three measurements, the process's
// GOMAXPROCS must be restored afterwards, and the host shape must be
// populated — that is what makes a BENCH_sig.json entry attributable to
// real hardware.
func TestMulticoreStudy(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	res, err := MulticoreStudy(MulticoreConfig{
		Procs:       []int{1, 2},
		SubmitTasks: 2048,
		Reps:        1,
		ServeWaves:  6,
		Shard:       ShardStudyConfig{Burst: 128, SpinIters: 500, Reps: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Fatalf("GOMAXPROCS left at %d, want %d restored", after, before)
	}
	if res.Host.CPUs < 1 || res.Host.GoVersion == "" {
		t.Errorf("host shape incomplete: %+v", res.Host)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SubmitTput <= 0 || row.BurstTput <= 0 || row.AdmitNsPerReq <= 0 {
			t.Errorf("procs %d: degenerate measurements %+v", row.Procs, row)
		}
	}
	var sb strings.Builder
	PrintMulticoreStudy(&sb, res)
	for _, want := range []string{"Multicore study", "gomaxprocs", "admit ns/req"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("printer output missing %q:\n%s", want, sb.String())
		}
	}
}

package harness

import (
	"math"
	"runtime"
	"strings"
	"testing"
)

// TestShardStudyScales is the sharding acceptance gate: submitting the
// reference burst into a 4-shard fleet must be at least 1.5x faster than
// into one shard of the same per-shard resources (in practice the gap is
// an order of magnitude: one shard serializes the producer behind its
// queue's drain, four shards absorb the burst across their aggregate
// capacity), and the merged modeled joules must be bit-identical across
// fleet sizes and to the router-free runtime golden. The same numbers are
// published under BENCH_sig.json's "shard" key by `sigbench shard`.
func TestShardStudyScales(t *testing.T) {
	res, err := ShardStudy(ShardStudyConfig{ShardCounts: []int{1, SpeedupShards}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 1.5 {
		// The speedup is capacity-bound (four shards absorb the burst
		// across their aggregate queues), so it holds even on one CPU —
		// but only while each shard's worker can actually run. With
		// GOMAXPROCS above the physical core count (the CI race matrix on
		// a small host, or a shared 1-vCPU box) the fleet timeshares
		// oversubscribed and the measurement premise is gone.
		if runtime.GOMAXPROCS(0) > runtime.NumCPU() {
			t.Skipf("speedup %.2fx with GOMAXPROCS %d > %d CPUs: oversubscribed host, scaling not measurable",
				res.Speedup, runtime.GOMAXPROCS(0), runtime.NumCPU())
		}
		t.Errorf("burst submit throughput at %d shards only %.2fx of 1 shard, want >= 1.5x",
			SpeedupShards, res.Speedup)
	}
	if !res.JoulesAdditive {
		t.Error("merged joules diverged across fleet sizes: shard-summed energy must be bit-identical to the single-runtime golden")
	}
	for _, row := range res.Rows {
		if math.Float64bits(row.Joules) != math.Float64bits(res.GoldenJoules) {
			t.Errorf("%d shards: %.6f J vs golden %.6f J", row.Shards, row.Joules, res.GoldenJoules)
		}
		if row.IngestTput <= 0 || row.TotalTput <= 0 {
			t.Errorf("%d shards: degenerate throughput %+v", row.Shards, row)
		}
	}
	// The placement sweep must keep the merged ratio floor at every
	// placement (GTB(max) tracks the request to within per-shard wave
	// rounding) and round-robin must split the stream exactly evenly.
	for _, p := range res.Placements {
		if p.Provided < p.Requested-0.01 {
			t.Errorf("%v: merged provided ratio %.3f under requested %.3f", p.Placement, p.Provided, p.Requested)
		}
	}
	if rr := res.Placements[0]; rr.MinShare != rr.MaxShare {
		t.Errorf("round-robin shares %d..%d, want an exact split", rr.MinShare, rr.MaxShare)
	}

	var sb strings.Builder
	PrintShardStudy(&sb, res)
	for _, want := range []string{"Shard study", "speedup", "placement sweep", "bit-identical"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("printer output missing %q:\n%s", want, sb.String())
		}
	}
}

// TestServeStudySharded is the sharded overload scenario of the serving
// study: the same 4x step, served by a 4-shard fleet under the
// hierarchical admission controller, must shed quality before requests and
// replay bit-identically — merged joules included.
func TestServeStudySharded(t *testing.T) {
	cfg := ServeConfig{Scale: 0.1, Workers: 1, Shards: 4, Backend: "sobel"}
	res, err := ServeStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Errorf("result records %d shards, want 4", res.Shards)
	}
	if res.Rejected != 0 {
		t.Errorf("%d requests rejected: the sharded fleet must shed quality first", res.Rejected)
	}
	if res.MinStepRatio > res.PreStepRatio-0.3 {
		t.Errorf("ratio only fell to %.3f during the step (pre-step %.3f)", res.MinStepRatio, res.PreStepRatio)
	}
	if res.RecoveredAfter < 0 || res.RecoveredAfter > 8 {
		t.Errorf("recovered after %d waves, want within 8", res.RecoveredAfter)
	}
	if res.P99 > 6 {
		t.Errorf("open-loop p99 latency %d waves, want <= 6", res.P99)
	}
	if res.Outcomes.Accurate+res.Outcomes.Degraded+res.Outcomes.Dropped != res.Outcomes.Completed {
		t.Errorf("outcome conservation broken across shards: %+v", res.Outcomes)
	}
	res2, err := ServeStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.TotalJoules) != math.Float64bits(res2.TotalJoules) {
		t.Fatalf("sharded total joules diverged across identical runs: %v vs %v", res.TotalJoules, res2.TotalJoules)
	}
	for w := range res.Rows {
		a, b := res.Rows[w], res2.Rows[w]
		if math.Float64bits(a.Joules) != math.Float64bits(b.Joules) || a.NextRatio != b.NextRatio || a.Admitted != b.Admitted {
			t.Fatalf("sharded wave %d diverged: %+v vs %+v", w, a, b)
		}
	}
	var sb strings.Builder
	PrintServeStudy(&sb, res)
	if !strings.Contains(sb.String(), "4 shards") {
		t.Errorf("printer does not mention the fleet:\n%s", sb.String())
	}
}

package harness

import (
	"os"
	"time"

	"repro/internal/bench/sobel"
	"repro/internal/imaging"
	"repro/sig"
)

// Fig1 regenerates the paper's Figure 1: the Sobel output as a quadrant
// mosaic — accurate (top-left), Mild (top-right), Medium (bottom-left) and
// Aggressive (bottom-right) under the GTB max-buffering policy — written as
// a PGM to path. It returns the PSNR per degree.
func Fig1(path string, scale float64, workers int) (map[Degree]float64, error) {
	return sobelMosaic(path, scale, workers, sig.PolicyGTBMaxBuffer)
}

// Fig3 is the same mosaic under loop perforation (Figure 3): dropped rows
// stay black, showing why significance-blind dropping degrades faster.
func Fig3(path string, scale float64, workers int) (map[Degree]float64, error) {
	return sobelMosaic(path, scale, workers, sig.PolicyPerforation)
}

func sobelMosaic(path string, scale float64, workers int, kind sig.PolicyKind) (map[Degree]float64, error) {
	spec, _ := SpecByName("Sobel")
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	p := sobel.DefaultParams()
	p.W, p.H = scaled(p.W, scale, 64), scaled(p.H, scale, 64)
	app := sobel.New(p)
	ref := app.Sequential()
	psnrs := make(map[Degree]float64, 3)
	outs := make(map[Degree]*imaging.Image, 3)
	for _, d := range Degrees() {
		rt, err := sig.New(sig.Config{Workers: workers, Policy: kind})
		if err != nil {
			return nil, err
		}
		out := app.Run(rt, spec.Ratios[d])
		if err := rt.Close(); err != nil {
			return nil, err
		}
		psnrs[d] = app.PSNR(ref, out)
		outs[d] = out
	}
	mosaic, err := imaging.Quadrants(ref, outs[Mild], outs[Medium], outs[Aggressive])
	if err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := mosaic.WritePGM(f); err != nil {
		return nil, err
	}
	return psnrs, f.Close()
}

// Fig2Row is one cell of Figure 2: a benchmark under one policy at one
// degree.
type Fig2Row = Measurement

// Fig2 runs the quality/energy/time comparison of Figure 2 — every
// benchmark of the subset under every policy at every degree — streaming
// each measured row to emit as it completes.
func Fig2(opt Options, emit func(Fig2Row)) error {
	benches, err := subset(opt)
	if err != nil {
		return err
	}
	for _, spec := range benches {
		inst := spec.Make(opt.scale())
		ref := inst.Reference()
		// The accurate baseline ignores the degree (Execute pins its
		// ratio to 1.0), so run it once and re-emit it per degree
		// instead of repeating the most expensive run three times.
		var accurate *Measurement
		for _, d := range Degrees() {
			for _, mode := range Modes() {
				if mode == ModeAccurate && accurate != nil {
					m := *accurate
					m.Degree = d
					emit(m)
					continue
				}
				m, err := executeAveraged(spec, inst, ref, mode, d,
					RunOptions{Workers: opt.Workers}, opt.reps())
				if err != nil {
					return err
				}
				if mode == ModeAccurate {
					accurate = &m
				}
				emit(m)
			}
		}
	}
	return nil
}

// Fig4Row is the runtime-overhead measurement for one benchmark: the
// all-accurate runtime execution time at several worker counts, normalized
// to the sequential (runtime-free) time.
type Fig4Row struct {
	Bench          string
	SequentialWall time.Duration
	Workers        []int
	Normalized     []float64
}

// Fig4 measures the runtime overhead experiment of Figure 4.
func Fig4(opt Options) ([]Fig4Row, error) {
	benches, err := subset(opt)
	if err != nil {
		return nil, err
	}
	workerCounts := []int{1, 2, 4}
	rows := make([]Fig4Row, 0, len(benches))
	for _, spec := range benches {
		// Warm caches and code paths on a throwaway instance so the
		// timed sequential baseline is not penalized for first-touch
		// costs the runtime runs won't pay either, then keep the best
		// of reps timings to shed preemption outliers.
		spec.Make(opt.scale()).Reference()
		inst := spec.Make(opt.scale())
		start := time.Now()
		ref := inst.Reference()
		seq := time.Since(start)
		for r := 1; r < opt.reps(); r++ {
			fresh := spec.Make(opt.scale()) // construction stays untimed
			start = time.Now()
			fresh.Reference()
			if d := time.Since(start); d < seq {
				seq = d
			}
		}
		if seq <= 0 {
			seq = time.Nanosecond
		}
		row := Fig4Row{Bench: spec.Name, SequentialWall: seq, Workers: workerCounts}
		for _, w := range workerCounts {
			// Best-of-reps on the runtime side too, matching the
			// sequential baseline — otherwise one preempted rep
			// would inflate the overhead ratio asymmetrically.
			var best time.Duration
			for r := 0; r < opt.reps(); r++ {
				m, err := Execute(spec, inst, ref, ModeAccurate, Medium,
					RunOptions{Workers: w})
				if err != nil {
					return nil, err
				}
				if r == 0 || m.Wall < best {
					best = m.Wall
				}
			}
			row.Normalized = append(row.Normalized, float64(best)/float64(seq))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

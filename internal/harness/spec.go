// Package harness is the evaluation layer: it maps every figure and table of
// the paper's evaluation (section 4) onto the Go reproduction, exposing a
// benchmark Spec registry, a policy/degree Execute primitive and the
// Table1/Fig1..Fig4/Table2 generators plus the ablation studies that
// cmd/sigbench and the top-level benchmarks drive.
package harness

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bench/dct"
	"repro/internal/bench/fluidanimate"
	"repro/internal/bench/jacobi"
	"repro/internal/bench/kmeans"
	"repro/internal/bench/mc"
	"repro/internal/bench/sobel"
	"repro/internal/imaging"
	"repro/sig"
)

// Mode names an accuracy policy of the runtime in evaluation output.
type Mode string

const (
	ModeAccurate    Mode = "Accurate"
	ModeGTB         Mode = "GTB"
	ModeGTBMax      Mode = "GTB(max)"
	ModeLQH         Mode = "LQH"
	ModePerforation Mode = "Perforation"
)

// Modes lists every mode in canonical evaluation order.
func Modes() []Mode {
	return []Mode{ModeAccurate, ModeGTB, ModeGTBMax, ModeLQH, ModePerforation}
}

// PolicyKind maps the mode onto the runtime policy it exercises.
func (m Mode) PolicyKind() (sig.PolicyKind, error) {
	switch m {
	case ModeAccurate:
		return sig.PolicyAccurate, nil
	case ModeGTB:
		return sig.PolicyGTB, nil
	case ModeGTBMax:
		return sig.PolicyGTBMaxBuffer, nil
	case ModeLQH:
		return sig.PolicyLQH, nil
	case ModePerforation:
		return sig.PolicyPerforation, nil
	}
	return 0, fmt.Errorf("harness: unknown mode %q", string(m))
}

// Degree is an approximation aggressiveness level; each benchmark maps
// degrees to concrete accuracy ratios in its Spec.
type Degree string

const (
	Mild       Degree = "Mild"
	Medium     Degree = "Medium"
	Aggressive Degree = "Aggressive"
)

// Degrees lists the degrees in canonical order.
func Degrees() []Degree { return []Degree{Mild, Medium, Aggressive} }

// Instance is one sized benchmark problem, ready to run.
type Instance interface {
	// Reference computes (and may cache) the fully accurate output.
	Reference() any
	// Run executes the benchmark on rt asking for the given accuracy
	// ratio and returns its output.
	Run(rt *sig.Runtime, ratio float64) any
	// Quality evaluates the benchmark's lower-is-better quality metric
	// of out against ref.
	Quality(ref, out any) float64
	// Tasks estimates the tasks submitted per run (or per wave, for
	// iterative benchmarks).
	Tasks() int
}

// Spec describes one benchmark of the catalog (the rows of Table 1).
type Spec struct {
	Name              string
	Domain            string
	TaskDecomposition string
	Degradation       string
	QualityMetric     string
	// Perforatable reports whether the loop-perforation baseline can
	// express this benchmark's approximation pattern at all.
	Perforatable bool
	// Ratios maps each degree to the accuracy ratio it requests.
	Ratios map[Degree]float64
	// Make sizes an instance; scale 1.0 is evaluation scale.
	Make func(scale float64) Instance
}

// Options configures the multi-benchmark experiment drivers.
type Options struct {
	// Scale in (0,1]: 1.0 reproduces evaluation-size problems.
	Scale float64
	// Workers for the runtime (0 = GOMAXPROCS).
	Workers int
	// Repetitions to average measurements over (0 = 1).
	Repetitions int
	// Benches restricts the benchmark subset (nil = all).
	Benches []string
}

func (o Options) scale() float64 {
	if o.Scale <= 0 || o.Scale > 1 {
		return 1
	}
	return o.Scale
}

func (o Options) reps() int { return max(o.Repetitions, 1) }

// scaled returns round(base*scale) clamped below by lo.
func scaled(base int, scale float64, lo int) int {
	return max(int(math.Round(float64(base)*scale)), lo)
}

// specs returns the registry in canonical (Table 1) order.
func specs() []Spec {
	return []Spec{
		{
			Name:              "Sobel",
			Domain:            "Image filter",
			TaskDecomposition: "one task per output row",
			Degradation:       "2-point gradient approximation",
			QualityMetric:     "1/PSNR",
			Perforatable:      true,
			Ratios:            map[Degree]float64{Mild: 0.8, Medium: 0.3, Aggressive: 0.0},
			Make: func(scale float64) Instance {
				p := sobel.DefaultParams()
				// The floor keeps task bodies heavy enough that modeled
				// energy is dominated by busy time, not wall jitter.
				p.W, p.H = scaled(p.W, scale, 256), scaled(p.H, scale, 256)
				return &sobelInstance{app: sobel.New(p)}
			},
		},
		{
			Name:              "DCT",
			Domain:            "Image compression",
			TaskDecomposition: "one task per block row and frequency band",
			Degradation:       "drop high-frequency bands",
			QualityMetric:     "1/PSNR",
			Perforatable:      true,
			Ratios:            map[Degree]float64{Mild: 0.7, Medium: 0.4, Aggressive: 0.15},
			Make: func(scale float64) Instance {
				p := dct.DefaultParams()
				p.W, p.H = scaled(p.W, scale, 256), scaled(p.H, scale, 256)
				return &dctInstance{app: dct.New(p)}
			},
		},
		{
			Name:              "MC",
			Domain:            "Monte Carlo PDE solver",
			TaskDecomposition: "one task per random-walk batch",
			Degradation:       "drop low-significance walk batches",
			QualityMetric:     "relative error (%)",
			Perforatable:      true,
			Ratios:            map[Degree]float64{Mild: 0.8, Medium: 0.5, Aggressive: 0.25},
			Make: func(scale float64) Instance {
				p := mc.DefaultParams()
				p.Points = scaled(p.Points, scale, 8)
				p.WalksPerBatch = scaled(p.WalksPerBatch, scale, 50)
				return &mcInstance{app: mc.New(p)}
			},
		},
		{
			Name:              "Kmeans",
			Domain:            "Clustering",
			TaskDecomposition: "one task per observation chunk per iteration",
			Degradation:       "reuse previous chunk assignment",
			QualityMetric:     "relative inertia error (%)",
			Perforatable:      false,
			Ratios:            map[Degree]float64{Mild: 0.8, Medium: 0.6, Aggressive: 0.4},
			Make: func(scale float64) Instance {
				p := kmeans.DefaultParams()
				p.N = scaled(p.N, scale, p.K*16)
				p.Chunk = max(p.N/64, 64)
				return &kmeansInstance{app: kmeans.New(p)}
			},
		},
		{
			Name:              "Jacobi",
			Domain:            "Iterative linear solver",
			TaskDecomposition: "one task per row block per sweep",
			Degradation:       "update every other row of a block",
			QualityMetric:     "relative L2 error (%)",
			Perforatable:      true,
			Ratios:            map[Degree]float64{Mild: 0.8, Medium: 0.5, Aggressive: 0.2},
			Make: func(scale float64) Instance {
				p := jacobi.DefaultParams()
				p.N = scaled(p.N, scale, 64)
				return &jacobiInstance{app: jacobi.New(p)}
			},
		},
		{
			Name:              "Fluidanimate",
			Domain:            "Particle simulation (SPH)",
			TaskDecomposition: "one task per particle chunk per time step",
			Degradation:       "gravity-only steps at alternating ratio",
			QualityMetric:     "mean position error (%)",
			Perforatable:      false,
			Ratios:            map[Degree]float64{Mild: 0.5, Medium: 0.25, Aggressive: 0.125},
			Make: func(scale float64) Instance {
				p := fluidanimate.DefaultParams()
				p.N = scaled(p.N, scale, 256)
				return &fluidInstance{app: fluidanimate.New(p)}
			},
		},
	}
}

// Specs returns the full registry.
func Specs() []Spec { return specs() }

// SpecByName finds a benchmark case-insensitively.
func SpecByName(name string) (Spec, bool) {
	for _, s := range specs() {
		if strings.EqualFold(s.Name, name) {
			return s, true
		}
	}
	return Spec{}, false
}

// subset resolves opt.Benches against the registry, defaulting to all.
func subset(opt Options) ([]Spec, error) {
	all := specs()
	if len(opt.Benches) == 0 {
		return all, nil
	}
	var out []Spec
	for _, name := range opt.Benches {
		s, ok := SpecByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("harness: unknown benchmark %q", name)
		}
		out = append(out, s)
	}
	return out, nil
}

// Per-kernel Instance adapters.

type sobelInstance struct {
	app *sobel.App
	ref *imaging.Image
}

func (s *sobelInstance) Reference() any {
	if s.ref == nil {
		s.ref = s.app.Sequential()
	}
	return s.ref
}
func (s *sobelInstance) Run(rt *sig.Runtime, ratio float64) any { return s.app.Run(rt, ratio) }
func (s *sobelInstance) Quality(ref, out any) float64 {
	return s.app.Quality(ref.(*imaging.Image), out.(*imaging.Image))
}
func (s *sobelInstance) Tasks() int { return s.app.Tasks() }

type dctInstance struct {
	app *dct.App
	ref *imaging.Image
}

func (s *dctInstance) Reference() any {
	if s.ref == nil {
		s.ref = s.app.Sequential()
	}
	return s.ref
}
func (s *dctInstance) Run(rt *sig.Runtime, ratio float64) any { return s.app.Run(rt, ratio) }
func (s *dctInstance) Quality(ref, out any) float64 {
	return s.app.Quality(ref.(*imaging.Image), out.(*imaging.Image))
}
func (s *dctInstance) Tasks() int { return s.app.Tasks() }

type mcInstance struct {
	app *mc.App
	ref []float64
}

func (s *mcInstance) Reference() any {
	if s.ref == nil {
		s.ref = s.app.Sequential()
	}
	return s.ref
}
func (s *mcInstance) Run(rt *sig.Runtime, ratio float64) any { return s.app.Run(rt, ratio) }
func (s *mcInstance) Quality(ref, out any) float64 {
	return s.app.Quality(ref.([]float64), out.([]float64))
}
func (s *mcInstance) Tasks() int { return s.app.Tasks() }

type kmeansInstance struct {
	app *kmeans.App
	ref *kmeans.Result
}

func (s *kmeansInstance) Reference() any {
	if s.ref == nil {
		r := s.app.Sequential()
		s.ref = &r
	}
	return *s.ref
}
func (s *kmeansInstance) Run(rt *sig.Runtime, ratio float64) any { return s.app.Run(rt, ratio) }
func (s *kmeansInstance) Quality(ref, out any) float64 {
	return s.app.Quality(ref.(kmeans.Result), out.(kmeans.Result))
}
func (s *kmeansInstance) Tasks() int { return s.app.Tasks() }

type jacobiInstance struct {
	app *jacobi.App
	ref []float64
}

func (s *jacobiInstance) Reference() any {
	if s.ref == nil {
		s.ref = s.app.Sequential()
	}
	return s.ref
}
func (s *jacobiInstance) Run(rt *sig.Runtime, ratio float64) any { return s.app.Run(rt, ratio) }
func (s *jacobiInstance) Quality(ref, out any) float64 {
	return s.app.Quality(ref.([]float64), out.([]float64))
}
func (s *jacobiInstance) Tasks() int { return s.app.Tasks() }

type fluidInstance struct {
	app *fluidanimate.App
	ref *fluidanimate.State
}

func (s *fluidInstance) Reference() any {
	if s.ref == nil {
		r := s.app.Sequential()
		s.ref = &r
	}
	return *s.ref
}
func (s *fluidInstance) Run(rt *sig.Runtime, ratio float64) any { return s.app.RunRatio(rt, ratio) }
func (s *fluidInstance) Quality(ref, out any) float64 {
	return s.app.Quality(ref.(fluidanimate.State), out.(fluidanimate.State))
}
func (s *fluidInstance) Tasks() int { return s.app.Tasks() }

package harness

import (
	"fmt"
	"io"

	"repro/sig"
)

// WindowRow is one point of the GTB buffer-window sweep.
type WindowRow struct {
	// Window is the GTB buffer size; 0 denotes the unbounded
	// (max-buffering) configuration.
	Window      int
	Joules      float64
	Quality     float64
	ProvidedPct float64
}

// GTBWindowSweep runs the first benchmark of the subset at the Medium degree
// under GTB with each of the given window sizes (0 = max buffering),
// exposing the decision-latency / ratio-precision trade-off of the policy.
func GTBWindowSweep(opt Options, windows []int) ([]WindowRow, error) {
	benches, err := subset(opt)
	if err != nil {
		return nil, err
	}
	spec := benches[0]
	inst := spec.Make(opt.scale())
	ref := inst.Reference()
	rows := make([]WindowRow, 0, len(windows))
	for _, win := range windows {
		mode := ModeGTB
		if win == 0 {
			mode = ModeGTBMax
		}
		m, err := executeAveraged(spec, inst, ref, mode, Medium,
			RunOptions{Workers: opt.Workers, GTBWindow: win}, opt.reps())
		if err != nil {
			return nil, err
		}
		rows = append(rows, WindowRow{
			Window:      win,
			Joules:      m.Joules,
			Quality:     m.Quality,
			ProvidedPct: 100 * m.ProvidedRatio,
		})
	}
	return rows, nil
}

// OracleRow compares an online policy against the max-buffering oracle —
// the policy that sees all tasks before deciding — on one benchmark.
type OracleRow struct {
	Bench         string
	Mode          Mode
	Joules        float64
	OracleJoules  float64
	Quality       float64
	OracleQuality float64
}

// OracleComparison quantifies how much quality/energy the online policies
// (GTB with the default window, LQH) give up against max buffering.
func OracleComparison(opt Options) ([]OracleRow, error) {
	benches, err := subset(opt)
	if err != nil {
		return nil, err
	}
	var rows []OracleRow
	for _, spec := range benches {
		inst := spec.Make(opt.scale())
		ref := inst.Reference()
		oracle, err := executeAveraged(spec, inst, ref, ModeGTBMax, Medium,
			RunOptions{Workers: opt.Workers}, opt.reps())
		if err != nil {
			return nil, err
		}
		for _, mode := range []Mode{ModeGTB, ModeLQH} {
			m, err := executeAveraged(spec, inst, ref, mode, Medium,
				RunOptions{Workers: opt.Workers}, opt.reps())
			if err != nil {
				return nil, err
			}
			rows = append(rows, OracleRow{
				Bench:         spec.Name,
				Mode:          mode,
				Joules:        m.Joules,
				OracleJoules:  oracle.Joules,
				Quality:       m.Quality,
				OracleQuality: oracle.Quality,
			})
		}
	}
	return rows, nil
}

// DVFSRow models, at one relative frequency, the energy of the accurate
// baseline and of GTB at the Medium degree, assuming dynamic power scales
// with f³ and execution time with 1/f.
type DVFSRow struct {
	Freq      float64
	AccurateJ float64
	ApproxJ   float64
	SavingPct float64
}

// DVFSStudy reruns the first benchmark of the subset and rescales its
// measured busy/idle profile across a DVFS range, reproducing the paper's
// observation that significance-driven approximation composes with (and is
// complementary to) frequency scaling.
func DVFSStudy(opt Options) ([]DVFSRow, error) {
	benches, err := subset(opt)
	if err != nil {
		return nil, err
	}
	spec := benches[0]
	inst := spec.Make(opt.scale())
	ref := inst.Reference()
	acc, err := executeAveraged(spec, inst, ref, ModeAccurate, Medium,
		RunOptions{Workers: opt.Workers}, opt.reps())
	if err != nil {
		return nil, err
	}
	app, err := executeAveraged(spec, inst, ref, ModeGTB, Medium,
		RunOptions{Workers: opt.Workers}, opt.reps())
	if err != nil {
		return nil, err
	}
	var rows []DVFSRow
	for _, f := range []float64{0.6, 0.8, 1.0, 1.2} {
		aj := scaleEnergy(acc.Report, f)
		gj := scaleEnergy(app.Report, f)
		rows = append(rows, DVFSRow{Freq: f, AccurateJ: aj, ApproxJ: gj, SavingPct: 100 * (1 - gj/aj)})
	}
	return rows, nil
}

// scaleEnergy rescales a measured report to relative frequency f: busy and
// wall time stretch by 1/f, dynamic (active) power scales with f³ because
// voltage tracks frequency, idle power stays constant.
func scaleEnergy(r sig.Report, f float64) float64 {
	busy := r.Busy.Seconds() / f
	wall := r.Wall.Seconds() / f
	idle := wall*float64(r.Workers) - busy
	if idle < 0 {
		idle = 0
	}
	return r.ActiveWatts*f*f*f*busy + r.IdleWatts*idle
}

// NTCStudy prints the near-threshold-computing projection of the paper's
// discussion section: at near-threshold voltage a core runs ~4x slower at
// ~20x lower power, so a wider, slower machine paired with the significance
// ratio knob reaches the same deadline at a fraction of the energy. The
// numbers are derived purely from the runtime's energy model.
func NTCStudy(w io.Writer) error {
	const (
		ntcFreq  = 0.25 // relative frequency at near-threshold voltage
		ntcPower = 0.05 // relative per-core power at that point
	)
	type cfg struct {
		name  string
		cores int
		freq  float64
		power float64
	}
	cfgs := []cfg{
		{"nominal, 1 core", 1, 1.0, 1.0},
		{"nominal, 8 cores", 8, 1.0, 1.0},
		{"NTC, 8 cores", 8, ntcFreq, ntcPower},
		{"NTC, 32 cores", 32, ntcFreq, ntcPower},
	}
	if _, err := fmt.Fprintln(w, "Near-threshold computing projection (modeled, unit workload):"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-18s %12s %12s %14s\n",
		"configuration", "throughput", "power", "energy/work"); err != nil {
		return err
	}
	for _, c := range cfgs {
		throughput := float64(c.cores) * c.freq
		power := float64(c.cores) * c.power * sig.DefaultActiveWatts
		energyPerWork := power / throughput
		if _, err := fmt.Fprintf(w, "%-18s %11.2fx %11.2fW %13.2fJ\n",
			c.name, throughput, power, energyPerWork); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "Significance-aware approximation composes with NTC: the accuracy\n"+
		"ratio recovers output quality lost to timing-error-prone near-threshold\n"+
		"cores by re-executing only the significant fraction of tasks accurately.")
	return err
}

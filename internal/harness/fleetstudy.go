package harness

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"repro/sig"
	"repro/sig/serve"
	"repro/sig/shard"
)

// FleetStudy evaluates the self-healing elastic fleet along its two
// headline axes, both fully deterministic (declared costs, scripted
// arrivals, pure-arithmetic controllers):
//
// Part A — rolling replace. Under a sustained significance-tiered stream,
// every shard of the fleet is replaced in sequence: surge a spare slot in
// (AddShard), drain the victim, keep submitting throughout. The study
// reports the requests lost (must be zero — drain refuses to lose work),
// the waves spent below nominal routable capacity (zero with a spare
// slot: the surge lands before the drain), and whether the merged modeled
// energy stayed bit-identical to a single-runtime golden executing the
// same outcome mix — the retirement account's exact integer busy-ns sum
// at work across every replacement.
//
// Part B — autoscale step response. A serve.Server with a quality floor
// (MinRatio 1: degradation cannot absorb load, the regime autoscaling
// exists for) takes an offered-load step up and back down. The study
// records the live-shard trajectory and reports the waves to reach
// MaxShards after the step, the waves to return to MinShards after load
// ends, and the oscillation count (direction reversals beyond the single
// up-then-down turn — must be zero: hysteresis and cooldown exist to
// prevent relay chatter).

// FleetStudyConfig parameterizes FleetStudy. Zero fields take defaults.
type FleetStudyConfig struct {
	// Shards is the nominal rolling-replace fleet size (default 4); the
	// router gets one spare slot for surge-then-drain replacement.
	Shards int
	// WorkersPerShard sizes each shard's pool (default 2).
	WorkersPerShard int
	// PerWave is the rolling-replace tasks submitted per wave (default
	// 64 × Shards).
	PerWave int
	// Ratio is the rolling-replace group's accuracy ratio (default 0.5).
	Ratio float64
	// CostAcc/CostDeg are the declared task costs (defaults 10_000/1_000).
	CostAcc, CostDeg float64
	// HighWaves is the length of the autoscale overload step (default 20);
	// HighPerWave the offered requests per step wave (default 24).
	HighWaves   int
	HighPerWave int
	// MaxDownWaves bounds the idle tail the study waits for the fleet to
	// shrink back to MinShards (default 80).
	MaxDownWaves int
}

func (c FleetStudyConfig) withDefaults() FleetStudyConfig {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 2
	}
	if c.PerWave <= 0 {
		c.PerWave = 64 * c.Shards
	}
	if c.Ratio <= 0 {
		c.Ratio = 0.5
	}
	if c.CostAcc <= 0 {
		c.CostAcc = 10_000
	}
	if c.CostDeg <= 0 {
		c.CostDeg = 1_000
	}
	if c.HighWaves <= 0 {
		c.HighWaves = 20
	}
	if c.HighPerWave <= 0 {
		c.HighPerWave = 24
	}
	if c.MaxDownWaves <= 0 {
		c.MaxDownWaves = 80
	}
	return c
}

// FleetReplaceResult is Part A's outcome.
type FleetReplaceResult struct {
	Shards int
	// Replaced is the number of completed drain+rejoin cycles (one per
	// nominal shard).
	Replaced int
	// Submitted/Decided are the stream totals; Lost is their difference
	// and the study's first gate (must be 0).
	Submitted, Decided int64
	Lost               int64
	// DegradedWaves counts waves that began with fewer than Shards
	// routable shards (0 with a spare slot: capacity never dips).
	DegradedWaves int
	// MergedJoules/GoldenJoules are the fleet's energy account and the
	// single-runtime reconstruction of the same outcome mix;
	// JoulesBitIdentical is their bit equality.
	MergedJoules, GoldenJoules float64
	JoulesBitIdentical         bool
}

// FleetScaleResult is Part B's outcome.
type FleetScaleResult struct {
	MinShards, MaxShards int
	// Trajectory is the live-shard count after every wave.
	Trajectory []int
	// WavesToScaleUp is how many step waves passed before the fleet
	// reached MaxShards (-1: never).
	WavesToScaleUp int
	// WavesToScaleDown is how many idle waves passed after the step ended
	// before the fleet returned to MinShards (-1: never).
	WavesToScaleDown int
	// Oscillations counts direction reversals beyond the single
	// up-then-down turn of a step response (0 = no relay chatter).
	Oscillations int
	// Rejected is the overload rejections during the step (the queue
	// bounds memory; rejection is not a scaling failure).
	Rejected int64
}

// FleetResult is the study outcome.
type FleetResult struct {
	Config  FleetStudyConfig
	Replace FleetReplaceResult
	Scale   FleetScaleResult
}

// fleetReplace runs Part A.
func fleetReplace(cfg FleetStudyConfig) (FleetReplaceResult, error) {
	res := FleetReplaceResult{Shards: cfg.Shards}
	r, err := shard.New(shard.Config{
		Shards:    cfg.Shards,
		MaxShards: cfg.Shards + 1, // the surge slot
		Runtime:   sig.Config{Workers: cfg.WorkersPerShard, Policy: sig.PolicyGTBMaxBuffer},
	})
	if err != nil {
		return res, err
	}
	g := r.Group("roll", cfg.Ratio)

	var ran atomic.Int64
	wave := func() {
		if r.Routable() < cfg.Shards {
			res.DegradedWaves++
		}
		specs := make([]sig.TaskSpec, cfg.PerWave)
		for i := range specs {
			specs[i] = sig.TaskSpec{
				Fn:           func() { ran.Add(1) },
				Approx:       func() { ran.Add(1) },
				Significance: float64(i%9+1) / 10,
				HasCost:      true, CostAccurate: cfg.CostAcc, CostApprox: cfg.CostDeg,
			}
		}
		r.SubmitBatch(g, specs)
		res.Submitted += int64(cfg.PerWave)
		r.WaitPhase(g)
	}

	wave() // warm placement state
	for victim := 0; victim < cfg.Shards; victim++ {
		wave()
		if _, err := r.AddShard(); err != nil { // surge first...
			return res, err
		}
		if err := r.DrainShard(victim); err != nil { // ...then drain
			return res, err
		}
		res.Replaced++
		wave()
	}
	r.Wait(g)
	if err := r.Close(); err != nil {
		return res, err
	}

	gs := g.Stats()
	res.Decided = gs.Accurate + gs.Approximate + gs.Dropped
	res.Lost = res.Submitted - res.Decided
	res.MergedJoules = r.Energy().Joules

	// Golden: a single runtime executing the same outcome mix — energy is
	// a function of the mix, not of placement or policy path.
	rt, err := sig.New(sig.Config{Workers: cfg.WorkersPerShard, Policy: sig.PolicyAccurate})
	if err != nil {
		return res, err
	}
	specs := make([]sig.TaskSpec, 0, gs.Accurate+gs.Approximate)
	for i := int64(0); i < gs.Accurate; i++ {
		specs = append(specs, sig.TaskSpec{Fn: func() {}, HasCost: true, CostAccurate: cfg.CostAcc})
	}
	for i := int64(0); i < gs.Approximate; i++ {
		specs = append(specs, sig.TaskSpec{Fn: func() {}, HasCost: true, CostAccurate: cfg.CostDeg})
	}
	rt.SubmitBatch(nil, specs)
	rt.Wait(nil)
	rt.Close()
	res.GoldenJoules = rt.Energy().Joules
	res.JoulesBitIdentical = math.Float64bits(res.MergedJoules) == math.Float64bits(res.GoldenJoules)
	return res, nil
}

// fleetScale runs Part B.
func fleetScale(cfg FleetStudyConfig) (FleetScaleResult, error) {
	const costAcc = 30_000.0
	ac := &shard.AutoscalerConfig{
		MinShards: 1, MaxShards: 4,
		UpAt: 1.5, DownAt: 0.2,
		UpAfter: 2, DownAfter: 3, Cooldown: 1,
	}
	res := FleetScaleResult{MinShards: ac.MinShards, MaxShards: ac.MaxShards, WavesToScaleUp: -1, WavesToScaleDown: -1}
	s, err := serve.New(serve.Config{
		Shards:     2,
		Workers:    1,
		MinRatio:   1, // quality floor: only capacity can absorb the step
		WaveBudget: 8 * costAcc,
		AutoScale:  ac,
	})
	if err != nil {
		return res, err
	}

	record := func(rep serve.WaveReport) { res.Trajectory = append(res.Trajectory, rep.LiveShards) }

	// Baseline idle waves — fewer than DownAfter, so the baseline itself
	// doesn't shrink the fleet before the step lands.
	for w := 0; w < ac.DownAfter-1; w++ {
		record(s.RunWave())
	}
	// Step up: sustained offered load beyond the full fleet's capacity.
	for w := 0; w < cfg.HighWaves; w++ {
		for i := 0; i < cfg.HighPerWave; i++ {
			_, err := s.Submit(serve.Request{
				Significance: float64(i%9+1) / 10,
				Handler:      func() {},
				CostAccurate: costAcc,
			})
			if err != nil {
				res.Rejected++
			}
		}
		rep := s.RunWave()
		record(rep)
		if res.WavesToScaleUp < 0 && rep.LiveShards == ac.MaxShards {
			res.WavesToScaleUp = w + 1
		}
	}
	// Step down: no arrivals; the fleet drains the backlog and shrinks.
	for w := 0; w < cfg.MaxDownWaves; w++ {
		rep := s.RunWave()
		record(rep)
		if rep.LiveShards == ac.MinShards && rep.Depth == 0 {
			res.WavesToScaleDown = w + 1
			break
		}
	}
	if err := s.Close(); err != nil {
		return res, err
	}

	// Oscillations: direction reversals in the trajectory beyond the one
	// up→down turn of a clean step response.
	turns, lastDir := 0, 0
	for i := 1; i < len(res.Trajectory); i++ {
		d := res.Trajectory[i] - res.Trajectory[i-1]
		if d == 0 {
			continue
		}
		dir := 1
		if d < 0 {
			dir = -1
		}
		if lastDir != 0 && dir != lastDir {
			turns++
		}
		lastDir = dir
	}
	res.Oscillations = max(0, turns-1)
	return res, nil
}

// FleetStudy runs both parts.
func FleetStudy(cfg FleetStudyConfig) (FleetResult, error) {
	cfg = cfg.withDefaults()
	res := FleetResult{Config: cfg}
	var err error
	if res.Replace, err = fleetReplace(cfg); err != nil {
		return res, err
	}
	res.Scale, err = fleetScale(cfg)
	return res, err
}

// PrintFleetStudy renders the study.
func PrintFleetStudy(w io.Writer, r FleetResult) {
	a := r.Replace
	fmt.Fprintf(w, "Fleet study A: rolling replace of %d shards (+1 surge slot), %d tasks/wave at ratio %.2f\n",
		a.Shards, r.Config.PerWave, r.Config.Ratio)
	fmt.Fprintf(w, "  replaced %d/%d shards; %d submitted, %d decided, %d lost; %d waves below nominal capacity\n",
		a.Replaced, a.Shards, a.Submitted, a.Decided, a.Lost, a.DegradedWaves)
	additive := "bit-identical"
	if !a.JoulesBitIdentical {
		additive = "NOT bit-identical — retirement account broken"
	}
	fmt.Fprintf(w, "  merged energy %.6fJ vs single-runtime golden %.6fJ: %s\n", a.MergedJoules, a.GoldenJoules, additive)
	fmt.Fprintln(w)

	b := r.Scale
	fmt.Fprintf(w, "Fleet study B: autoscale step response (%d..%d shards, %d waves of %d offered requests)\n",
		b.MinShards, b.MaxShards, r.Config.HighWaves, r.Config.HighPerWave)
	up := fmt.Sprintf("%d waves", b.WavesToScaleUp)
	if b.WavesToScaleUp < 0 {
		up = "never"
	}
	down := fmt.Sprintf("%d waves", b.WavesToScaleDown)
	if b.WavesToScaleDown < 0 {
		down = "never"
	}
	fmt.Fprintf(w, "  scale-up to max: %s after the step; scale-down to min: %s after load ends; %d oscillations; %d rejected\n",
		up, down, b.Oscillations, b.Rejected)
	fmt.Fprintf(w, "  live-shard trajectory: %v\n", b.Trajectory)
}

package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/sig/adapt"
	"repro/sig/serve"
)

// SLOStudy measures the serving layer's SLO machinery against its paper
// contracts: the reaction-time bounds derived from the secant law's
// arithmetic (sig/adapt/bounds.go), the windowed quality floor, and the
// priority lane's latency separation. Requests are synthetic no-op bodies
// with declared costs — the study isolates the admission arithmetic the
// bounds are proven for (assumption 1: declared costs make the load signal
// affine in the ratio), so every number is bit-identical across runs.

// Declared request costs of the SLO study's synthetic service: degraded
// work is ~13% of accurate work, like the sobel kernels.
const (
	sloCostAcc = 30_000.0
	sloCostDeg = 4_000.0
)

// SLOConfig parameterizes SLOStudy. Zero fields take defaults.
type SLOConfig struct {
	// BasePerWave is the light-load arrival rate (default 8); the wave
	// budget is sized so that rate fills Utilization of capacity at full
	// quality.
	BasePerWave int
	// Utilization in (0,1) is the light-load duty cycle (default 0.6);
	// 1−Utilization is the recovery bound's headroom term.
	Utilization float64
	// Overloads are the step multiples the reaction section measures
	// (default 2, 4, 6).
	Overloads []float64
	// Window and Floor parameterize the quality-floor section (defaults
	// 8 waves at 0.5).
	Window int
	Floor  float64
	// PriorityAt is the lane section's premium threshold (default 0.95:
	// the every-tenth tier-1.0 requests).
	PriorityAt float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.BasePerWave <= 0 {
		c.BasePerWave = 8
	}
	if c.Utilization <= 0 || c.Utilization >= 1 {
		c.Utilization = 0.6
	}
	if len(c.Overloads) == 0 {
		c.Overloads = []float64{2, 4, 6}
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Floor <= 0 {
		c.Floor = 0.5
	}
	if c.PriorityAt <= 0 {
		c.PriorityAt = 0.95
	}
	return c
}

// SLOReactionRow is one overload step's measured reaction against the
// derived bound.
type SLOReactionRow struct {
	Overload float64
	// PreRatio is the commanded ratio before the step; DeltaR = PreRatio
	// (conservative travel distance: the bound does not know the post-shed
	// equilibrium, so it assumes the full commanded range).
	PreRatio float64
	// ShedWaves is the first wave of the step whose measured load is back
	// at or under the cap; ShedBound the derived maximum (-1 = never, a
	// bound violation).
	ShedWaves, ShedBound int
	// Backlog is the queue depth when the step ends; DrainWaves the
	// modeled waves to work it off at the post-shed admission rate — the
	// caller-owned phase the recovery bound sits on top of.
	Backlog, DrainWaves int
	// RecoverWaves is how many waves past the step's end the command
	// climbed back within 0.05 of PreRatio; RecoverBound the derived
	// maximum including DrainWaves (-1 = never).
	RecoverWaves, RecoverBound int
}

// SLOResult is the outcome of the SLO study.
type SLOResult struct {
	BasePerWave int
	Utilization float64

	// Reaction section: measured shed/recover waves vs the derived bounds,
	// one row per overload multiple. AllWithinBound is the headline claim.
	Reaction       []SLOReactionRow
	AllWithinBound bool

	// Quality-floor section: a sustained 4x overload under a Window-wave
	// Floor. MinWindowMean is the worst full-window mean of the provided
	// ratio (the SLO: must hold the floor); MinProvided the worst single
	// wave (expected to dip below it — the floor is a long-run average);
	// FloorDips counts the waves that dipped.
	Window        int
	Floor         float64
	MinWindowMean float64
	MinProvided   float64
	FloorDips     int

	// Priority-lane section: premium (tier 1.0) vs bulk wave-latency
	// percentiles under the same sustained overload.
	PriorityAt       float64
	PremiumCompleted int64
	PrioP50, PrioP99 int
	BulkP50, BulkP99 int
}

// sloRequest is the i-th synthetic request: the study tier spread, no-op
// bodies, declared costs.
func sloRequest(i int) serve.Request {
	return serve.Request{
		Significance: serveTier(i),
		Handler:      func() {},
		Degraded:     func() {},
		CostAccurate: sloCostAcc,
		CostDegraded: sloCostDeg,
	}
}

// sloServer builds the section's server: budget sized for BasePerWave at
// the study utilization, a queue deep enough that steps shed quality, not
// requests. The reaction section caps load at 1.0 (full capacity), the
// setting the bounds' absorbability assumption is stated for.
func sloServer(cfg SLOConfig, mut func(*serve.Config)) (*serve.Server, error) {
	sc := serve.Config{
		Workers:    2,
		WaveBudget: float64(cfg.BasePerWave) * sloCostAcc / cfg.Utilization,
		QueueLimit: 64 * cfg.BasePerWave,
	}
	if mut != nil {
		mut(&sc)
	}
	return serve.New(sc)
}

// SLOStudy runs the three SLO sections. Deterministic end to end: declared
// costs, no wall-clock deadlines, explicit waves.
func SLOStudy(cfg SLOConfig) (SLOResult, error) {
	cfg = cfg.withDefaults()
	res := SLOResult{
		BasePerWave: cfg.BasePerWave,
		Utilization: cfg.Utilization,
		Window:      cfg.Window,
		Floor:       cfg.Floor,
		PriorityAt:  cfg.PriorityAt,
	}
	if err := sloReaction(cfg, &res); err != nil {
		return res, err
	}
	if err := sloFloor(cfg, &res); err != nil {
		return res, err
	}
	if err := sloLanes(cfg, &res); err != nil {
		return res, err
	}
	return res, nil
}

func sloReaction(cfg SLOConfig, res *SLOResult) error {
	res.AllWithinBound = true
	for _, over := range cfg.Overloads {
		s, err := sloServer(cfg, func(c *serve.Config) { c.TargetLoad = 1.0 })
		if err != nil {
			return err
		}
		seq := 0
		wave := func(n int) serve.WaveReport {
			for i := 0; i < n; i++ {
				if _, err := s.Submit(sloRequest(seq)); err == nil {
					seq++
				}
			}
			return s.RunWave()
		}
		for w := 0; w < 8; w++ {
			wave(cfg.BasePerWave) // settle at the base rate
		}
		row := SLOReactionRow{Overload: over, PreRatio: s.Ratio()}
		row.ShedBound = adapt.ShedBound(row.PreRatio, adapt.DefaultMaxStep)
		row.ShedWaves = -1

		stepped := int(float64(cfg.BasePerWave) * over)
		for w := 1; w <= row.ShedBound+2; w++ {
			rep := wave(stepped)
			if row.ShedWaves < 0 && rep.Load <= 1.0 {
				row.ShedWaves = w
			}
		}
		row.Backlog = s.Depth()

		// The recovery bound owns only the climb; the backlog-drain phase
		// belongs to the caller's arithmetic: each post-step wave admits at
		// least budget/costAcc requests (full-cost worst case) and receives
		// BasePerWave fresh ones, for a net drain of base/util − 1 − base.
		netDrain := float64(cfg.BasePerWave)/cfg.Utilization - 1 - float64(cfg.BasePerWave)
		if row.Backlog > 0 && netDrain > 0 {
			row.DrainWaves = int(math.Ceil(float64(row.Backlog) / netDrain))
		}
		row.RecoverBound = row.DrainWaves +
			adapt.RecoverBound(row.PreRatio, adapt.DefaultGain, adapt.DefaultMaxStep, 1-cfg.Utilization)
		row.RecoverWaves = -1
		for w := 1; w <= row.RecoverBound+5; w++ {
			rep := wave(cfg.BasePerWave)
			if rep.NextRatio >= row.PreRatio-0.05 {
				row.RecoverWaves = w
				break
			}
		}
		if err := s.Close(); err != nil {
			return err
		}
		if row.ShedWaves < 0 || row.ShedWaves > row.ShedBound ||
			row.RecoverWaves < 0 || row.RecoverWaves > row.RecoverBound {
			res.AllWithinBound = false
		}
		res.Reaction = append(res.Reaction, row)
	}
	return nil
}

func sloFloor(cfg SLOConfig, res *SLOResult) error {
	s, err := sloServer(cfg, func(c *serve.Config) {
		c.QualityFloor = cfg.Floor
		c.QualityWindow = cfg.Window
	})
	if err != nil {
		return err
	}
	var provided []float64
	seq := 0
	for w := 0; w < 60; w++ {
		for i := 0; i < 4*cfg.BasePerWave; i++ {
			if _, err := s.Submit(sloRequest(seq)); err == nil {
				seq++
			}
		}
		rep := s.RunWave()
		if rep.Admitted > 0 {
			provided = append(provided, rep.Provided)
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	res.MinWindowMean, res.MinProvided = 1, 1
	for i, p := range provided {
		res.MinProvided = math.Min(res.MinProvided, p)
		if p < cfg.Floor {
			res.FloorDips++
		}
		if i+1 < cfg.Window {
			continue
		}
		var sum float64
		for _, q := range provided[i+1-cfg.Window : i+1] {
			sum += q
		}
		res.MinWindowMean = math.Min(res.MinWindowMean, sum/float64(cfg.Window))
	}
	return nil
}

func sloLanes(cfg SLOConfig, res *SLOResult) error {
	s, err := sloServer(cfg, func(c *serve.Config) { c.PriorityAt = cfg.PriorityAt })
	if err != nil {
		return err
	}
	type tagged struct {
		tk      *serve.Ticket
		premium bool
	}
	var tks []tagged
	seq := 0
	for w := 0; w < 24; w++ {
		for i := 0; i < 4*cfg.BasePerWave; i++ {
			req := sloRequest(seq)
			tk, err := s.Submit(req)
			seq++
			if err != nil {
				continue
			}
			tks = append(tks, tagged{tk: tk, premium: req.Significance >= cfg.PriorityAt})
		}
		s.RunWave()
	}
	if err := s.Close(); err != nil { // resolves every accepted ticket
		return err
	}
	var prio, bulk []int
	for _, t := range tks {
		if t.premium {
			prio = append(prio, t.tk.WaveLatency())
		} else {
			bulk = append(bulk, t.tk.WaveLatency())
		}
		t.tk.Release()
	}
	res.PremiumCompleted = s.Totals().Priority
	res.PrioP50, res.PrioP99 = percentilesWaves(prio)
	res.BulkP50, res.BulkP99 = percentilesWaves(bulk)
	return nil
}

func percentilesWaves(lats []int) (p50, p99 int) {
	if len(lats) == 0 {
		return 0, 0
	}
	sort.Ints(lats)
	return lats[len(lats)*50/100], lats[len(lats)*99/100]
}

// PrintSLOStudy renders the study: the reaction table (measured vs bound),
// the floor section, and the lane percentiles the gating test and BENCH
// json consume.
func PrintSLOStudy(w io.Writer, r SLOResult) {
	fmt.Fprintf(w, "SLO study (base %d req/wave at %.0f%% utilization, declared costs)\n",
		r.BasePerWave, 100*r.Utilization)
	fmt.Fprintf(w, "%-9s %6s %6s %7s %8s %7s %8s %9s\n",
		"overload", "preR", "shed", "shedBnd", "backlog", "drain", "recover", "recovBnd")
	for _, row := range r.Reaction {
		fmt.Fprintf(w, "%-9s %6.2f %6d %7d %8d %7d %8d %9d\n",
			fmt.Sprintf("%gx", row.Overload), row.PreRatio, row.ShedWaves, row.ShedBound,
			row.Backlog, row.DrainWaves, row.RecoverWaves, row.RecoverBound)
	}
	fmt.Fprintf(w, "reaction: all measured reactions within the derived bounds: %v\n", r.AllWithinBound)
	fmt.Fprintf(w, "floor: window %d floor %.2f -> min window mean %.3f, min wave %.3f, %d waves dipped\n",
		r.Window, r.Floor, r.MinWindowMean, r.MinProvided, r.FloorDips)
	fmt.Fprintf(w, "lanes: priority>=%.2f -> premium p50/p99 %d/%d waves vs bulk %d/%d (%d premium completed)\n",
		r.PriorityAt, r.PrioP50, r.PrioP99, r.BulkP50, r.BulkP99, r.PremiumCompleted)
}

package harness

import (
	"strings"
	"testing"
)

// TestSLOStudyHoldsContracts gates the SLO study's three claims on a
// small, fast configuration: every measured reaction sits within its
// derived bound, the windowed quality floor holds its mean while per-wave
// quality still dips, and the priority lane's tail latency beats bulk's.
func TestSLOStudyHoldsContracts(t *testing.T) {
	res, err := SLOStudy(SLOConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllWithinBound {
		t.Errorf("reaction section out of bound: %+v", res.Reaction)
	}
	for _, row := range res.Reaction {
		if row.ShedWaves < 1 || row.ShedWaves > row.ShedBound {
			t.Errorf("overload %.0fx: shed in %d waves, bound %d", row.Overload, row.ShedWaves, row.ShedBound)
		}
		if row.RecoverWaves < 1 || row.RecoverWaves > row.RecoverBound {
			t.Errorf("overload %.0fx: recovered in %d waves, bound %d", row.Overload, row.RecoverWaves, row.RecoverBound)
		}
	}
	if res.MinWindowMean < res.Floor-0.05 {
		t.Errorf("min window mean %.3f below floor %.2f", res.MinWindowMean, res.Floor)
	}
	if res.FloorDips == 0 {
		t.Errorf("no wave dipped below the floor: the window floor is acting per-wave")
	}
	if res.PrioP99 > res.BulkP99 {
		t.Errorf("premium p99 %d waves above bulk p99 %d: the priority lane is not bypassing the backlog",
			res.PrioP99, res.BulkP99)
	}
	if res.PremiumCompleted == 0 {
		t.Errorf("no premium request completed")
	}

	// Bit-identical replay: the study is deterministic by construction.
	res2, err := SLOStudy(SLOConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MinWindowMean != res.MinWindowMean || res2.PrioP99 != res.PrioP99 {
		t.Errorf("SLO study not deterministic: %+v vs %+v", res, res2)
	}
	for i := range res.Reaction {
		if res.Reaction[i] != res2.Reaction[i] {
			t.Errorf("reaction row %d diverged across replays: %+v vs %+v", i, res.Reaction[i], res2.Reaction[i])
		}
	}

	var b strings.Builder
	PrintSLOStudy(&b, res)
	for _, want := range []string{"within the derived bounds: true", "min window mean", "premium p50/p99"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("printed study missing %q", want)
		}
	}
}

package harness

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/sig"
)

// table1Golden pins the benchmark-catalog output: sigbench table1 is part
// of the public surface and downstream tooling greps it.
const table1Golden = `Table 1: benchmark catalog
Benchmark     Domain                    Task decomposition                            Degradation                            Quality metric
Sobel         Image filter              one task per output row                       2-point gradient approximation         1/PSNR
DCT           Image compression         one task per block row and frequency band     drop high-frequency bands              1/PSNR
MC            Monte Carlo PDE solver    one task per random-walk batch                drop low-significance walk batches     relative error (%)
Kmeans        Clustering                one task per observation chunk per iteration  reuse previous chunk assignment        relative inertia error (%)
Jacobi        Iterative linear solver   one task per row block per sweep              update every other row of a block      relative L2 error (%)
Fluidanimate  Particle simulation (SPH) one task per particle chunk per time step     gravity-only steps at alternating ratio mean position error (%)
`

func TestTable1Golden(t *testing.T) {
	var b strings.Builder
	Table1(&b)
	if b.String() != table1Golden {
		t.Errorf("Table1 output diverged from golden.\n--- got ---\n%s--- want ---\n%s",
			b.String(), table1Golden)
	}
}

func TestSpecByName(t *testing.T) {
	if _, ok := SpecByName("sobel"); !ok {
		t.Error("SpecByName should match case-insensitively")
	}
	if _, ok := SpecByName("nope"); ok {
		t.Error("SpecByName matched an unknown benchmark")
	}
	if len(Specs()) != 6 {
		t.Errorf("expected 6 specs, got %d", len(Specs()))
	}
}

// TestFig2SobelOrdering pins the paper's headline result on the smallest
// problem: at the Medium degree the significance-aware policies must save
// modeled energy over the accurate baseline and deliver better quality
// than loop perforation. Modeled energy is computed from declared task
// costs, so this is deterministic.
func TestFig2SobelOrdering(t *testing.T) {
	spec, _ := SpecByName("Sobel")
	inst := spec.Make(0.05)
	ref := inst.Reference()
	run := func(mode Mode) Measurement {
		m, err := Execute(spec, inst, ref, mode, Medium, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	acc := run(ModeAccurate)
	perf := run(ModePerforation)
	for _, mode := range []Mode{ModeGTB, ModeGTBMax, ModeLQH} {
		m := run(mode)
		if m.Joules >= acc.Joules {
			t.Errorf("%s: modeled energy %.4fJ did not beat Accurate %.4fJ", mode, m.Joules, acc.Joules)
		}
		if m.Quality >= perf.Quality {
			t.Errorf("%s: quality %.5f did not beat Perforation %.5f", mode, m.Quality, perf.Quality)
		}
		if m.Quality <= 0 {
			t.Errorf("%s: expected nonzero quality loss at Medium, got %.5f", mode, m.Quality)
		}
	}
	if acc.Quality != 0 {
		t.Errorf("accurate baseline should match the reference exactly, quality %.5f", acc.Quality)
	}
}

// TestPerforationInapplicable: the perforation baseline cannot express
// Kmeans and Fluidanimate (the paper's argument for the ratio clause).
func TestPerforationInapplicable(t *testing.T) {
	for _, name := range []string{"Kmeans", "Fluidanimate"} {
		spec, _ := SpecByName(name)
		inst := spec.Make(0.02)
		m, err := Execute(spec, inst, inst.Reference(), ModePerforation, Medium, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Applicable {
			t.Errorf("%s: perforation should be marked not applicable", name)
		}
	}
}

// TestInversionPct checks the Table 2 metric on hand-built logs.
func TestInversionPct(t *testing.T) {
	rec := func(s float64, acc bool, wave int) sig.DecisionRecord {
		return sig.DecisionRecord{Significance: s, Accurate: acc, Wave: wave}
	}
	// Oracle assignment: the two most significant of four are accurate.
	if got := inversionPct([]sig.DecisionRecord{
		rec(0.9, true, 0), rec(0.7, true, 0), rec(0.5, false, 0), rec(0.3, false, 0),
	}); got != 0 {
		t.Errorf("oracle log scored %.1f%% inversions, want 0", got)
	}
	// One of two accurate slots wasted on the least significant task.
	if got := inversionPct([]sig.DecisionRecord{
		rec(0.9, true, 0), rec(0.7, false, 0), rec(0.5, false, 0), rec(0.3, true, 0),
	}); got != 50 {
		t.Errorf("half-inverted log scored %.1f%%, want 50", got)
	}
	// Waves are scored independently: each wave is oracle-consistent
	// even though significances are reassigned across waves.
	if got := inversionPct([]sig.DecisionRecord{
		rec(0.9, true, 0), rec(0.7, false, 0),
		rec(0.3, true, 1), rec(0.1, false, 1),
	}); got != 0 {
		t.Errorf("per-wave oracle log scored %.1f%%, want 0", got)
	}
}

// TestAdaptiveStudyConverges is the acceptance gate of the adaptive
// controller: on the streaming-sobel workload the controller must converge
// to the PSNR setpoint within 8 waves of the mid-stream scene change, with
// the steady-state provided ratio within ±0.05 of the oracle static ratio
// — on both the initial scene (step response from fully accurate) and the
// post-disturbance scene. The study is fully deterministic (max-buffering
// decisions, declared costs, arithmetic control law), so exact thresholds
// are safe to assert.
func TestAdaptiveStudyConverges(t *testing.T) {
	res, err := AdaptiveStudy(AdaptiveConfig{Scale: 0.05, Waves: 20, ChangeAt: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range res.Segments {
		if seg.ConvergedAfter < 0 {
			t.Errorf("scene %d: controller never converged to within %.2f of oracle %.3f",
				seg.Scene, res.Tolerance, seg.OracleRatio)
			continue
		}
		if seg.ConvergedAfter > 8 {
			t.Errorf("scene %d: converged after %d waves, want <= 8", seg.Scene, seg.ConvergedAfter)
		}
		if d := math.Abs(seg.SteadyRatio - seg.OracleRatio); d > res.Tolerance {
			t.Errorf("scene %d: steady provided ratio %.3f is %.3f from oracle %.3f (tolerance %.2f)",
				seg.Scene, seg.SteadyRatio, d, seg.OracleRatio, res.Tolerance)
		}
		if seg.SteadyPSNR < res.Setpoint {
			t.Errorf("scene %d: steady PSNR %.2f dB below the %.2f dB setpoint", seg.Scene, seg.SteadyPSNR, res.Setpoint)
		}
	}
	// The disturbance must be real: the two scenes need distinct oracles,
	// otherwise the rejection half of the study tests nothing.
	if math.Abs(res.Segments[0].OracleRatio-res.Segments[1].OracleRatio) < 0.1 {
		t.Errorf("scene oracles %.3f and %.3f too close — the scene change is not a disturbance",
			res.Segments[0].OracleRatio, res.Segments[1].OracleRatio)
	}

	// Energy-capped kmeans stream: the budget must be respected at steady
	// state while the ratio sits near the analytic oracle.
	if n := len(res.KmeansRows); n == 0 {
		t.Fatal("kmeans stream recorded no waves")
	}
	last := res.KmeansRows[len(res.KmeansRows)-1]
	if last.Joules > res.KmeansBudget*(1+1e-9) {
		t.Errorf("kmeans steady wave energy %.6gJ exceeds the %.6gJ budget", last.Joules, res.KmeansBudget)
	}
	if d := math.Abs(last.Provided - res.KmeansOracleRatio); d > 0.05 {
		t.Errorf("kmeans steady ratio %.3f is %.3f from the analytic oracle %.2f", last.Provided, d, res.KmeansOracleRatio)
	}
}

// TestAdaptiveStudyDeterministic: two runs of the study must agree exactly
// — the controller's replay contract holds end to end through the harness.
func TestAdaptiveStudyDeterministic(t *testing.T) {
	cfg := AdaptiveConfig{Scale: 0.03, Waves: 8, ChangeAt: 4, KmeansWaves: 4}
	a, err := AdaptiveStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdaptiveStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("sobel wave %d diverged between runs:\n%+v\n%+v", i, a.Rows[i], b.Rows[i])
		}
	}
	for i := range a.KmeansRows {
		if a.KmeansRows[i] != b.KmeansRows[i] {
			t.Errorf("kmeans wave %d diverged between runs:\n%+v\n%+v", i, a.KmeansRows[i], b.KmeansRows[i])
		}
	}
}

// TestFig1WritesMosaic smoke-tests the Figure 1 path end to end.
func TestFig1WritesMosaic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.pgm")
	psnrs, err := Fig1(path, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(psnrs) != 3 {
		t.Fatalf("expected 3 PSNR entries, got %v", psnrs)
	}
	if !(psnrs[Mild] > psnrs[Medium] && psnrs[Medium] > psnrs[Aggressive]) {
		t.Errorf("PSNR should fall with aggressiveness: %v", psnrs)
	}
}

// Package rng is the deterministic xorshift64* generator shared by the
// benchmark kernels. Keeping the single implementation here preserves the
// cross-kernel determinism the evaluation relies on: every kernel derives
// its inputs and walks from the same generator seeded by its Params.
package rng

// Source is an xorshift64* state. The zero value is invalid; use New.
type Source uint64

// New seeds a source; any seed (including 0) yields a valid stream.
func New(seed uint64) Source {
	return Source(seed*0x9e3779b97f4a7c15 + 0x94d049bb133111eb)
}

// Raw seeds a source from an exact state value (for call sites that mix
// their own seed material); a zero state is nudged to stay valid.
func Raw(state uint64) Source {
	if state == 0 {
		state = 0x94d049bb133111eb
	}
	return Source(state)
}

// Uint64 advances the state and returns the next scrambled value.
func (s *Source) Uint64() uint64 {
	x := uint64(*s)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*s = Source(x)
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns the next value in [0,1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Package analysis is a minimal, dependency-free skeleton of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer runs over one
// typechecked package (a Pass) and reports position-anchored Diagnostics.
// The repo cannot vendor x/tools (the build is offline by policy), so the
// subset this suite actually needs — fact-free, package-at-a-time analyzers
// — is reimplemented here on the standard library alone. The drivers in
// internal/analysis/driver adapt it to `go vet -vettool` (the unitchecker
// wire protocol) and to a standalone `go list`-based loader; the test
// harness in internal/analysis/analyzertest mirrors x/tools' analysistest
// `// want` convention.
//
// The package also owns the `//siglint:` directive index. Directives are
// how source code talks back to the suite:
//
//	//siglint:deterministic        package doc: replay-deterministic package
//	//siglint:noalloc              func doc: steady state must not allocate
//	//siglint:poolget              func doc: calls mint a pooled reference
//	//siglint:poolput              func doc: consumes pooled args/receiver
//	//siglint:wallclock <why>      opt-out: legitimate wall-clock read
//	//siglint:maporder <why>       opt-out: map iteration order is benign
//	//siglint:nonatomic <why>      opt-out: plain access is provably safe
//	//siglint:leakok <why>         opt-out: pooled object escapes by design
//	//siglint:allocok <why>        opt-out: allocation is amortized/cold
//
// Opt-outs require a justification — a bare opt-out is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test expectations.
	Name string
	// Doc is a one-paragraph description of what the analyzer proves.
	Doc string
	// Run reports diagnostics on the pass. Analyzers are fact-free: each
	// package is analyzed in isolation.
	Run func(*Pass) error
}

// Pass carries one typechecked package through an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dirs indexes the package's //siglint: directives.
	Dirs *Directives

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// NewPass assembles a Pass; report receives each diagnostic as it is made.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Dirs:      NewDirectives(fset, files),
		report:    report,
	}
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// IsTestFile reports whether pos lies in a _test.go file. The suite's
// analyzers prove runtime invariants; test files measure time, read
// counters after joins and leak on purpose, so every analyzer skips them.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.File(pos).Name(), "_test.go")
}

// Directive is one parsed //siglint:<name> [reason] comment.
type Directive struct {
	Name   string
	Reason string
	Pos    token.Pos
}

// Directives indexes every //siglint: comment of a package by file:line,
// plus the package-level set (directives in any file's package doc).
type Directives struct {
	fset   *token.FileSet
	byLine map[string][]Directive
	pkg    []Directive
}

const prefix = "//siglint:"

func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, prefix) {
		return Directive{}, false
	}
	body := strings.TrimPrefix(c.Text, prefix)
	name, reason, _ := strings.Cut(body, " ")
	return Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, name != ""
}

// NewDirectives scans the files (which must have been parsed with
// parser.ParseComments) for //siglint: directives.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[string][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				dir, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				d.byLine[key] = append(d.byLine[key], dir)
			}
		}
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if dir, ok := parseDirective(c); ok {
					d.pkg = append(d.pkg, dir)
				}
			}
		}
	}
	return d
}

// Package reports whether the package carries the named directive in any
// file's package doc comment.
func (d *Directives) Package(name string) bool {
	for _, dir := range d.pkg {
		if dir.Name == name {
			return true
		}
	}
	return false
}

// At returns the named directive attached to pos: on the same line
// (trailing comment) or on the line directly above (its own comment line).
func (d *Directives) At(pos token.Pos, name string) (Directive, bool) {
	p := d.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, dir := range d.byLine[fmt.Sprintf("%s:%d", p.Filename, line)] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// Func returns the named directive from a function's doc comment.
func Func(fd *ast.FuncDecl, name string) (Directive, bool) {
	if fd.Doc == nil {
		return Directive{}, false
	}
	for _, c := range fd.Doc.List {
		if dir, ok := parseDirective(c); ok && dir.Name == name {
			return dir, true
		}
	}
	return Directive{}, false
}

// OptOut checks for the named opt-out directive at pos (line-level) or on
// the enclosing function fd (doc-level; fd may be nil). It returns whether
// the opt-out applies; an opt-out without a justification is reported and
// still applies (one finding, not two).
func (p *Pass) OptOut(pos token.Pos, fd *ast.FuncDecl, name string) bool {
	dir, ok := p.Dirs.At(pos, name)
	if !ok && fd != nil {
		dir, ok = Func(fd, name)
	}
	if !ok {
		return false
	}
	if dir.Reason == "" {
		// Reported at the opted-out site, not the comment: the finding
		// should point at code.
		p.Reportf(pos, "//siglint:%s needs a justification (\"//siglint:%s <why>\")", name, name)
	}
	return true
}

// FuncObj resolves a call expression to the *types.Func it invokes (static
// calls and method calls; nil for calls through function values, built-ins
// and type conversions).
func FuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether f is the named function (or method, matching
// "Recv.Name") of the package at path.
func IsPkgFunc(f *types.Func, path, name string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != path {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return f.Name() == name
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name()+"."+f.Name() == name
}

// Package na exercises the noalloc analyzer: //siglint:noalloc functions
// must not heap-allocate on any path.
package na

import (
	"sync"
	"sync/atomic"
	"time"
)

type item struct {
	n    int
	next *item
}

type ring struct {
	buf  [8]*item
	head int64
	mu   sync.Mutex
}

type sink interface{ eat(*item) }

// push is an allocation-free hot path: locks, atomics, array stores.
//
//siglint:noalloc
func push(r *ring, it *item) bool {
	r.mu.Lock()
	h := atomic.AddInt64(&r.head, 1)
	r.buf[h%8] = it
	r.mu.Unlock()
	return h >= 0
}

//siglint:noalloc
func leaks(r *ring, xs []int, s sink, f func(), it *item) {
	_ = make([]int, 8) // want `make allocates`
	_ = new(item)      // want `new allocates`
	_ = &item{}        // want `&composite literal allocates`
	_ = []int{1, 2}    // want `slice literal allocates`
	_ = map[int]int{}  // want `map literal allocates`
	_ = func() {}      // want `func literal allocates a closure`
	xs = append(xs, 1) // want `append may grow its backing array`
	s.eat(it)          // want `dynamic call eat through an interface`
	f()                // want `call through a function value`
	helper()           // want `call to na.helper, which is not //siglint:noalloc`
	go push(r, it)     // want `go statement allocates a goroutine`
}

func helper() {}

//siglint:noalloc
func amortized(lane []*item, it *item) []*item {
	lane = append(lane, it) //siglint:allocok amortized growth into the retained lane buffer
	return lane
}

//siglint:noalloc
func record(v any) { _ = v }

//siglint:noalloc
func boxes(n int, it *item) {
	record(n)  // want `implicit conversion of int to .* allocates`
	record(it) // pointer-shaped: fits the interface word, no boxing
	record(1)  // constant: interned by the runtime, no boxing
}

//siglint:noalloc
func sum(vs ...int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}

//siglint:noalloc
func variadic(a, b int, vs []int) int {
	t := sum(a, b) // want `variadic call allocates the argument slice`
	return t + sum(vs...)
}

//siglint:noalloc
func strs(s string, bs []byte) {
	_ = s + s      // want `string concatenation allocates`
	_ = []byte(s)  // want `string<->slice conversion copies and allocates`
	_ = string(bs) // want `string<->slice conversion copies and allocates`
}

//siglint:noalloc
func loops(r *ring) {
	for i := 0; i < 3; i++ {
		defer r.mu.Unlock() // want `defer inside a loop`
	}
}

//siglint:noalloc
func methodValue(r *ring) func() {
	return r.mu.Lock // want `method value Lock allocates a closure`
}

//siglint:noalloc
func clockOK(deadline time.Time) (time.Duration, bool) {
	t0 := time.Now()
	// The method (time.Time).After is a plain comparison; only the
	// package-level time.After timer constructor allocates.
	return time.Since(t0), t0.After(deadline)
}

//siglint:noalloc
func timerNotOK(d time.Duration) <-chan time.Time {
	return time.After(d) // want `call to time.After, which is not //siglint:noalloc`
}

//siglint:noalloc
func failurePathOK(it *item) {
	if it == nil {
		panic("nil item") // the failure path may allocate
	}
}

//siglint:noalloc
func bareOptOut() *item {
	//siglint:allocok
	return &item{} // want `needs a justification`
}

// unannotated functions may allocate freely.
func unannotated() []int {
	return make([]int, 4)
}

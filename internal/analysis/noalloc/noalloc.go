// Package noalloc rejects heap allocation in functions annotated
// //siglint:noalloc — the serving hot path whose zero-alloc steady state
// PR 7's pooled-ticket work bought and whose regression the allocs/op
// benchmarks only catch for the inputs they exercise. The analyzer checks
// every path, at compile time.
//
// Inside an annotated function the following are reported:
//
//   - make, new, &T{...}, slice/map literals, go statements, closures
//     (func literals), method values, string concatenation and
//     string<->[]byte/[]rune conversions;
//   - append (growth reallocates) — amortized-growth appends into a
//     retained buffer are the one legitimate pattern, annotated
//     //siglint:allocok <why>;
//   - defer inside a loop (only straight-line defers are open-coded);
//   - implicit conversion of a non-pointer-shaped, non-constant value to
//     an interface (it boxes): arguments, assignments, returns and sends;
//   - calls to variadic functions that materialize the argument slice;
//   - calls to anything that is not itself //siglint:noalloc, a builtin,
//     or on the allowlist of known non-allocating stdlib surface
//     (sync/atomic, sync locks, math, time's clock reads, runtime's
//     scheduler hints), including any call through an interface or a
//     function value — the analyzer cannot see those callees.
//
// //siglint:allocok <why> on the offending line acknowledges a deliberate,
// audited allocation (cold paths behind a fast-path guard, amortized
// growth). The annotation is the audit trail; the analyzer enforces that
// it exists.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "//siglint:noalloc functions must not heap-allocate on any path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Same-package functions that are themselves noalloc are callable.
	noallocFns := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if _, has := analysis.Func(fd, "noalloc"); has {
					if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
						noallocFns[obj] = true
					}
				}
			}
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, has := analysis.Func(fd, "noalloc"); !has {
				continue
			}
			c := &checker{pass: pass, fd: fd, noallocFns: noallocFns}
			c.block(fd.Body, 0)
		}
	}
	return nil
}

type checker struct {
	pass       *analysis.Pass
	fd         *ast.FuncDecl
	noallocFns map[types.Object]bool
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.pass.OptOut(pos, nil, "allocok") {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// block walks statements tracking loop depth (defers inside loops are not
// open-coded and allocate a record per iteration).
func (c *checker) block(s ast.Stmt, loopDepth int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.block(st, loopDepth)
		}
	case *ast.LabeledStmt:
		c.block(s.Stmt, loopDepth)
	case *ast.IfStmt:
		c.block(s.Init, loopDepth)
		c.expr(s.Cond)
		c.block(s.Body, loopDepth)
		c.block(s.Else, loopDepth)
	case *ast.ForStmt:
		c.block(s.Init, loopDepth)
		c.expr(s.Cond)
		c.block(s.Post, loopDepth)
		c.block(s.Body, loopDepth+1)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.block(s.Body, loopDepth+1)
	case *ast.SwitchStmt:
		c.block(s.Init, loopDepth)
		c.expr(s.Tag)
		c.block(s.Body, loopDepth)
	case *ast.TypeSwitchStmt:
		c.block(s.Init, loopDepth)
		c.block(s.Assign, loopDepth)
		c.block(s.Body, loopDepth)
	case *ast.SelectStmt:
		c.block(s.Body, loopDepth)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		for _, st := range s.Body {
			c.block(st, loopDepth)
		}
	case *ast.CommClause:
		c.block(s.Comm, loopDepth)
		for _, st := range s.Body {
			c.block(st, loopDepth)
		}
	case *ast.DeferStmt:
		if loopDepth > 0 {
			c.report(s.Pos(), "defer inside a loop allocates a defer record per iteration")
		}
		c.expr(s.Call)
	case *ast.GoStmt:
		c.report(s.Pos(), "go statement allocates a goroutine")
		c.expr(s.Call)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e)
		}
		for _, e := range s.Lhs {
			c.expr(e)
		}
		// Boxing on assignment: iface_lhs = concrete_rhs.
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				c.boxing(s.Rhs[i], c.pass.TypesInfo.TypeOf(s.Lhs[i]))
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
		}
		if sig, ok := c.pass.TypesInfo.TypeOf(c.fd.Name).(*types.Signature); ok {
			res := sig.Results()
			if res.Len() == len(s.Results) {
				for i, e := range s.Results {
					c.boxing(e, res.At(i).Type())
				}
			}
		}
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
		if ch, ok := c.pass.TypesInfo.TypeOf(s.Chan).Underlying().(*types.Chan); ok {
			c.boxing(s.Value, ch.Elem())
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						c.expr(v)
						if i < len(vs.Names) {
							c.boxing(v, c.pass.TypesInfo.TypeOf(vs.Names[i]))
						}
					}
				}
			}
		}
	}
}

// expr walks an expression reporting allocation sites.
func (c *checker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.ParenExpr:
		c.expr(e.X)
	case *ast.FuncLit:
		c.report(e.Pos(), "func literal allocates a closure")
		// Do not descend: the closure body runs in its own frame.
	case *ast.CompositeLit:
		c.composite(e, false)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				c.composite(cl, true)
				return
			}
		}
		c.expr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if t := c.pass.TypesInfo.TypeOf(e); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					// Constant folding is free; only non-constant concat allocates.
					if tv, ok := c.pass.TypesInfo.Types[e]; !ok || tv.Value == nil {
						c.report(e.Pos(), "string concatenation allocates")
					}
				}
			}
		}
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.CallExpr:
		c.call(e)
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.MethodVal {
			// x.M used as a value (not called): allocates a bound-method
			// closure. Calls route through c.call and never reach here.
			c.report(e.Pos(), "method value %s allocates a closure", e.Sel.Name)
			return
		}
		c.expr(e.X)
	case *ast.StarExpr:
		c.expr(e.X)
	case *ast.TypeAssertExpr:
		c.expr(e.X)
	case *ast.IndexExpr:
		c.expr(e.X)
		c.expr(e.Index)
	case *ast.IndexListExpr:
		c.expr(e.X)
	case *ast.SliceExpr:
		c.expr(e.X)
		c.expr(e.Low)
		c.expr(e.High)
		c.expr(e.Max)
	case *ast.KeyValueExpr:
		c.expr(e.Key)
		c.expr(e.Value)
	}
}

// composite reports slice/map composite literals always, and struct/array
// literals only when address-taken (&T{...} escapes to the heap unless the
// compiler proves otherwise — in a noalloc function we require the proof
// to be unnecessary).
func (c *checker) composite(cl *ast.CompositeLit, addrTaken bool) {
	t := c.pass.TypesInfo.TypeOf(cl)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Slice:
			c.report(cl.Pos(), "slice literal allocates")
		case *types.Map:
			c.report(cl.Pos(), "map literal allocates")
		default:
			if addrTaken {
				c.report(cl.Pos(), "&composite literal allocates")
			}
		}
	}
	for _, el := range cl.Elts {
		c.expr(el)
	}
}

// pointerShaped reports whether a value of type t fits a machine word and
// needs no boxing allocation when stored in an interface.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// boxing reports the implicit conversion of expr to an interface target
// when that conversion must allocate.
func (c *checker) boxing(e ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil { // constants are interned by the runtime
		return
	}
	if types.IsInterface(tv.Type.Underlying()) || tv.IsNil() || pointerShaped(tv.Type) {
		return
	}
	c.report(e.Pos(), "implicit conversion of %s to %s allocates (boxing)", tv.Type, target)
}

// allowedPkgs is stdlib surface known not to allocate (or to be the very
// thing being measured, like the clock reads the latency path needs).
func allowedCall(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // error.Error() etc. from the universe scope: dynamic anyway, caught as interface call
	}
	// The deny-lists below name package-level constructors; methods with the
	// same name are fine ((time.Time).After is a comparison, time.After is a
	// timer allocation).
	method := false
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		method = true
	}
	switch pkg.Path() {
	case "sync/atomic", "math", "math/bits":
		return true
	case "runtime":
		return true // Gosched, KeepAlive, NumCPU, ...
	case "sync":
		if !method {
			switch fn.Name() {
			case "NewCond", "OnceFunc", "OnceValue", "OnceValues":
				return false
			}
		}
		return true // Mutex/RWMutex/WaitGroup methods, Pool.Get/Put (amortized)
	case "time":
		if !method {
			switch fn.Name() {
			case "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
				return false
			}
		}
		return true // Now/Since/Duration methods: clock reads, no heap
	}
	return false
}

// call checks one call expression.
func (c *checker) call(call *ast.CallExpr) {
	// Type conversions.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type)
		return
	}
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			c.builtin(call, b.Name())
			return
		}
	}
	fn := analysis.FuncObj(c.pass.TypesInfo, call)
	switch {
	case fn == nil:
		c.report(call.Pos(), "call through a function value: siglint cannot prove the callee does not allocate")
	case c.noallocFns[fn] || allowedCall(fn):
		// ok
	default:
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			c.report(call.Pos(), "dynamic call %s through an interface: siglint cannot see the callee", fn.Name())
		} else {
			c.report(call.Pos(), "call to %s, which is not //siglint:noalloc", fn.FullName())
		}
	}
	// Variadic calls materialize the argument slice.
	if sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok {
		if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
			c.report(call.Pos(), "variadic call allocates the argument slice")
		}
		// Boxing of arguments into interface parameters.
		for i, arg := range call.Args {
			var param types.Type
			if i < sig.Params().Len()-1 || !sig.Variadic() && i < sig.Params().Len() {
				param = sig.Params().At(i).Type()
			} else if sig.Variadic() && call.Ellipsis == token.NoPos && sig.Params().Len() > 0 {
				if sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
					param = sl.Elem()
				}
			}
			c.boxing(arg, param)
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		c.expr(sel.X)
	}
	for _, arg := range call.Args {
		c.expr(arg)
	}
}

func (c *checker) builtin(call *ast.CallExpr, name string) {
	switch name {
	case "make":
		c.report(call.Pos(), "make allocates")
	case "new":
		c.report(call.Pos(), "new allocates")
	case "append":
		c.report(call.Pos(), "append may grow its backing array (//siglint:allocok <why> for amortized growth into a retained buffer)")
	case "print", "println":
		c.report(call.Pos(), "%s allocates (and is not for production paths)", name)
	case "panic":
		// The panic path is allowed to allocate: it is the failure path.
		return
	}
	for _, arg := range call.Args {
		c.expr(arg)
	}
}

// conversion checks an explicit type conversion T(x).
func (c *checker) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	from := c.pass.TypesInfo.TypeOf(arg)
	if from != nil {
		fromB, _ := from.Underlying().(*types.Basic)
		toB, _ := to.Underlying().(*types.Basic)
		fromSl, _ := from.Underlying().(*types.Slice)
		toSl, _ := to.Underlying().(*types.Slice)
		isStr := func(b *types.Basic) bool { return b != nil && b.Info()&types.IsString != 0 }
		if tv := c.pass.TypesInfo.Types[arg]; tv.Value == nil { // constant conversions are free
			switch {
			case isStr(fromB) && toSl != nil, fromSl != nil && isStr(toB):
				c.report(call.Pos(), "string<->slice conversion copies and allocates")
			}
		}
		c.boxing(arg, to)
	}
	c.expr(arg)
}

package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analyzertest.Run(t, "testdata", noalloc.Analyzer, "na")
}

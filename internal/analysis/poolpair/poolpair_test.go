package poolpair_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/poolpair"
)

func TestPoolPair(t *testing.T) {
	analyzertest.Run(t, "testdata", poolpair.Analyzer, "pp")
}

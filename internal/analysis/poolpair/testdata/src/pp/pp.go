// Package pp exercises the poolpair analyzer: pooled objects must be
// released or handed off on every path out of the function that drew
// them — including the panic paths.
package pp

import "sync"

type task struct {
	sig  float64
	wave int
}

type pools struct{ p sync.Pool }

// get draws a task from the pool.
//
//siglint:poolget
func (ps *pools) get() *task {
	if v := ps.p.Get(); v != nil {
		return v.(*task)
	}
	return &task{}
}

// release returns a task to the pool.
//
//siglint:poolput
func (ps *pools) release(t *task) { ps.p.Put(t) }

// dispatch hands a task to the workers, which release it on completion.
//
//siglint:poolput
func (ps *pools) dispatch(t *task) { _ = t }

type option func(*task)

type policy interface{ submit(*task) }

// submitLeaky reproduces the shape PR 4 fixed by hand in Submit: option
// callbacks borrow the task, then a validation panic leaks it.
func submitLeaky(ps *pools, opts []option) {
	t := ps.get() // want `pooled object "t" drawn here may reach a panic`
	for _, o := range opts {
		o(t)
	}
	if t.sig < 0 {
		panic("negative significance")
	}
	ps.dispatch(t)
}

// submitFixed is the corrected shape: release before the panic.
func submitFixed(ps *pools, opts []option) {
	t := ps.get()
	for _, o := range opts {
		o(t)
	}
	if t.sig < 0 {
		ps.release(t)
		panic("negative significance")
	}
	ps.dispatch(t)
}

func earlyReturnLeak(ps *pools, ok bool) {
	t := ps.get() // want `may reach a return`
	if !ok {
		return
	}
	ps.dispatch(t)
}

func endOfFunctionLeak(ps *pools) {
	t := ps.get() // want `may reach the end of the function`
	t.sig = 1
}

// deferRelease is safe on every exit, including the panic.
func deferRelease(ps *pools, ok bool) {
	t := ps.get()
	defer ps.release(t)
	if !ok {
		panic("bad")
	}
	t.sig = 2
}

// handoff transfers ownership through a dynamically-dispatched method;
// the analyzer trusts the interface contract.
func handoff(ps *pools, pol policy) {
	t := ps.get()
	pol.submit(t)
}

// appended transfers ownership into a live slice.
func appended(ps *pools, lane []*task) []*task {
	t := ps.get()
	return append(lane, t)
}

// direct uses sync.Pool.Get straight, with the nil-guard idiom.
var taskPool sync.Pool

func direct() *task {
	v, _ := taskPool.Get().(*task)
	if v == nil {
		v = &task{}
	}
	return v
}

// optedOut acknowledges a deliberate escape.
func optedOut(ps *pools, ok bool) {
	t := ps.get() //siglint:leakok fixture: the caller drains the pool between cases
	if !ok {
		return
	}
	ps.dispatch(t)
}

func bareOptOut(ps *pools) {
	//siglint:leakok
	t := ps.get() // want `needs a justification`
	_ = t
}

// Package poolpair proves that pooled objects are released on every path.
//
// The runtime's zero-alloc claims rest on strict pool discipline: a *Task,
// slab, dispatch scratch, Ticket or pending drawn from a pool must be
// handed back (or handed off) on every path out of the function that drew
// it — including the panic and early-return paths. PR 4 fixed exactly this
// bug by hand in Submit (a validation panic leaked the just-drawn task);
// this analyzer makes the class unrepresentable.
//
// Sources and sinks are declared in source, so the analyzer needs no
// hard-coded knowledge of the repo:
//
//   - //siglint:poolget on a function: calls mint a tracked reference
//     (plus (*sync.Pool).Get, tracked automatically).
//   - //siglint:poolput on a function: passing the object as an argument
//     (or receiver) consumes it (plus (*sync.Pool).Put).
//
// A reference assigned to a local is then walked through the function's
// control flow. The reference is consumed when it is stored (assigned,
// appended, sent, captured by a closure, returned, address-taken, placed
// in a composite literal), passed to a poolput function, or passed to a
// dynamically-dispatched interface method (an unverifiable hand-off — the
// runtime's ownership tests own that seam). Passing it to a plain function
// or a function *value* is a borrow: TaskOption callbacks do not take
// ownership, which is precisely why the PR 4 shape (option applied, then
// panic) is a detectable leak. Reaching a return, an explicit panic or the
// end of the function while the reference may still be held is reported.
//
// Precision notes: branches join pessimistically (a leak on one arm is a
// leak), `x == nil` / `x != nil` guards on the tracked reference are
// understood (the nil arm holds nothing — the sync.Pool.Get idiom), and
// loop bodies are evaluated once (a consume inside a loop is trusted; a
// zero-iteration leak is out of scope). //siglint:leakok <why> at the draw
// site or on the function opts out.
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "objects drawn from pools must be released or handed off on every path, including panics",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	getters := make(map[types.Object]bool)
	putters := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if _, ok := analysis.Func(fd, "poolget"); ok {
				getters[obj] = true
			}
			if _, ok := analysis.Func(fd, "poolput"); ok {
				putters[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, getters, putters)
		}
	}
	return nil
}

// isPoolGet reports whether call mints a tracked reference.
func isPoolGet(pass *analysis.Pass, getters map[types.Object]bool, call *ast.CallExpr) bool {
	fn := analysis.FuncObj(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	return getters[fn] || analysis.IsPkgFunc(fn, "sync", "Pool.Get")
}

// trackedAssign matches `v := <get>(...)`, `v = <get>(...)` and the
// comma-ok assert form `v, _ := <get>(...).(*T)`; it returns the local
// object and the draw position.
func trackedAssign(pass *analysis.Pass, getters map[types.Object]bool, as *ast.AssignStmt) (types.Object, token.Pos) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 1 {
		return nil, token.NoPos
	}
	rhs := ast.Unparen(as.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isPoolGet(pass, getters, call) {
		return nil, token.NoPos
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, token.NoPos
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil, token.NoPos
	}
	return obj, call.Pos()
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, getters, putters map[types.Object]bool) {
	var tracks []*checker
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure is its own ownership domain; skip
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if obj, pos := trackedAssign(pass, getters, as); obj != nil {
			if pass.OptOut(pos, fd, "leakok") {
				return true
			}
			tracks = append(tracks, &checker{pass: pass, putters: putters, track: as, obj: obj, drawPos: pos})
		}
		return true
	})
	for _, c := range tracks {
		st, reachable := c.eval(fd.Body.List, stSafe)
		if reachable && st == stHeld {
			c.exit(fd.Body.Rbrace, "the end of the function")
		}
		if c.leakKind != "" {
			pass.Reportf(c.drawPos, "pooled object %q drawn here may reach %s (line %d) without being released (//siglint:leakok <why> if the escape is intended)",
				c.obj.Name(), c.leakKind, pass.Fset.Position(c.leakPos).Line)
		}
	}
}

type state int

const (
	stSafe state = iota // not drawn on this path, or already consumed
	stHeld              // possibly holding an unreleased reference
)

func join(a, b state) state {
	if a == stHeld || b == stHeld {
		return stHeld
	}
	return stSafe
}

// checker walks one function body for one tracked reference.
type checker struct {
	pass     *analysis.Pass
	putters  map[types.Object]bool
	track    *ast.AssignStmt
	obj      types.Object
	drawPos  token.Pos
	leakPos  token.Pos
	leakKind string
}

func (c *checker) exit(pos token.Pos, kind string) {
	if c.leakKind == "" {
		c.leakPos, c.leakKind = pos, kind
	}
}

// eval runs the statement list from st; it returns the fall-through state
// and whether the end of the list is reachable.
func (c *checker) eval(stmts []ast.Stmt, st state) (state, bool) {
	for _, s := range stmts {
		var reachable bool
		st, reachable = c.stmt(s, st)
		if !reachable {
			return st, false
		}
	}
	return st, true
}

func (c *checker) stmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == c.track {
			return stHeld, true
		}
		// A direct reassignment of the variable ends tracking; any
		// consuming use on either side consumes.
		for _, l := range s.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && c.isV(id) {
				return stSafe, true
			}
		}
		if c.scanAll(s.Rhs, true) || c.scanAll(s.Lhs, false) {
			return stSafe, true
		}
		return st, true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && c.isPanic(call) {
			if c.scan(s.X, true) { // panic(v) escapes to recover
				st = stSafe
			}
			if st == stHeld {
				c.exit(s.Pos(), "a panic")
			}
			return st, false
		}
		if c.scan(s.X, false) {
			return stSafe, true
		}
		return st, true
	case *ast.ReturnStmt:
		if c.scanAll(s.Results, true) {
			st = stSafe
		}
		if st == stHeld {
			c.exit(s.Pos(), "a return")
		}
		return st, false
	case *ast.DeferStmt, *ast.GoStmt:
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		if c.scan(call, false) {
			return stSafe, true
		}
		return st, true
	case *ast.SendStmt:
		if c.scan(s.Value, true) || c.scan(s.Chan, false) {
			return stSafe, true
		}
		return st, true
	case *ast.IncDecStmt:
		if c.scan(s.X, false) {
			return stSafe, true
		}
		return st, true
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && c.scanAll(vs.Values, true) {
					return stSafe, true
				}
			}
		}
		return st, true
	case *ast.BlockStmt:
		return c.eval(s.List, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			var reachable bool
			st, reachable = c.stmt(s.Init, st)
			if !reachable {
				return st, false
			}
		}
		if c.scan(s.Cond, false) {
			st = stSafe
		}
		thenSt, elseSt := st, st
		// Understand nil guards on the tracked reference: on the nil arm
		// nothing was drawn (the sync.Pool.Get-returned-nil idiom).
		if nilArm, ok := c.nilGuard(s.Cond); ok {
			if nilArm == "then" {
				thenSt = stSafe
			} else {
				elseSt = stSafe
			}
		}
		s1, r1 := c.eval(s.Body.List, thenSt)
		s2, r2 := elseSt, true
		if s.Else != nil {
			s2, r2 = c.stmt(s.Else, elseSt)
		}
		switch {
		case r1 && r2:
			return join(s1, s2), true
		case r1:
			return s1, true
		case r2:
			return s2, true
		}
		return stSafe, false
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Cond != nil && c.scan(s.Cond, false) {
			st = stSafe
		}
		bodySt, _ := c.eval(s.Body.List, st)
		if s.Post != nil {
			bodySt, _ = c.stmt(s.Post, bodySt)
		}
		// Once-through loop semantics (see the package comment).
		return bodySt, true
	case *ast.RangeStmt:
		if c.scan(s.X, false) {
			st = stSafe
		}
		bodySt, _ := c.eval(s.Body.List, st)
		return bodySt, true
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Tag != nil && c.scan(s.Tag, false) {
			st = stSafe
		}
		return c.clauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st)
		}
		if s.Assign != nil {
			st, _ = c.stmt(s.Assign, st)
		}
		return c.clauses(s.Body, st)
	case *ast.SelectStmt:
		return c.clauses(s.Body, st)
	default:
		// BranchStmt (break/continue/goto/fallthrough), EmptyStmt: treated
		// as plain fall-through; jump targets are not modeled.
		return st, true
	}
}

// clauses evaluates a switch/select body: the result is the pessimistic
// join of every clause plus, when no clause is guaranteed to run (no
// default), the entry state.
func (c *checker) clauses(body *ast.BlockStmt, st state) (state, bool) {
	out := stSafe
	reachable := false
	hasDefault := false
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if c.scanAll(cl.List, false) {
				st = stSafe
			}
			if cl.List == nil {
				hasDefault = true
			}
			list = cl.Body
		case *ast.CommClause:
			entry := st
			if cl.Comm != nil {
				entry, _ = c.stmt(cl.Comm, st)
			} else {
				hasDefault = true
			}
			s, r := c.eval(cl.Body, entry)
			if r {
				out, reachable = join(out, s), true
			}
			continue
		}
		s, r := c.eval(list, st)
		if r {
			out, reachable = join(out, s), true
		}
	}
	if !hasDefault {
		out, reachable = join(out, st), true
	}
	if len(body.List) == 0 {
		return st, true
	}
	return out, reachable
}

func (c *checker) isV(id *ast.Ident) bool {
	return c.pass.TypesInfo.ObjectOf(id) == c.obj
}

func (c *checker) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// nilGuard recognizes `v == nil` / `v != nil` conditions on the tracked
// reference and returns which arm holds nothing.
func (c *checker) nilGuard(cond ast.Expr) (nilArm string, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return "", false
	}
	var other ast.Expr
	if id, isID := ast.Unparen(be.X).(*ast.Ident); isID && c.isV(id) {
		other = be.Y
	} else if id, isID := ast.Unparen(be.Y).(*ast.Ident); isID && c.isV(id) {
		other = be.X
	} else {
		return "", false
	}
	if tv, found := c.pass.TypesInfo.Types[other]; !found || !tv.IsNil() {
		return "", false
	}
	if be.Op == token.EQL {
		return "then", true // v == nil: then-arm holds nothing
	}
	return "else", true // v != nil: else-arm holds nothing
}

func (c *checker) scanAll(exprs []ast.Expr, consuming bool) bool {
	consumed := false
	for _, e := range exprs {
		if c.scan(e, consuming) {
			consumed = true
		}
	}
	return consumed
}

// scan reports whether e consumes the tracked reference. consuming says
// whether e itself sits in a value-storing position (RHS of an
// assignment, return result, channel send, ...).
func (c *checker) scan(e ast.Expr, consuming bool) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		return consuming && c.isV(e)
	case *ast.ParenExpr:
		return c.scan(e.X, consuming)
	case *ast.TypeAssertExpr:
		return c.scan(e.X, consuming) // v.(*T) passes the reference through
	case *ast.SelectorExpr:
		// v.f reads or writes a field of the object: a borrow, never a
		// transfer, whatever position the selector sits in.
		return c.scan(e.X, false)
	case *ast.StarExpr:
		return c.scan(e.X, false)
	case *ast.IndexExpr:
		return c.scan(e.X, false) || c.scan(e.Index, false)
	case *ast.SliceExpr:
		return c.scan(e.X, false) || c.scan(e.Low, false) || c.scan(e.High, false) || c.scan(e.Max, false)
	case *ast.BinaryExpr:
		return c.scan(e.X, false) || c.scan(e.Y, false)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && c.isV(id) {
				return true // &v escapes
			}
		}
		return c.scan(e.X, false)
	case *ast.CompositeLit:
		return c.scanAll(e.Elts, true)
	case *ast.KeyValueExpr:
		return c.scan(e.Value, consuming) || c.scan(e.Key, false)
	case *ast.FuncLit:
		captured := false
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && c.isV(id) {
				captured = true
			}
			return !captured
		})
		return captured
	case *ast.CallExpr:
		return c.scanCall(e)
	default:
		return false
	}
}

// scanCall classifies a call's treatment of the tracked reference.
func (c *checker) scanCall(call *ast.CallExpr) bool {
	fn := analysis.FuncObj(c.pass.TypesInfo, call)
	transfers := false
	if fn != nil {
		switch {
		case c.putters[fn], analysis.IsPkgFunc(fn, "sync", "Pool.Put"):
			transfers = true
		default:
			// A dynamically-dispatched method is an unverifiable hand-off
			// (e.g. Policy.Submit takes ownership of the task); a plain
			// static call is a borrow.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if types.IsInterface(sig.Recv().Type()) {
					transfers = true
				}
			}
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := c.pass.TypesInfo.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "append": // appended into a live slice
				transfers = true
			case "panic": // escapes to a recover handler
				transfers = true
			}
		}
	}
	consumed := false
	// Receiver: v.put() consumes when put transfers; v.m() otherwise
	// borrows (scan with the selector borrow rule).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && c.isV(id) {
			if transfers {
				consumed = true
			}
		} else if c.scan(sel.X, false) {
			consumed = true
		}
	} else if c.scan(call.Fun, false) {
		consumed = true
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && c.isV(id) {
			if transfers {
				consumed = true
			}
			continue
		}
		if c.scan(arg, false) {
			consumed = true
		}
	}
	return consumed
}

// Package detoff has no //siglint:deterministic directive: the analyzer
// must stay silent however nondeterministic the code is.
package detoff

import (
	"math/rand"
	"time"
)

func free(m map[string]int) ([]string, time.Time, int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys, time.Now(), rand.Intn(8)
}

// Package det exercises the determinism analyzer: wall-clock reads,
// global-source rand and order-sensitive map iteration are rejected in a
// package that declares itself replay-deterministic.
//
//siglint:deterministic
package det

import (
	"math/rand"
	"time"
)

func clocks() time.Duration {
	t0 := time.Now()      // want `wall-clock read time.Now`
	return time.Since(t0) // want `wall-clock read time.Since`
}

func clockLineOptOut() time.Time {
	return time.Now() //siglint:wallclock watchdog arm only, never feeds a decision
}

// clockFuncOptOut reads the clock for latency measurement.
//
//siglint:wallclock latency histogram input, excluded from replay state
func clockFuncOptOut() time.Duration {
	return time.Since(time.Now())
}

//siglint:wallclock
func clockBareOptOut() time.Time {
	return time.Now() // want `needs a justification`
}

var rng = rand.New(rand.NewSource(42))

func draws() int {
	a := rand.Intn(8) // want `rand.Intn uses the unseeded global source`
	return a + rng.Intn(8)
}

func emit(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration feeds an append`
		keys = append(keys, k)
	}
	return keys
}

func stream(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration feeds a channel send`
		ch <- k
	}
}

func energy(m map[string]float64) float64 {
	e := 0.0
	for _, v := range m { // want `floating-point accumulation`
		e += v
	}
	return e
}

// total accumulates integers: order-insensitive, allowed.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func emitOrdered(m map[string]int, out []string) []string {
	//siglint:maporder caller re-sorts before emission; order never observed
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Package determinism rejects nondeterminism in replay-deterministic
// packages: wall-clock reads, the unseeded global math/rand source, and
// map iteration that feeds an ordering- or accumulation-sensitive sink.
//
// The suite's target packages promise bit-identical replay: the same
// submission stream must produce the same decisions, the same merged
// modeled energy and the same emitted orderings at any worker or shard
// count — the repo's reproduction of the paper's determinism claim, and
// the property the cross-shard invariant suite replays at runtime. This
// analyzer proves the *inputs* to those decisions are deterministic on
// every path, not only the paths a test executes.
//
// A package opts in with //siglint:deterministic in its package doc.
// Within such a package (test files excluded):
//
//   - time.Now / time.Since / time.Until are reported unless annotated
//     //siglint:wallclock <why> (line- or func-level): watchdog and
//     latency-measurement code legitimately reads clocks, but must say so
//     where a reviewer can audit it.
//   - Calls to math/rand's (and math/rand/v2's) package-level functions
//     are reported: they draw from the shared, unseeded source. Explicit
//     sources (rand.New(rand.NewSource(seed))) are fine — that is what
//     "seeded, replayable" chaos schedules use.
//   - `for ... range m` over a map is reported when its body feeds an
//     order-sensitive sink — appends to a slice, sends on a channel, or
//     accumulates floating point (where summation order changes the bits)
//     — unless annotated //siglint:maporder <why>. Integer accumulation
//     and pure lookups are order-insensitive and pass.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, unseeded rand and order-sensitive map iteration in replay-deterministic packages",
	Run:  run,
}

var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if !pass.Dirs.Package("deterministic") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkCall(pass, fd, n)
				case *ast.RangeStmt:
					checkRange(pass, fd, n)
				}
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	fn := analysis.FuncObj(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isPkgLevel := sig != nil && sig.Recv() == nil
	switch fn.Pkg().Path() {
	case "time":
		if isPkgLevel && clockFuncs[fn.Name()] {
			if !pass.OptOut(call.Pos(), fd, "wallclock") {
				pass.Reportf(call.Pos(), "wall-clock read time.%s in replay-deterministic package (annotate //siglint:wallclock <why> if this cannot feed a decision)", fn.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the global source; explicit
		// constructors (New, NewSource, NewPCG, NewChaCha8, NewZipf) build
		// seeded ones and are the supported spelling.
		if isPkgLevel && !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "%s.%s uses the unseeded global source in replay-deterministic package (use rand.New(rand.NewSource(seed)))", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkRange flags map iteration feeding an order-sensitive sink.
func checkRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sink := findSink(pass, rs.Body)
	if sink == "" {
		return
	}
	if pass.OptOut(rs.Pos(), nil, "maporder") {
		return
	}
	pass.Reportf(rs.Pos(), "map iteration feeds %s in replay-deterministic package; map order is random per run (iterate a sorted key slice, or annotate //siglint:maporder <why>)", sink)
}

// findSink reports the first order-sensitive sink in a map-range body:
// appends, channel sends, or floating-point accumulation.
func findSink(pass *analysis.Pass, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					sink = "an append (emitted ordering)"
				}
			}
		case *ast.SendStmt:
			sink = "a channel send (emitted ordering)"
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if t := pass.TypesInfo.TypeOf(n.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						sink = "floating-point accumulation (summation order changes the bits)"
					}
				}
			}
		}
		return sink == ""
	})
	return sink
}

package determinism_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analyzertest.Run(t, "testdata", determinism.Analyzer, "det")
}

// TestNotOptedIn: without //siglint:deterministic the analyzer is silent.
func TestNotOptedIn(t *testing.T) {
	analyzertest.Run(t, "testdata", determinism.Analyzer, "detoff")
}

// Package analyzertest runs an analyzer over a golden package and checks
// its diagnostics against `// want` comments, mirroring x/tools'
// analysistest convention on the standard library alone:
//
//	rt.pools.get() // want `drawn from .*get is not released`
//
// Each `// want` carries one or more quoted regular expressions (double or
// back quotes). Every diagnostic must match a want on its line, and every
// want must be matched exactly once; anything else fails the test.
//
// Golden packages live under <analyzer>/testdata/src/<name> and may import
// only the standard library: they are typechecked with the stdlib source
// importer, which resolves imports from GOROOT source and needs no
// compiled export data.
package analyzertest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// Run analyzes testdata/src/<pkgname> under dir with a and compares the
// diagnostics against the package's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	src := filepath.Join(dir, "src", pkgname)
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("reading %s: %v", src, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(src, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", src)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := tc.Check(pkgname, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking %s: %v", pkgname, err)
	}
	diags := driver.RunAnalyzers(fset, files, pkg, info, []*analysis.Analyzer{a})
	check(t, fset, files, diags)
}

// want is one expectation: a regexp anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("//[ \t]*want[ \t]+(.*)")

// quoted matches one double- or back-quoted string.
var quoted = regexp.MustCompile("^[ \t]*(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := m[1]
				for {
					q := quoted.FindStringSubmatch(rest)
					if q == nil {
						break
					}
					rest = rest[len(q[0]):]
					lit := q[1]
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, lit, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

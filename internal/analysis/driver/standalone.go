package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// listPkg is the subset of `go list -json` output the standalone loader
// needs: sources for the packages under analysis, export data for their
// dependency closure.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
}

// standalone loads the named patterns with `go list -export -deps -json`
// and analyzes every non-dependency package in one process. `-export`
// makes the go command (re)compile whatever is stale and hand back the
// cached export data files the gc importer resolves imports from — the
// same files the vet-tool mode receives via its .cfg, minus the test
// variants (use the vet-tool mode, `make lint`, for full coverage).
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Incomplete"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fail(fmt.Errorf("go list: %v", err))
	}
	exports := make(map[string]string) // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fail(fmt.Errorf("go list output: %v", err))
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	exit := 0
	fset := token.NewFileSet()
	for _, p := range targets {
		if p.Incomplete || len(p.GoFiles) == 0 {
			continue
		}
		var names []string
		for _, f := range p.GoFiles {
			names = append(names, filepath.Join(p.Dir, f))
		}
		files, err := parseFiles(fset, names)
		if err != nil {
			return fail(err)
		}
		diags, err := analyze(fset, files, p.ImportPath, "", lookup, analyzers)
		if err != nil {
			return fail(err)
		}
		if code := print(fset, diags); code > exit {
			exit = code
		}
	}
	return exit
}

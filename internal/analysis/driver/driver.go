// Package driver runs a suite of analysis.Analyzers in the two modes
// cmd/siglint supports:
//
//   - As a vet tool (`go vet -vettool=siglint ./...`): the go command
//     invokes the binary once per package with a JSON .cfg file describing
//     the sources and the export data of every dependency — the
//     "unitchecker" wire protocol of x/tools, reimplemented here on the
//     stdlib gc importer. This is the CI/Makefile entry point: it gets the
//     go command's build cache (clean packages are not re-analyzed) and its
//     package graph (test variants included) for free.
//
//   - Standalone (`siglint ./...`): the binary shells out to
//     `go list -export -deps -json` and analyzes every main-module package
//     in one process. Handy during development, and what produces the
//     finding list without a vet wrapper.
//
// Both modes feed the same per-package analyze step; diagnostics print as
// "file:line:col: message [siglint/<analyzer>]" on stderr and a non-zero
// exit reports findings (1) or operational failure (2).
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Main runs the suite and exits. See the package comment for the modes.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(Run(os.Args[1:], analyzers))
}

// Run dispatches on the argument shape; it returns the process exit code.
func Run(args []string, analyzers []*analysis.Analyzer) int {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			// The go command hashes the tool's identity into its build
			// cache key via this handshake; content-hash the binary so a
			// rebuilt siglint invalidates cached vet results.
			return printVersion()
		case a == "-flags" || a == "--flags":
			// The go command asks which analyzer flags the tool accepts
			// before forwarding any; siglint keeps its configuration in
			// source directives instead, so: none.
			fmt.Println("[]")
			return 0
		case a == "help" || a == "-h" || a == "--help":
			usage(analyzers)
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0], analyzers)
	}
	if len(args) == 0 {
		usage(analyzers)
		return 2
	}
	return standalone(args, analyzers)
}

func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(exe); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, h.Sum(nil))
	return 0
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "siglint proves this repo's runtime invariants at compile time.\n\n")
	fmt.Fprintf(os.Stderr, "usage:\n  go vet -vettool=$(command -v siglint || echo ./siglint.bin) ./...\n  siglint <packages>\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.Split(a.Doc, "\n")[0])
	}
}

// vetConfig mirrors the JSON the go command writes next to each package it
// vets (cmd/go/internal/work's vetConfig). Fields the suite does not need
// are omitted; unknown JSON fields are ignored by encoding/json anyway.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return fail(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(fmt.Errorf("parsing %s: %v", cfgFile, err))
	}
	// The suite is fact-free, but the protocol requires the facts file to
	// exist for the go command to cache and chain the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return fail(err)
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: nothing to report, facts written, done.
		return 0
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return fail(err)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	diags, err := analyze(fset, files, cfg.ImportPath, cfg.GoVersion, lookup, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return fail(err)
	}
	return print(fset, diags)
}

// parseFiles parses sources with comments (directives live there).
func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// analyze typechecks one package against its dependencies' export data and
// runs every analyzer over it.
func analyze(fset *token.FileSet, files []*ast.File, path, goVersion string, lookup func(string) (io.ReadCloser, error), analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", envOr("GOARCH", runtime.GOARCH)),
	}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	return RunAnalyzers(fset, files, pkg, info, analyzers), nil
}

// RunAnalyzers applies the suite to one already-typechecked package and
// returns its diagnostics sorted by position. Shared by the drivers and
// the analyzertest harness.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			diags = append(diags, analysis.Diagnostic{
				Pos:      files[0].Pos(),
				Message:  fmt.Sprintf("analyzer failed: %v", err),
				Analyzer: a.Name,
			})
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

func print(fset *token.FileSet, diags []analysis.Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [siglint/%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "siglint:", err)
	return 2
}

func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

// Package af exercises the atomicfield analyzer: a field whose address
// flows into sync/atomic anywhere must be accessed atomically everywhere.
package af

import "sync/atomic"

type counter struct {
	n    int64 // atomic
	hits int64 // atomic
	cold int64 // plain everywhere: fine
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
	atomic.StoreInt64(&c.hits, 0)
}

// read is the acceptance case: a plain read of an atomically-written
// counter.
func (c *counter) read() int64 {
	return c.n // want `plain access to field n`
}

func (c *counter) reset() {
	c.hits = 0 // want `plain access to field hits`
}

func (c *counter) sanctioned() int64 {
	return atomic.LoadInt64(&c.n)
}

func newCounter(start int64) *counter {
	c := &counter{}
	//siglint:nonatomic constructor-local; c has not been shared yet
	c.n = start
	return c
}

func (c *counter) onlyPlain() int64 {
	return c.cold
}

func (c *counter) bare() {
	//siglint:nonatomic
	c.n = 1 // want `needs a justification`
}

package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analyzertest.Run(t, "testdata", atomicfield.Analyzer, "af")
}

// Package atomicfield enforces all-or-nothing atomicity on struct fields:
// a field that is accessed through sync/atomic anywhere in the package
// must be accessed through sync/atomic everywhere in the package.
//
// Mixed plain/atomic access is the bug class the race detector only finds
// under lucky interleavings — a plain read of an atomically-incremented
// counter is racy on every weakly-ordered machine, but -race must watch
// the two accesses actually collide to say so. Statically the property is
// trivial: collect every field whose address flows into an
// atomic.{Load,Store,Add,Swap,CompareAndSwap}*, then reject any other
// (non-atomic) use of the same field.
//
// Fields of the atomic.* wrapper types (atomic.Int64 and friends) are safe
// by construction — their only access surface is atomic methods — which is
// why the repo's runtime structs prefer them. This analyzer covers the
// remaining raw-word idiom, and the seam between the two: code migrating a
// counter to atomic.Int64 that leaves one plain `x.n++` behind.
//
// A deliberate plain access (e.g. in a constructor before the value is
// shared, or under a lock that orders all writers) opts out per line with
// //siglint:nonatomic <why>.
package atomicfield

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "a struct field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: fields whose address is taken by a sync/atomic call, and the
	// selector nodes that constitute those sanctioned accesses.
	atomicFields := make(map[*types.Var]string) // field -> example call, e.g. "atomic.AddInt64"
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncObj(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicOp(fn.Name()) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(pass, sel); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = "atomic." + fn.Name()
					}
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other use of those fields is a plain access.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fld := fieldOf(pass, sel)
			if fld == nil {
				return true
			}
			op, isAtomic := atomicFields[fld]
			if !isAtomic {
				return true
			}
			if pass.OptOut(sel.Pos(), nil, "nonatomic") {
				return true
			}
			pass.Reportf(sel.Pos(), "plain access to field %s, which is accessed atomically elsewhere (%s); mixed access races under weak memory ordering (//siglint:nonatomic <why> if provably unshared here)", fld.Name(), op)
			return true
		})
	}
	return nil
}

// isAtomicOp reports whether name is one of sync/atomic's operation
// functions (as opposed to a type or helper).
func isAtomicOp(name string) bool {
	for _, p := range []string{"Load", "Store", "Add", "And", "Or", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// fieldOf resolves a selector to the struct field it reads or writes, or
// nil when it selects something else (method, package member, ...).
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

GO ?= go

# The staticcheck version is pinned once, in tools/go.mod; everything else
# (this Makefile, CI) greps it from there.
STATICCHECK_VERSION := $(shell grep -o 'staticcheck [0-9][0-9A-Za-z.]*' tools/go.mod | cut -d' ' -f2)

.PHONY: test vet lint race bench fuzz fuzz-serve fuzz-shard fuzz-chaos chaos bench-adapt serve-study slo-study pace-study bench-shard bench-multicore bench-fleet

# -shuffle=on randomizes test order within each package so order-dependent
# tests cannot hide behind file order; CI runs the same way.
test:
	$(GO) build ./... && $(GO) test -shuffle=on ./...

# Static analysis: go vet always; staticcheck when installed (pinned in
# tools/go.mod; CI installs that exact version). `vet` works without
# siglint — `lint` is the full suite.
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; fi

# Full static suite: everything `vet` runs, plus the repo's own analyzers
# (cmd/siglint) proving the runtime's invariants — replay determinism,
# atomic-field discipline, pool get/put pairing, noalloc hot paths.
lint: vet
	$(GO) build -o siglint.bin ./cmd/siglint
	$(GO) vet -vettool=$$(pwd)/siglint.bin ./...
	@rm -f siglint.bin

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test ./sig -run xxx -bench . -benchtime 1s

# Bounded native-fuzz smokes (same budgets CI uses; minimization is capped
# so the budget is spent fuzzing). `fuzz` covers the policy invariants,
# `fuzz-serve` the serving admission path.
fuzz:
	$(GO) test ./sig -run '^$$' -fuzz FuzzPolicyDecisions -fuzztime 20s -fuzzminimizetime 1x

fuzz-serve:
	$(GO) test ./sig/serve -run '^$$' -fuzz FuzzServeAdmission -fuzztime 20s -fuzzminimizetime 1x

# `fuzz-shard` drives the cross-shard routing invariants (conservation,
# specials, merged ratio floor) under adversarial placement/drain streams,
# now including rejoin/quarantine/revive fleet surgery.
fuzz-shard:
	$(GO) test ./sig/shard -run '^$$' -fuzz FuzzShardRouting -fuzztime 20s -fuzzminimizetime 1x

# `fuzz-chaos` replays seeded fault schedules (wedge, delay, panic) against
# a live fleet and checks conservation plus the exact energy identity.
fuzz-chaos:
	$(GO) test ./sig/chaos -run '^$$' -fuzz FuzzChaosSchedule -fuzztime 20s -fuzzminimizetime 1x

# Fault-injection and fleet-surgery suites under the race detector: the
# chaos injectors, elastic router surgery, health quarantine and the
# rolling-replace/autoscale acceptance gates.
chaos:
	$(GO) test -race -shuffle=on ./sig/chaos ./sig/shard ./sig/serve -count=1
	$(GO) test -race -run 'TestFleetStudy' ./internal/harness -count=1

# Run the adaptive-controller study and append its convergence numbers to
# BENCH_sig.json under the "adaptive" key.
bench-adapt:
	$(GO) run ./cmd/sigbench adaptive -scale 0.1 -append-bench BENCH_sig.json

# Run the serving overload study on both backends and append its summary to
# BENCH_sig.json under the "serve" key.
serve-study:
	$(GO) run ./cmd/sigbench serve -scale 0.1 -backend all -append-bench BENCH_sig.json

# Run the serving-SLO study (measured shed/recover waves vs the bounds
# derived from the secant law, windowed quality floor, priority-lane
# latency split) and append its summary to BENCH_sig.json under "slo".
slo-study:
	$(GO) run ./cmd/sigbench slo -append-bench BENCH_sig.json

# Run the measured-time pacing study (cadence convergence to the true wave
# wall, counted overruns, measured-period RetryAfter honesty, bit-identical
# fake-clock replay) and append its summary to BENCH_sig.json under "pace".
pace-study:
	$(GO) run ./cmd/sigbench pace -append-bench BENCH_sig.json

# Run the multi-runtime sharding study (burst submit throughput at 1/2/4/8
# shards, energy additivity, placement sweep) and append its summary to
# BENCH_sig.json under the "shard" key.
bench-shard:
	$(GO) run ./cmd/sigbench shard -reps 3 -append-bench BENCH_sig.json

# Run the GOMAXPROCS sweep (multi-producer submit, sharded burst ingest,
# serving admission overhead at 1/2/4/8 procs) and append it with the host
# shape to BENCH_sig.json under the "multicore" key. Built as a binary, not
# `go run`, so the entry carries the vcs commit.
bench-multicore:
	$(GO) build -o sigbench.bin ./cmd/sigbench
	./sigbench.bin multicore -reps 3 -append-bench BENCH_sig.json
	rm -f sigbench.bin

# Run the elastic-fleet study (rolling shard replacement with bit-exact
# energy, autoscaler step response) and append its summary with the host
# shape to BENCH_sig.json under the "fleet" key.
bench-fleet:
	$(GO) run ./cmd/sigbench fleet -append-bench BENCH_sig.json

GO ?= go

.PHONY: test race bench fuzz bench-adapt

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test ./sig -run xxx -bench . -benchtime 1s

# Bounded native-fuzz smoke over the policy invariants (same budget CI uses;
# minimization is capped so the budget is spent fuzzing).
fuzz:
	$(GO) test ./sig -run '^$$' -fuzz FuzzPolicyDecisions -fuzztime 20s -fuzzminimizetime 1x

# Run the adaptive-controller study and append its convergence numbers to
# BENCH_sig.json under the "adaptive" key.
bench-adapt:
	$(GO) run ./cmd/sigbench adaptive -scale 0.1 -append-bench BENCH_sig.json

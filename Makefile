GO ?= go

.PHONY: test vet race bench fuzz fuzz-serve fuzz-shard bench-adapt serve-study bench-shard bench-multicore

# -shuffle=on randomizes test order within each package so order-dependent
# tests cannot hide behind file order; CI runs the same way.
test:
	$(GO) build ./... && $(GO) test -shuffle=on ./...

# Static analysis: go vet always; staticcheck when installed (CI installs a
# pinned version — see .github/workflows/ci.yml).
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; fi

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test ./sig -run xxx -bench . -benchtime 1s

# Bounded native-fuzz smokes (same budgets CI uses; minimization is capped
# so the budget is spent fuzzing). `fuzz` covers the policy invariants,
# `fuzz-serve` the serving admission path.
fuzz:
	$(GO) test ./sig -run '^$$' -fuzz FuzzPolicyDecisions -fuzztime 20s -fuzzminimizetime 1x

fuzz-serve:
	$(GO) test ./sig/serve -run '^$$' -fuzz FuzzServeAdmission -fuzztime 20s -fuzzminimizetime 1x

# `fuzz-shard` drives the cross-shard routing invariants (conservation,
# specials, merged ratio floor) under adversarial placement/drain streams.
fuzz-shard:
	$(GO) test ./sig/shard -run '^$$' -fuzz FuzzShardRouting -fuzztime 20s -fuzzminimizetime 1x

# Run the adaptive-controller study and append its convergence numbers to
# BENCH_sig.json under the "adaptive" key.
bench-adapt:
	$(GO) run ./cmd/sigbench adaptive -scale 0.1 -append-bench BENCH_sig.json

# Run the serving overload study on both backends and append its summary to
# BENCH_sig.json under the "serve" key.
serve-study:
	$(GO) run ./cmd/sigbench serve -scale 0.1 -backend all -append-bench BENCH_sig.json

# Run the multi-runtime sharding study (burst submit throughput at 1/2/4/8
# shards, energy additivity, placement sweep) and append its summary to
# BENCH_sig.json under the "shard" key.
bench-shard:
	$(GO) run ./cmd/sigbench shard -reps 3 -append-bench BENCH_sig.json

# Run the GOMAXPROCS sweep (multi-producer submit, sharded burst ingest,
# serving admission overhead at 1/2/4/8 procs) and append it with the host
# shape to BENCH_sig.json under the "multicore" key. Built as a binary, not
# `go run`, so the entry carries the vcs commit.
bench-multicore:
	$(GO) build -o sigbench.bin ./cmd/sigbench
	./sigbench.bin multicore -reps 3 -append-bench BENCH_sig.json
	rm -f sigbench.bin

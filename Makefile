GO ?= go

.PHONY: test vet race bench fuzz fuzz-serve bench-adapt serve-study

test:
	$(GO) build ./... && $(GO) test ./...

# Static analysis: go vet always; staticcheck when installed (CI installs a
# pinned version — see .github/workflows/ci.yml).
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; fi

race:
	$(GO) test -race ./...

bench:
	$(GO) test ./sig -run xxx -bench . -benchtime 1s

# Bounded native-fuzz smokes (same budgets CI uses; minimization is capped
# so the budget is spent fuzzing). `fuzz` covers the policy invariants,
# `fuzz-serve` the serving admission path.
fuzz:
	$(GO) test ./sig -run '^$$' -fuzz FuzzPolicyDecisions -fuzztime 20s -fuzzminimizetime 1x

fuzz-serve:
	$(GO) test ./sig/serve -run '^$$' -fuzz FuzzServeAdmission -fuzztime 20s -fuzzminimizetime 1x

# Run the adaptive-controller study and append its convergence numbers to
# BENCH_sig.json under the "adaptive" key.
bench-adapt:
	$(GO) run ./cmd/sigbench adaptive -scale 0.1 -append-bench BENCH_sig.json

# Run the serving overload study on both backends and append its summary to
# BENCH_sig.json under the "serve" key.
serve-study:
	$(GO) run ./cmd/sigbench serve -scale 0.1 -backend all -append-bench BENCH_sig.json

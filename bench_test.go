// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation at a reduced problem scale (so `go test -bench=.`
// completes quickly). Use cmd/sigbench with -scale 1.0 for evaluation-size
// runs; the per-experiment mapping is documented in DESIGN.md and the
// measured outcomes in EXPERIMENTS.md.
//
// Reported custom metrics: J = modeled energy per run, quality = the
// benchmark's "lower is better" quality metric (1/PSNR or relative error %).
package repro

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
)

// benchScale shrinks the problems for benchmarking.
const benchScale = 0.1

// BenchmarkTable1Catalog renders the benchmark catalog (Table 1). It exists
// so every paper artifact has a bench target; the work is trivial.
func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Table1(io.Discard)
	}
}

// fig2Bench runs one Figure 2 cell (benchmark under a policy at a degree)
// per iteration and reports energy and quality metrics.
func fig2Bench(b *testing.B, bench string, mode harness.Mode, degree harness.Degree) {
	b.Helper()
	spec, ok := harness.SpecByName(bench)
	if !ok {
		b.Fatalf("unknown benchmark %q", bench)
	}
	inst := spec.Make(benchScale)
	ref := inst.Reference()
	b.ResetTimer()
	var last harness.Measurement
	for i := 0; i < b.N; i++ {
		m, err := harness.Execute(spec, inst, ref, mode, degree, harness.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !m.Applicable {
			b.Skipf("%s not applicable to %s", mode, bench)
		}
		last = m
	}
	b.ReportMetric(last.Joules, "J")
	b.ReportMetric(last.Quality, "quality")
}

// Figure 2, one sub-figure (row of plots) per benchmark. The Medium degree
// and both policy families are exercised; the accurate baseline and
// perforation anchor the comparison.

func BenchmarkFig2Sobel_Accurate(b *testing.B) {
	fig2Bench(b, "Sobel", harness.ModeAccurate, harness.Medium)
}
func BenchmarkFig2Sobel_GTB(b *testing.B) { fig2Bench(b, "Sobel", harness.ModeGTB, harness.Medium) }
func BenchmarkFig2Sobel_GTBMax(b *testing.B) {
	fig2Bench(b, "Sobel", harness.ModeGTBMax, harness.Medium)
}
func BenchmarkFig2Sobel_LQH(b *testing.B) { fig2Bench(b, "Sobel", harness.ModeLQH, harness.Medium) }
func BenchmarkFig2Sobel_Perforation(b *testing.B) {
	fig2Bench(b, "Sobel", harness.ModePerforation, harness.Medium)
}

func BenchmarkFig2DCT_Accurate(b *testing.B) {
	fig2Bench(b, "DCT", harness.ModeAccurate, harness.Medium)
}
func BenchmarkFig2DCT_GTB(b *testing.B)    { fig2Bench(b, "DCT", harness.ModeGTB, harness.Medium) }
func BenchmarkFig2DCT_GTBMax(b *testing.B) { fig2Bench(b, "DCT", harness.ModeGTBMax, harness.Medium) }
func BenchmarkFig2DCT_LQH(b *testing.B)    { fig2Bench(b, "DCT", harness.ModeLQH, harness.Medium) }
func BenchmarkFig2DCT_Perforation(b *testing.B) {
	fig2Bench(b, "DCT", harness.ModePerforation, harness.Medium)
}

func BenchmarkFig2MC_Accurate(b *testing.B) { fig2Bench(b, "MC", harness.ModeAccurate, harness.Medium) }
func BenchmarkFig2MC_GTB(b *testing.B)      { fig2Bench(b, "MC", harness.ModeGTB, harness.Medium) }
func BenchmarkFig2MC_LQH(b *testing.B)      { fig2Bench(b, "MC", harness.ModeLQH, harness.Medium) }

func BenchmarkFig2Kmeans_Accurate(b *testing.B) {
	fig2Bench(b, "Kmeans", harness.ModeAccurate, harness.Medium)
}
func BenchmarkFig2Kmeans_GTB(b *testing.B) { fig2Bench(b, "Kmeans", harness.ModeGTB, harness.Medium) }
func BenchmarkFig2Kmeans_LQH(b *testing.B) { fig2Bench(b, "Kmeans", harness.ModeLQH, harness.Medium) }

func BenchmarkFig2Jacobi_Accurate(b *testing.B) {
	fig2Bench(b, "Jacobi", harness.ModeAccurate, harness.Medium)
}
func BenchmarkFig2Jacobi_GTB(b *testing.B) { fig2Bench(b, "Jacobi", harness.ModeGTB, harness.Medium) }
func BenchmarkFig2Jacobi_LQH(b *testing.B) { fig2Bench(b, "Jacobi", harness.ModeLQH, harness.Medium) }

func BenchmarkFig2Fluidanimate_Accurate(b *testing.B) {
	fig2Bench(b, "Fluidanimate", harness.ModeAccurate, harness.Medium)
}
func BenchmarkFig2Fluidanimate_GTB(b *testing.B) {
	fig2Bench(b, "Fluidanimate", harness.ModeGTB, harness.Medium)
}
func BenchmarkFig2Fluidanimate_LQH(b *testing.B) {
	fig2Bench(b, "Fluidanimate", harness.ModeLQH, harness.Medium)
}

// BenchmarkFig1SobelQuadrants regenerates the Figure 1 mosaic.
func BenchmarkFig1SobelQuadrants(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig1(filepath.Join(dir, "fig1.pgm"), benchScale, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3SobelPerforation regenerates the Figure 3 mosaic.
func BenchmarkFig3SobelPerforation(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig3(filepath.Join(dir, "fig3.pgm"), benchScale, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Overhead measures the runtime-overhead experiment (restricted
// to DCT, the paper's worst case, to keep bench time bounded).
func BenchmarkFig4Overhead(b *testing.B) {
	opt := harness.Options{Scale: benchScale, Benches: []string{"DCT"}}
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig4(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			for _, v := range r.Normalized {
				if v > worst {
					worst = v
				}
			}
		}
	}
	b.ReportMetric(worst, "worst-overhead-x")
}

// BenchmarkTable2PolicyAccuracy measures the policy-accuracy experiment on
// Sobel (round-robin multi-level significance, the interesting case).
func BenchmarkTable2PolicyAccuracy(b *testing.B) {
	opt := harness.Options{Scale: benchScale, Benches: []string{"Sobel"}}
	b.ResetTimer()
	var lqhInv float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table2(opt)
		if err != nil {
			b.Fatal(err)
		}
		lqhInv = rows[0].InversionPct[harness.ModeLQH]
	}
	b.ReportMetric(lqhInv, "LQH-inversions-%")
}

// TestMain keeps benchmark output reproducible by pinning the working
// directory expectations (nothing global to set up currently).
func TestMain(m *testing.M) { os.Exit(m.Run()) }
